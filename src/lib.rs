//! # bddfc — an executable companion to *On the BDD/FC Conjecture*
//!
//! Gogacz & Marcinkowski (PODS 2013) conjecture that every Datalog∃
//! theory with the **Bounded Derivation Depth** property (BDD — positive
//! first-order rewritability) is **Finitely Controllable** (FC — certain
//! answers over all models coincide with certain answers over *finite*
//! models), and prove it for binary signatures. This workspace implements
//! every object their proof manipulates, as a real library:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | terms, atoms, instances, queries, rules, parser, homomorphism engine |
//! | [`chase`] | restricted/oblivious chase, datalog saturation, bounded model finder |
//! | [`rewrite`] | UCQ rewriting, BDD witnesses, the constant κ |
//! | [`types`] | positive n-types, quotients `Mₙ(C)`, colorings, conservativity |
//! | [`finite`] | skeletons, VTDAGs, (♠4)/(♠5) transforms, the certified FC pipeline |
//! | [`classes`] | linear/guarded/sticky/weakly-acyclic recognizers, §5.2/§5.3/§5.6 reductions |
//! | [`zoo`] | the paper's examples 1–9 and workload generators |
//! | [`lint`] | span-carrying diagnostics and the `bddfc-lint` program linter |
//!
//! ## Quick start
//!
//! ```
//! use bddfc::prelude::*;
//!
//! // Example 7 of the paper: a BDD theory with a diverging chase.
//! let prog = bddfc::zoo::example7();
//! let mut voc = prog.voc.clone();
//! let query = bddfc::core::parse_query("R(X,Y), E(X,Y)", &mut voc).unwrap();
//!
//! // The paper says a finite countermodel exists; the pipeline builds
//! // and certifies one.
//! let outcome = finite_countermodel(
//!     &prog.instance, &prog.theory, &query, &mut voc, FcConfig::default(),
//! );
//! let cert = outcome.model().expect("Theorem 2 in action");
//! assert!(certify_countermodel(&cert.model, &prog.instance, &prog.theory, &query, &voc)
//!     .is_empty());
//! ```

pub use bddfc_chase as chase;
pub use bddfc_classes as classes;
pub use bddfc_core as core;
pub use bddfc_finite as finite;
pub use bddfc_lint as lint;
pub use bddfc_rewrite as rewrite;
pub use bddfc_types as types;
pub use bddfc_zoo as zoo;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use bddfc_chase::{
        certain_cq, chase, countermodel, find_model, saturate_datalog, Certainty, ChaseConfig,
        ChaseVariant, FinderConfig, SearchOutcome,
    };
    pub use bddfc_classes::{classify, guarded_to_binary, order_probe, split_theorem3, to_ternary};
    pub use bddfc_core::{
        parse_program, parse_query, parse_rule, ConjunctiveQuery, Instance, Program, Rule,
        Theory, Ucq, Vocabulary,
    };
    pub use bddfc_finite::{
        certify_countermodel, finite_countermodel, hide_query, normalize_spade5, FcConfig,
        FcOutcome,
    };
    pub use bddfc_rewrite::{is_atomically_bdd, kappa, rewrite_query, shape, QueryShape, RewriteConfig};
    pub use bddfc_types::{find_conservative_n, natural_coloring, Quotient, TypeAnalyzer};
}
