//! Queries as graphs: the Section 4 machinery behind Lemmas 8–11.
//!
//! The proof of the Main Lemma views a conjunctive query over a binary
//! signature as a directed labelled graph — vertices are variables, edges
//! are binary atoms (atoms mentioning constants act as unary decorations,
//! and pure-constant atoms are irrelevant). Three shapes matter:
//!
//! * **undirected trees** — never counterexamples (Lemma 8);
//! * queries with a **directed cycle** — never satisfied in quotients of
//!   naturally colored structures (Lemma 9);
//! * queries with an **undirected but no directed cycle** — the hard
//!   case, handled by normalization (Lemmas 10/11): such a query contains
//!   the fork pattern (♥) `R₁(z′, z) ∧ R₂(z″, z)`, and each normalization
//!   step strictly decreases the measure
//!   `Measure(Φ) = Σ_x occ(x) · smaller(x)`.
//!
//! This module classifies query graphs and implements the measure, so the
//! termination argument of Lemma 10's while-loop is executable.

use bddfc_core::{Atom, ConjunctiveQuery, Term, VarId};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// The Section 4 shape classification of a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryShape {
    /// The variable graph is an undirected forest (Lemma 8 applies).
    UndirectedTree,
    /// The variable graph has a directed cycle (Lemma 9 applies).
    DirectedCycle,
    /// Undirected cycle but no directed one (Lemmas 10/11 apply).
    UndirectedCycleOnly,
}

/// A fork `R₁(z′, z) ∧ R₂(z″, z)` — the (♥) pattern of Section 4.1.
/// Normalization resolves forks until the query is a tree or contains a
/// directed cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fork {
    /// Index of the first in-edge atom in the query.
    pub atom1: usize,
    /// Index of the second in-edge atom.
    pub atom2: usize,
    /// The shared target variable `z`.
    pub target: VarId,
}

/// The variable-to-variable directed edges of a query (binary atoms with
/// two distinct variable arguments).
fn var_edges(q: &ConjunctiveQuery) -> Vec<(VarId, VarId, usize)> {
    let mut out = Vec::new();
    for (i, atom) in q.atoms.iter().enumerate() {
        if atom.args.len() != 2 {
            continue;
        }
        if let (Term::Var(a), Term::Var(b)) = (atom.args[0], atom.args[1]) {
            out.push((a, b, i));
        }
    }
    out
}

/// Does the query's variable graph contain a directed cycle (including
/// self-loops `R(x,x)`)?
pub fn has_directed_cycle(q: &ConjunctiveQuery) -> bool {
    let edges = var_edges(q);
    let mut succ: FxHashMap<VarId, Vec<VarId>> = FxHashMap::default();
    for &(a, b, _) in &edges {
        if a == b {
            return true;
        }
        succ.entry(a).or_default().push(b);
    }
    // Iterative DFS with colors.
    let mut color: FxHashMap<VarId, u8> = FxHashMap::default();
    let nodes: FxHashSet<VarId> = q.variables();
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let succs = succ.get(&node).map_or(&[][..], |v| v.as_slice());
            if idx < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let next = succs[idx];
                match color.get(&next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        stack.push((next, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
            }
        }
    }
    false
}

/// Is the query's variable graph an undirected forest (no undirected
/// cycle)? Parallel edges between the same pair count as a cycle.
pub fn is_undirected_tree(q: &ConjunctiveQuery) -> bool {
    // Union-find over variables; any edge joining two already-connected
    // variables closes an undirected cycle.
    let mut parent: FxHashMap<VarId, VarId> = FxHashMap::default();
    fn find(parent: &mut FxHashMap<VarId, VarId>, mut v: VarId) -> VarId {
        loop {
            let p = *parent.entry(v).or_insert(v);
            if p == v {
                return v;
            }
            let gp = *parent.entry(p).or_insert(p);
            parent.insert(v, gp);
            v = gp;
        }
    }
    for (a, b, _) in var_edges(q) {
        if a == b {
            return false;
        }
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra == rb {
            return false;
        }
        parent.insert(ra, rb);
    }
    true
}

/// Classifies the query per Section 4.
pub fn shape(q: &ConjunctiveQuery) -> QueryShape {
    if has_directed_cycle(q) {
        QueryShape::DirectedCycle
    } else if is_undirected_tree(q) {
        QueryShape::UndirectedTree
    } else {
        QueryShape::UndirectedCycleOnly
    }
}

/// Finds a (♥) fork: two distinct binary atoms pointing into the same
/// variable. Every query with an undirected but no directed cycle has
/// one (Section 4.1).
pub fn find_fork(q: &ConjunctiveQuery) -> Option<Fork> {
    let mut into: FxHashMap<VarId, usize> = FxHashMap::default();
    for (i, atom) in q.atoms.iter().enumerate() {
        if atom.args.len() != 2 || !atom.args[0].is_var() {
            // (♥) concerns variable predecessors; counterexamples avoid
            // constants (Lemma 7 (iii)).
            continue;
        }
        if let Term::Var(z) = atom.args[1] {
            if let Some(&first) = into.get(&z) {
                if first != i {
                    return Some(Fork { atom1: first, atom2: i, target: z });
                }
            } else {
                into.insert(z, i);
            }
        }
    }
    None
}

/// The termination measure of Lemma 10's while-loop:
/// `Measure(Φ) = Σ_{x ∈ Var(Φ)} occ(x) · smaller(x)`, where `occ(x)`
/// counts occurrences and `smaller(x)` counts variables from which `x`
/// is reachable by a directed path.
pub fn measure(q: &ConjunctiveQuery) -> u64 {
    let vars: Vec<VarId> = {
        let mut v: Vec<VarId> = q.variables().into_iter().collect();
        v.sort_unstable();
        v
    };
    let mut succ: FxHashMap<VarId, Vec<VarId>> = FxHashMap::default();
    for (a, b, _) in var_edges(q) {
        succ.entry(a).or_default().push(b);
    }
    // smaller(x): number of variables y ≠ x with a directed path y →* x.
    let mut smaller: FxHashMap<VarId, u64> = FxHashMap::default();
    for &y in &vars {
        let mut seen: FxHashSet<VarId> = FxHashSet::default();
        let mut stack = vec![y];
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            if v != y {
                *smaller.entry(v).or_default() += 1;
            }
            if let Some(next) = succ.get(&v) {
                stack.extend(next.iter().copied());
            }
        }
    }
    let mut occ: FxHashMap<VarId, u64> = FxHashMap::default();
    for atom in &q.atoms {
        for v in atom.vars() {
            *occ.entry(v).or_default() += 1;
        }
    }
    vars.iter()
        .map(|v| occ.get(v).copied().unwrap_or(0) * smaller.get(v).copied().unwrap_or(0))
        .sum()
}

/// One normalization step in the spirit of Lemma 11, option 3: resolve
/// the fork by replacing `R₁(z′,z)` with `P(z′,z″)` — "the two
/// predecessors of z must be related". The caller chooses the relation
/// `P` (in the paper it is dictated by the color of `z`). Returns the
/// rewritten query.
pub fn resolve_fork_with(
    q: &ConjunctiveQuery,
    fork: &Fork,
    p: bddfc_core::PredId,
) -> ConjunctiveQuery {
    let z_prime = q.atoms[fork.atom1].args[0];
    let z_dprime = q.atoms[fork.atom2].args[0];
    let mut atoms: Vec<Atom> = Vec::with_capacity(q.atoms.len());
    for (i, atom) in q.atoms.iter().enumerate() {
        if i == fork.atom1 {
            atoms.push(Atom::new(p, vec![z_dprime, z_prime]));
        } else {
            atoms.push(atom.clone());
        }
    }
    ConjunctiveQuery { atoms, free: q.free.clone() }
}

/// One normalization step in the spirit of Lemma 11, option 1: unify the
/// two fork sources (`z′ = z″`), dropping the duplicate atom.
pub fn resolve_fork_by_unification(q: &ConjunctiveQuery, fork: &Fork) -> ConjunctiveQuery {
    let z_prime = q.atoms[fork.atom1].args[0];
    let z_dprime = q.atoms[fork.atom2].args[0];
    let subst = |v: VarId| -> Option<Term> {
        if Term::Var(v) == z_dprime {
            Some(z_prime)
        } else {
            None
        }
    };
    let mut atoms = Vec::new();
    let mut seen = FxHashSet::default();
    for atom in &q.atoms {
        let a = atom.apply(&subst);
        if seen.insert(a.clone()) {
            atoms.push(a);
        }
    }
    let free = q
        .free
        .iter()
        .map(|&f| match subst(f) {
            Some(Term::Var(w)) => w,
            _ => f,
        })
        .collect();
    ConjunctiveQuery { atoms, free }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_query, Vocabulary};

    fn q(src: &str, voc: &mut Vocabulary) -> ConjunctiveQuery {
        parse_query(src, voc).unwrap()
    }

    #[test]
    fn paths_are_trees() {
        let mut voc = Vocabulary::new();
        let query = q("E(X,Y), E(Y,Z), F(Y,W)", &mut voc);
        assert_eq!(shape(&query), QueryShape::UndirectedTree);
        assert!(find_fork(&query).is_none());
    }

    #[test]
    fn directed_cycles_detected() {
        let mut voc = Vocabulary::new();
        let query = q("E(X,Y), E(Y,Z), E(Z,X)", &mut voc);
        assert_eq!(shape(&query), QueryShape::DirectedCycle);
        let lp = q("E(X,X)", &mut voc);
        assert_eq!(shape(&lp), QueryShape::DirectedCycle);
    }

    #[test]
    fn example9_diamond_is_undirected_cycle_only() {
        // Example 9's 4-cycle: F(x1,y1), F(x2,y1), G(x2,y2), G(x1,y2).
        let mut voc = Vocabulary::new();
        let query = q("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc);
        assert_eq!(shape(&query), QueryShape::UndirectedCycleOnly);
        let fork = find_fork(&query).unwrap();
        assert_eq!(voc.var_name(fork.target), "Y1");
    }

    #[test]
    fn unification_step_shrinks_variables() {
        let mut voc = Vocabulary::new();
        let query = q("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc);
        let fork = find_fork(&query).unwrap();
        let unified = resolve_fork_by_unification(&query, &fork);
        assert!(unified.var_count() < query.var_count());
        // Lemma 11 option 1: fewer variables.
    }

    #[test]
    fn fork_resolution_decreases_measure() {
        // Lemma 10's termination argument: each application of option 2/3
        // strictly decreases Measure. Build the (♥) diamond and resolve.
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 2);
        let query = q("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc);
        let before = measure(&query);
        let fork = find_fork(&query).unwrap();
        let resolved = resolve_fork_with(&query, &fork, p);
        let after = measure(&resolved);
        assert!(
            after < before,
            "measure must strictly decrease: {before} -> {after}"
        );
    }

    #[test]
    fn measure_of_tree_query() {
        let mut voc = Vocabulary::new();
        // X -> Y -> Z: occ = (1,2,1); smaller = (0,1,2); measure = 4.
        let query = q("E(X,Y), E(Y,Z)", &mut voc);
        assert_eq!(measure(&query), 4);
    }

    #[test]
    fn constants_do_not_create_edges() {
        let mut voc = Vocabulary::new();
        let query = q("E(a,X), E(b,X)", &mut voc);
        // Two in-atoms at X but through constants: still a tree and no
        // variable fork... the fork targets a variable with two *variable*
        // predecessors — constants are unary decorations.
        assert_eq!(shape(&query), QueryShape::UndirectedTree);
    }

    #[test]
    fn parallel_edges_are_a_cycle() {
        let mut voc = Vocabulary::new();
        let query = q("E(X,Y), F(X,Y)", &mut voc);
        assert!(!is_undirected_tree(&query));
        assert!(!has_directed_cycle(&query));
        assert_eq!(shape(&query), QueryShape::UndirectedCycleOnly);
    }
}
