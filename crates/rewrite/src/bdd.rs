//! The BDD property: semi-decision, certificates, and the constant κ.
//!
//! BDD is undecidable in general, but — as the paper notes — "in all
//! practical situations … proving the statement 'all the programs from
//! class C are BDD' is an easy exercise". Computationally, we *witness*
//! BDD for a concrete query by saturating its rewriting, and we compute
//! the Section 3.3 constant
//!
//! > κ = max { |Var(Ψ′)| : Ψ ⇒ ψ is a rule in T }
//!
//! (the maximal variable count of the positive first-order rewriting of a
//! rule body) by rewriting every rule body.

use crate::rewrite::{rewrite_query, RewriteConfig, RewriteResult};
use bddfc_core::{ConjunctiveQuery, Term, Theory, Vocabulary};

/// Outcome of a budgeted BDD probe for one query.
#[derive(Clone, Debug)]
pub enum BddWitness {
    /// The rewriting saturated: a UCQ rewriting exists for this query.
    Rewriting(RewriteResult),
    /// The budget ran out; nothing can be concluded.
    Inconclusive(RewriteResult),
}

impl BddWitness {
    /// The rewriting result, saturated or not.
    pub fn result(&self) -> &RewriteResult {
        match self {
            BddWitness::Rewriting(r) | BddWitness::Inconclusive(r) => r,
        }
    }

    /// Did the rewriting saturate?
    pub fn is_witness(&self) -> bool {
        matches!(self, BddWitness::Rewriting(_))
    }
}

/// Probes the BDD property for one query: saturating rewriting ⇒ witness.
///
/// Returns `None` for multi-head theories (normalize first, Section 5.3).
pub fn bdd_witness(
    query: &ConjunctiveQuery,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: RewriteConfig,
) -> Option<BddWitness> {
    let res = rewrite_query(query, theory, voc, config)?;
    Some(if res.saturated {
        BddWitness::Rewriting(res)
    } else {
        BddWitness::Inconclusive(res)
    })
}

/// Probes BDD over all *atomic* queries `R(x₁,…,xₖ)` — with `x̄` **free** —
/// of the theory's signature. Returns the per-predicate outcomes. If every
/// atomic query saturates, the theory is *atomically BDD* — the practical
/// indicator used by our pipeline (full BDD quantifies over all queries;
/// atomic saturation is necessary, and for the classes the paper
/// discusses — linear, sticky — it is where the action is). Free
/// variables give the strong reading: the Boolean existential closure of
/// an atom often saturates trivially even for non-BDD theories.
pub fn atomic_bdd_probe(
    theory: &Theory,
    voc: &mut Vocabulary,
    config: RewriteConfig,
) -> Vec<(String, bool)> {
    let preds: Vec<_> = {
        let mut v: Vec<_> = theory.preds().into_iter().collect();
        v.sort_unstable();
        v
    };
    let mut out = Vec::new();
    for p in preds {
        let arity = voc.arity(p);
        let var_ids: Vec<_> = (0..arity).map(|i| voc.fresh_var(&format!("aq{i}"))).collect();
        let vars: Vec<Term> = var_ids.iter().map(|&v| Term::Var(v)).collect();
        let q =
            ConjunctiveQuery::with_free(vec![bddfc_core::Atom::new(p, vars)], var_ids.clone());
        let witness = bdd_witness(&q, theory, voc, config);
        let ok = witness.map(|w| w.is_witness()).unwrap_or(false);
        out.push((voc.pred_name(p).to_owned(), ok));
    }
    out
}

/// Is the theory atomically BDD within the budget?
pub fn is_atomically_bdd(theory: &Theory, voc: &mut Vocabulary, config: RewriteConfig) -> bool {
    atomic_bdd_probe(theory, voc, config).iter().all(|(_, ok)| *ok)
}

/// Computes the Section 3.3 constant κ: the maximal number of variables
/// in the rewriting of any rule body. Returns `None` if some body
/// rewriting fails to saturate within budget (then the theory is not
/// usably BDD for the pipeline).
pub fn kappa(theory: &Theory, voc: &mut Vocabulary, config: RewriteConfig) -> Option<usize> {
    let mut max = 0usize;
    for rule in &theory.rules {
        // The paper evaluates Ψ′ at the frontier (Lemma 5 fixes b = the
        // frontier value), so the frontier variables are free.
        let mut body_q = rule.body_query();
        let mut frontier: Vec<_> = rule.frontier().into_iter().collect();
        frontier.sort_unstable();
        body_q.free = frontier;
        let res = rewrite_query(&body_q, theory, voc, config)?;
        if !res.saturated {
            return None;
        }
        for d in &res.ucq.disjuncts {
            max = max.max(d.var_count());
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_rule;

    fn linear_theory(voc: &mut Vocabulary) -> Theory {
        Theory::new(vec![
            parse_rule("P(X) -> E(X,Z)", voc).unwrap(),
            parse_rule("E(X,Y) -> U(Y)", voc).unwrap(),
        ])
    }

    #[test]
    fn linear_theory_is_atomically_bdd() {
        let mut voc = Vocabulary::new();
        let th = linear_theory(&mut voc);
        assert!(is_atomically_bdd(&th, &mut voc, RewriteConfig::default()));
    }

    #[test]
    fn transitive_closure_is_not_bdd() {
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap()]);
        let config = RewriteConfig { max_disjuncts: 15, max_steps: 4_000, max_piece: 2 };
        assert!(!is_atomically_bdd(&th, &mut voc, config));
    }

    #[test]
    fn kappa_of_linear_theory() {
        let mut voc = Vocabulary::new();
        let th = linear_theory(&mut voc);
        let k = kappa(&th, &mut voc, RewriteConfig::default()).unwrap();
        // Bodies: P(X) rewrites to itself (1 var); E(X,Y) rewrites to
        // {E(X,Y), P(X)} (≤ 2 vars). κ = 2.
        assert_eq!(k, 2);
    }

    #[test]
    fn kappa_fails_for_non_bdd_theory() {
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap()]);
        let config = RewriteConfig { max_disjuncts: 15, max_steps: 4_000, max_piece: 2 };
        assert_eq!(kappa(&th, &mut voc, config), None);
    }

    #[test]
    fn example7_theory_is_bdd() {
        // Example 7: E(x,y) -> ∃z E(y,z);  E(x,y), E(x',y) -> R(x,x').
        // The paper calls this theory BDD.
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![
            parse_rule("E(X,Y) -> E(Y,Z)", &mut voc).unwrap(),
            parse_rule("E(X,Y), E(X2,Y) -> R(X,X2)", &mut voc).unwrap(),
        ]);
        assert!(is_atomically_bdd(&th, &mut voc, RewriteConfig::default()));
    }

    #[test]
    fn per_predicate_probe_reports_names() {
        let mut voc = Vocabulary::new();
        let th = linear_theory(&mut voc);
        let probe = atomic_bdd_probe(&th, &mut voc, RewriteConfig::default());
        assert_eq!(probe.len(), 3); // P, E, U
        assert!(probe.iter().all(|(_, ok)| *ok));
    }
}
