//! Homomorphic containment and equivalence of conjunctive queries.
//!
//! The rewriting engine keeps its UCQ small by discarding disjuncts that
//! are subsumed by (mapped into by) more general ones. Containment is
//! decided the classical way: `Q_specific ⊑ Q_general` iff `Q_general`
//! maps homomorphically into the frozen (canonical) instance of
//! `Q_specific`, sending free variables to their frozen counterparts in
//! order.
//!
//! Freezing here uses *ephemeral* constants — ids in a reserved high range
//! never handed out by any [`bddfc_core::Vocabulary`] — so the hot
//! subsumption path allocates no interner entries. The homomorphism
//! engine only compares ids, so this is safe.

use bddfc_core::{hom, Binding, ConjunctiveQuery, ConstId, Fact, Instance, Term, VarId};
use bddfc_core::fxhash::FxHashMap;

/// Base of the ephemeral constant range. Real vocabularies hand out ids
/// sequentially from 0 and could not practically reach 2³¹ symbols.
const EPHEMERAL_BASE: u32 = 1 << 31;

/// Freezes a query into an instance using ephemeral constants; returns the
/// instance and the variable map.
fn freeze_ephemeral(cq: &ConjunctiveQuery) -> (Instance, FxHashMap<VarId, ConstId>) {
    let mut map: FxHashMap<VarId, ConstId> = FxHashMap::default();
    let mut inst = Instance::new();
    let mut next = EPHEMERAL_BASE;
    for atom in &cq.atoms {
        let mut args = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(c) => {
                    debug_assert!(c.0 < EPHEMERAL_BASE, "real constant in ephemeral range");
                    args.push(*c);
                }
                Term::Var(v) => {
                    let c = *map.entry(*v).or_insert_with(|| {
                        let c = ConstId(next);
                        next += 1;
                        c
                    });
                    args.push(c);
                }
            }
        }
        inst.insert(Fact::new(atom.pred, args));
    }
    (inst, map)
}

/// Does every instance satisfying `specific` also satisfy `general`?
/// (I.e. `specific ⊑ general`; `general` homomorphically maps into
/// `specific`.) Free variable tuples are matched positionally.
pub fn subsumes(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    if general.free.len() != specific.free.len() {
        return false;
    }
    let (frozen, var_map) = freeze_ephemeral(specific);
    let mut init = Binding::default();
    for (&gv, &sv) in general.free.iter().zip(specific.free.iter()) {
        let Some(&target) = var_map.get(&sv) else {
            // A free variable of `specific` not occurring in its atoms:
            // cannot anchor the mapping; treat conservatively.
            return false;
        };
        // Two general free vars may coincide; enforce consistency.
        if let Some(&existing) = init.get(&gv) {
            if existing != target {
                return false;
            }
        }
        init.insert(gv, target);
    }
    hom::hom_exists(&frozen, &general.atoms, &init)
}

/// Are the two queries homomorphically equivalent?
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

/// Inserts `cq` into a set of pairwise-incomparable disjuncts: drops it if
/// subsumed by an existing disjunct, else removes disjuncts it subsumes
/// and appends it. Returns `true` if the query was inserted.
pub fn insert_minimal(disjuncts: &mut Vec<ConjunctiveQuery>, cq: ConjunctiveQuery) -> bool {
    for existing in disjuncts.iter() {
        if subsumes(existing, &cq) {
            return false;
        }
    }
    disjuncts.retain(|existing| !subsumes(&cq, existing));
    disjuncts.push(cq);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_query, Vocabulary};

    #[test]
    fn shorter_path_subsumes_longer() {
        let mut voc = Vocabulary::new();
        let p1 = parse_query("E(X,Y)", &mut voc).unwrap();
        let p2 = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        assert!(subsumes(&p1, &p2));
        assert!(!subsumes(&p2, &p1));
    }

    #[test]
    fn loop_is_most_specific() {
        let mut voc = Vocabulary::new();
        let path = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        let lp = parse_query("E(W,W)", &mut voc).unwrap();
        assert!(subsumes(&path, &lp));
        assert!(!subsumes(&lp, &path));
    }

    #[test]
    fn equivalence_up_to_redundancy() {
        let mut voc = Vocabulary::new();
        let q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        let q2 = parse_query("E(X,Y), E(X2,Y2)", &mut voc).unwrap();
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn constants_block_subsumption() {
        let mut voc = Vocabulary::new();
        let qa = parse_query("E(a,Y)", &mut voc).unwrap();
        let qv = parse_query("E(X,Y)", &mut voc).unwrap();
        assert!(subsumes(&qv, &qa));
        assert!(!subsumes(&qa, &qv));
    }

    #[test]
    fn free_variables_anchor_the_mapping() {
        let mut voc = Vocabulary::new();
        let mut q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        q1.free = vec![voc.var("X")];
        let mut q2 = parse_query("E(X,Y)", &mut voc).unwrap();
        q2.free = vec![voc.var("Y")];
        // Boolean-ly equivalent but answer variables differ.
        assert!(!subsumes(&q1, &q2));
        assert!(subsumes(&q1, &q1.clone()));
    }

    #[test]
    fn insert_minimal_keeps_antichain() {
        let mut voc = Vocabulary::new();
        let edge = parse_query("E(X,Y)", &mut voc).unwrap();
        let path = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        let lp = parse_query("E(W,W)", &mut voc).unwrap();
        let mut set = Vec::new();
        assert!(insert_minimal(&mut set, path));
        // Path subsumes loop, so loop is rejected.
        assert!(!insert_minimal(&mut set, lp));
        assert_eq!(set.len(), 1);
        assert!(insert_minimal(&mut set, edge));
        // Edge subsumes path: set collapses to {edge}.
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].atoms.len(), 1);
    }

    #[test]
    fn arity_mismatch_never_subsumes() {
        let mut voc = Vocabulary::new();
        let mut q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        q1.free = vec![voc.var("X")];
        let q2 = parse_query("E(X,Y)", &mut voc).unwrap();
        assert!(!subsumes(&q1, &q2));
    }

    #[test]
    fn free_var_paths_are_incomparable() {
        // With endpoints free, E(U,V) does not subsume the 2-path.
        let mut voc = Vocabulary::new();
        let mut edge = parse_query("E(U,V)", &mut voc).unwrap();
        edge.free = vec![voc.var("U"), voc.var("V")];
        let mut path = parse_query("E(U,W), E(W,V)", &mut voc).unwrap();
        path.free = vec![voc.var("U"), voc.var("V")];
        assert!(!subsumes(&edge, &path));
        assert!(!subsumes(&path, &edge));
    }
}
