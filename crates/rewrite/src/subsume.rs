//! Homomorphic containment and equivalence of conjunctive queries.
//!
//! The rewriting engine keeps its UCQ small by discarding disjuncts that
//! are subsumed by (mapped into by) more general ones. Containment is
//! decided the classical way: `Q_specific ⊑ Q_general` iff `Q_general`
//! maps homomorphically into the frozen (canonical) instance of
//! `Q_specific`, sending free variables to their frozen counterparts in
//! order.
//!
//! Freezing here uses *ephemeral* constants — ids in a reserved high range
//! never handed out by any [`bddfc_core::Vocabulary`] — so the hot
//! subsumption path allocates no interner entries. The homomorphism
//! engine only compares ids, so this is safe.

use bddfc_core::fxhash::FxHashMap;
use bddfc_core::{hom, Binding, ConjunctiveQuery, ConstId, Fact, Instance, PredId, Term, VarId};

/// Base of the ephemeral constant range. Real vocabularies hand out ids
/// sequentially from 0 and could not practically reach 2³¹ symbols.
const EPHEMERAL_BASE: u32 = 1 << 31;

/// Freezes a query into an instance using ephemeral constants; returns the
/// instance and the variable map.
fn freeze_ephemeral(cq: &ConjunctiveQuery) -> (Instance, FxHashMap<VarId, ConstId>) {
    let mut map: FxHashMap<VarId, ConstId> = FxHashMap::default();
    let mut inst = Instance::new();
    let mut next = EPHEMERAL_BASE;
    for atom in &cq.atoms {
        let mut args = Vec::with_capacity(atom.args.len());
        for t in &atom.args {
            match t {
                Term::Const(c) => {
                    debug_assert!(c.0 < EPHEMERAL_BASE, "real constant in ephemeral range");
                    args.push(*c);
                }
                Term::Var(v) => {
                    let c = *map.entry(*v).or_insert_with(|| {
                        let c = ConstId(next);
                        // Wrapping back to 0 would collide with real
                        // vocabulary ids and silently corrupt containment
                        // answers — fail loudly instead.
                        next = next.checked_add(1).unwrap_or_else(|| {
                            panic!(
                                "ephemeral constant counter wrapped past u32::MAX \
                                 freezing a query with {} atoms",
                                cq.atoms.len()
                            )
                        });
                        c
                    });
                    args.push(c);
                }
            }
        }
        inst.insert(Fact::new(atom.pred, args));
    }
    (inst, map)
}

/// The sorted, deduplicated predicate list of a query — the cheap
/// signature the subsumption prefilter compares.
fn signature(cq: &ConjunctiveQuery) -> Vec<PredId> {
    let mut preds: Vec<PredId> = cq.atoms.iter().map(|a| a.pred).collect();
    preds.sort_unstable();
    preds.dedup();
    preds
}

/// Is the sorted-deduplicated set `general` contained in `specific`?
fn sig_included(general: &[PredId], specific: &[PredId]) -> bool {
    let mut rest = specific;
    'outer: for g in general {
        while let Some((s, tail)) = rest.split_first() {
            rest = tail;
            if s == g {
                continue 'outer;
            }
            if s > g {
                return false;
            }
        }
        return false;
    }
    true
}

/// Does every instance satisfying `specific` also satisfy `general`?
/// (I.e. `specific ⊑ general`; `general` homomorphically maps into
/// `specific`.) Free variable tuples are matched positionally.
///
/// A homomorphism sends every atom of `general` onto a same-predicate
/// atom of `specific`, so predicate-*set* containment is a sound, cheap
/// prefilter before the backtracking search. Atom counts carry no such
/// condition: distinct atoms of `general` may collapse onto one atom of
/// `specific` (a larger query can subsume a smaller one).
pub fn subsumes(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    sig_included(&signature(general), &signature(specific))
        && subsumes_unfiltered(general, specific)
}

/// [`subsumes`] without the signature prefilter — the oracle the
/// differential test pins the prefiltered path against.
#[doc(hidden)]
pub fn subsumes_unfiltered(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    if general.free.len() != specific.free.len() {
        return false;
    }
    let (frozen, var_map) = freeze_ephemeral(specific);
    let mut init = Binding::default();
    for (&gv, &sv) in general.free.iter().zip(specific.free.iter()) {
        let Some(&target) = var_map.get(&sv) else {
            // A free variable of `specific` not occurring in its atoms:
            // cannot anchor the mapping; treat conservatively.
            return false;
        };
        // Two general free vars may coincide; enforce consistency.
        if let Some(&existing) = init.get(&gv) {
            if existing != target {
                return false;
            }
        }
        init.insert(gv, target);
    }
    hom::hom_exists(&frozen, &general.atoms, &init)
}

/// Are the two queries homomorphically equivalent?
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    subsumes(a, b) && subsumes(b, a)
}

/// Work counters for the subsumption machinery: how often the cheap
/// predicate-signature prefilter answered a pair, versus falling through
/// to the backtracking homomorphism check. The prefilter hit rate is
/// `prefilter_rejects / pairs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubsumeStats {
    /// Ordered (candidate, existing) pairs examined.
    pub pairs: u64,
    /// Pairs the signature prefilter rejected without a hom check.
    pub prefilter_rejects: u64,
    /// Pairs that needed the full backtracking homomorphism check.
    pub hom_checks: u64,
}

impl SubsumeStats {
    /// Accumulates another batch of counts into `self`.
    pub fn absorb(&mut self, other: SubsumeStats) {
        self.pairs += other.pairs;
        self.prefilter_rejects += other.prefilter_rejects;
        self.hom_checks += other.hom_checks;
    }
}

/// Inserts `cq` into a set of pairwise-incomparable disjuncts: drops it if
/// subsumed by an existing disjunct, else removes disjuncts it subsumes
/// and appends it. Returns `true` if the query was inserted.
pub fn insert_minimal(disjuncts: &mut Vec<ConjunctiveQuery>, cq: ConjunctiveQuery) -> bool {
    let mut stats = SubsumeStats::default();
    insert_minimal_counted(disjuncts, cq, &mut stats)
}

/// [`insert_minimal`] with work counters: every subsumption pair examined
/// bumps `stats`, splitting prefilter rejections from full hom checks.
pub fn insert_minimal_counted(
    disjuncts: &mut Vec<ConjunctiveQuery>,
    cq: ConjunctiveQuery,
    stats: &mut SubsumeStats,
) -> bool {
    let sig = signature(&cq);
    for existing in disjuncts.iter() {
        stats.pairs += 1;
        if sig_included(&signature(existing), &sig) {
            stats.hom_checks += 1;
            if subsumes_unfiltered(existing, &cq) {
                return false;
            }
        } else {
            stats.prefilter_rejects += 1;
        }
    }
    disjuncts.retain(|existing| {
        stats.pairs += 1;
        if sig_included(&sig, &signature(existing)) {
            stats.hom_checks += 1;
            !subsumes_unfiltered(&cq, existing)
        } else {
            stats.prefilter_rejects += 1;
            true
        }
    });
    disjuncts.push(cq);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_query, Vocabulary};

    #[test]
    fn shorter_path_subsumes_longer() {
        let mut voc = Vocabulary::new();
        let p1 = parse_query("E(X,Y)", &mut voc).unwrap();
        let p2 = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        assert!(subsumes(&p1, &p2));
        assert!(!subsumes(&p2, &p1));
    }

    #[test]
    fn loop_is_most_specific() {
        let mut voc = Vocabulary::new();
        let path = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        let lp = parse_query("E(W,W)", &mut voc).unwrap();
        assert!(subsumes(&path, &lp));
        assert!(!subsumes(&lp, &path));
    }

    #[test]
    fn equivalence_up_to_redundancy() {
        let mut voc = Vocabulary::new();
        let q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        let q2 = parse_query("E(X,Y), E(X2,Y2)", &mut voc).unwrap();
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn constants_block_subsumption() {
        let mut voc = Vocabulary::new();
        let qa = parse_query("E(a,Y)", &mut voc).unwrap();
        let qv = parse_query("E(X,Y)", &mut voc).unwrap();
        assert!(subsumes(&qv, &qa));
        assert!(!subsumes(&qa, &qv));
    }

    #[test]
    fn free_variables_anchor_the_mapping() {
        let mut voc = Vocabulary::new();
        let mut q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        q1.free = vec![voc.var("X")];
        let mut q2 = parse_query("E(X,Y)", &mut voc).unwrap();
        q2.free = vec![voc.var("Y")];
        // Boolean-ly equivalent but answer variables differ.
        assert!(!subsumes(&q1, &q2));
        assert!(subsumes(&q1, &q1.clone()));
    }

    #[test]
    fn insert_minimal_keeps_antichain() {
        let mut voc = Vocabulary::new();
        let edge = parse_query("E(X,Y)", &mut voc).unwrap();
        let path = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        let lp = parse_query("E(W,W)", &mut voc).unwrap();
        let mut set = Vec::new();
        assert!(insert_minimal(&mut set, path));
        // Path subsumes loop, so loop is rejected.
        assert!(!insert_minimal(&mut set, lp));
        assert_eq!(set.len(), 1);
        assert!(insert_minimal(&mut set, edge));
        // Edge subsumes path: set collapses to {edge}.
        assert_eq!(set.len(), 1);
        assert_eq!(set[0].atoms.len(), 1);
    }

    #[test]
    fn counted_insert_splits_prefilter_from_hom_checks() {
        let mut voc = Vocabulary::new();
        let edge = parse_query("E(X,Y)", &mut voc).unwrap();
        let other = parse_query("F(X,Y)", &mut voc).unwrap();
        let longer = parse_query("E(X,Y), E(Y,Z)", &mut voc).unwrap();
        let mut set = Vec::new();
        let mut stats = SubsumeStats::default();
        assert!(insert_minimal_counted(&mut set, edge, &mut stats));
        // Empty set: nothing to compare against.
        assert_eq!(stats, SubsumeStats::default());
        assert!(insert_minimal_counted(&mut set, other, &mut stats));
        // F(X,Y) vs E(X,Y): disjoint signatures, both directions answered
        // by the prefilter.
        assert_eq!(stats.pairs, 2);
        assert_eq!(stats.prefilter_rejects, 2);
        assert_eq!(stats.hom_checks, 0);
        // The 2-path is subsumed by the edge — the very first pair passes
        // the prefilter (E ⊆ E), the hom check answers, and the scan
        // returns early without ever reaching F(X,Y).
        assert!(!insert_minimal_counted(&mut set, longer, &mut stats));
        assert_eq!(stats.pairs, 3);
        assert_eq!(stats.hom_checks, 1);
        assert_eq!(stats.pairs, stats.prefilter_rejects + stats.hom_checks);
    }

    #[test]
    fn arity_mismatch_never_subsumes() {
        let mut voc = Vocabulary::new();
        let mut q1 = parse_query("E(X,Y)", &mut voc).unwrap();
        q1.free = vec![voc.var("X")];
        let q2 = parse_query("E(X,Y)", &mut voc).unwrap();
        assert!(!subsumes(&q1, &q2));
    }

    #[test]
    fn prefilter_agrees_with_unfiltered_oracle() {
        // Differential pin: `subsumes` (signature-prefiltered) must answer
        // exactly like the raw homomorphism check on every ordered pair of
        // a diverse query zoo — including pairs the prefilter rejects.
        let mut voc = Vocabulary::new();
        let sources = [
            "E(X,Y)",
            "E(X,Y), E(Y,Z)",
            "E(W,W)",
            "E(X,Y), E(X2,Y2)",
            "E(a,Y)",
            "E(X,Y), F(Y,Z)",
            "F(X,Y)",
            "F(X,X), E(X,Y), G(Y)",
            "G(X), G(Y)",
            "E(X,Y), E(Y,X), F(X,X)",
        ];
        let mut zoo: Vec<ConjunctiveQuery> =
            sources.iter().map(|s| parse_query(s, &mut voc).unwrap()).collect();
        // A few with answer variables, to exercise the anchored path.
        let mut anchored = parse_query("E(U,V), E(V,W)", &mut voc).unwrap();
        anchored.free = vec![voc.var("U")];
        zoo.push(anchored);
        for general in &zoo {
            for specific in &zoo {
                assert_eq!(
                    subsumes(general, specific),
                    subsumes_unfiltered(general, specific),
                    "prefilter changed the answer for {general:?} vs {specific:?}"
                );
            }
        }
    }

    #[test]
    fn free_var_paths_are_incomparable() {
        // With endpoints free, E(U,V) does not subsume the 2-path.
        let mut voc = Vocabulary::new();
        let mut edge = parse_query("E(U,V)", &mut voc).unwrap();
        edge.free = vec![voc.var("U"), voc.var("V")];
        let mut path = parse_query("E(U,W), E(W,V)", &mut voc).unwrap();
        path.free = vec![voc.var("U"), voc.var("V")];
        assert!(!subsumes(&edge, &path));
        assert!(!subsumes(&path, &edge));
    }
}
