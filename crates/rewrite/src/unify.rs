//! Most-general unification of atoms over variable/constant terms.
//!
//! The rewriting engine unifies rule heads with query atoms. Terms are
//! flat (no function symbols), so unification is a union of variable
//! classes with at most one constant each.

use bddfc_core::{Atom, Term, VarId};
use bddfc_core::fxhash::FxHashMap;

/// A triangular substitution: variables map to terms; lookups chase
/// variable-to-variable links to a representative.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    map: FxHashMap<VarId, Term>,
}

impl Subst {
    /// Creates the empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves a term to its current representative.
    pub fn walk(&self, mut t: Term) -> Term {
        while let Term::Var(v) = t {
            match self.map.get(&v) {
                Some(&next) => t = next,
                None => break,
            }
        }
        t
    }

    /// Binds a variable (must be unbound after walking).
    fn bind(&mut self, v: VarId, t: Term) {
        debug_assert!(!self.map.contains_key(&v));
        if t != Term::Var(v) {
            self.map.insert(v, t);
        }
    }

    /// Unifies two terms; returns false on clash.
    pub fn unify_terms(&mut self, a: Term, b: Term) -> bool {
        let a = self.walk(a);
        let b = self.walk(b);
        match (a, b) {
            (Term::Var(x), Term::Var(y)) => {
                if x != y {
                    self.bind(x, Term::Var(y));
                }
                true
            }
            (Term::Var(x), c @ Term::Const(_)) | (c @ Term::Const(_), Term::Var(x)) => {
                self.bind(x, c);
                true
            }
            (Term::Const(c1), Term::Const(c2)) => c1 == c2,
        }
    }

    /// Unifies two atoms; returns false on clash (including predicate or
    /// arity mismatch).
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> bool {
        if a.pred != b.pred || a.args.len() != b.args.len() {
            return false;
        }
        a.args
            .iter()
            .zip(b.args.iter())
            .all(|(&ta, &tb)| self.unify_terms(ta, tb))
    }

    /// Applies the substitution to an atom (full resolution).
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.pred,
            atom.args.iter().map(|&t| self.walk(t)).collect(),
        )
    }

    /// All variables that resolve to the same representative as `t`.
    pub fn class_of(&self, t: Term) -> Vec<VarId> {
        let rep = self.walk(t);
        let mut out = Vec::new();
        // Include the representative itself when it is a variable.
        if let Term::Var(v) = rep {
            out.push(v);
        }
        for &v in self.map.keys() {
            if Term::Var(v) != rep && self.walk(Term::Var(v)) == rep {
                out.push(v);
            }
        }
        out
    }
}

/// Computes the mgu of `left` with every atom of `rights` simultaneously
/// (used to unify a rule head with a whole query piece).
pub fn unify_with_all(left: &Atom, rights: &[&Atom]) -> Option<Subst> {
    let mut subst = Subst::new();
    for r in rights {
        if !subst.unify_atoms(left, r) {
            return None;
        }
    }
    Some(subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::Vocabulary;

    fn atom(voc: &mut Vocabulary, p: &str, args: &[&str]) -> Atom {
        let pred = voc.pred(p, args.len());
        let terms = args
            .iter()
            .map(|s| {
                if s.starts_with(char::is_uppercase) {
                    Term::Var(voc.var(s))
                } else {
                    Term::Const(voc.constant(s))
                }
            })
            .collect();
        Atom::new(pred, terms)
    }

    #[test]
    fn unifies_var_with_const() {
        let mut voc = Vocabulary::new();
        let a = atom(&mut voc, "E", &["X", "Y"]);
        let b = atom(&mut voc, "E", &["a", "Y"]);
        let s = unify_with_all(&a, &[&b]).unwrap();
        let x = voc.find_const("a").unwrap();
        assert_eq!(s.walk(Term::Var(voc.var("X"))), Term::Const(x));
    }

    #[test]
    fn constant_clash_fails() {
        let mut voc = Vocabulary::new();
        let a = atom(&mut voc, "E", &["a", "X"]);
        let b = atom(&mut voc, "E", &["b", "Y"]);
        assert!(unify_with_all(&a, &[&b]).is_none());
    }

    #[test]
    fn predicate_mismatch_fails() {
        let mut voc = Vocabulary::new();
        let a = atom(&mut voc, "E", &["X", "Y"]);
        let b = atom(&mut voc, "F", &["X", "Y"]);
        assert!(unify_with_all(&a, &[&b]).is_none());
    }

    #[test]
    fn simultaneous_unification_merges_classes() {
        let mut voc = Vocabulary::new();
        // Unify E(X,Z) with both E(U,V) and E(W,V): forces U ~ W ~ X, Z ~ V.
        let h = atom(&mut voc, "E", &["X", "Z"]);
        let q1 = atom(&mut voc, "E", &["U", "V"]);
        let q2 = atom(&mut voc, "E", &["W", "V"]);
        let s = unify_with_all(&h, &[&q1, &q2]).unwrap();
        let u = voc.var("U");
        let w = voc.var("W");
        assert_eq!(s.walk(Term::Var(u)), s.walk(Term::Var(w)));
        let class = s.class_of(Term::Var(u));
        assert!(class.contains(&voc.var("X")));
        assert!(class.contains(&w));
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let mut voc = Vocabulary::new();
        let h = atom(&mut voc, "E", &["X", "X"]);
        let q = atom(&mut voc, "E", &["A", "B"]);
        let s = unify_with_all(&h, &[&q]).unwrap();
        assert_eq!(
            s.walk(Term::Var(voc.var("A"))),
            s.walk(Term::Var(voc.var("B")))
        );
    }

    #[test]
    fn apply_resolves_chains() {
        let mut voc = Vocabulary::new();
        let h = atom(&mut voc, "E", &["X", "Y"]);
        let q = atom(&mut voc, "E", &["Y", "a"]);
        let s = unify_with_all(&h, &[&q]).unwrap();
        let applied = s.apply_atom(&h);
        let a = voc.find_const("a").unwrap();
        // X ~ Y ~ a... wait: X unifies with Y, Y unifies with a.
        assert_eq!(applied.args[1], Term::Const(a));
    }

    #[test]
    fn occurs_is_trivial_without_functions() {
        // Flat terms cannot loop; X ~ Y then Y ~ X must not hang.
        let mut voc = Vocabulary::new();
        let mut s = Subst::new();
        let x = voc.var("X");
        let y = voc.var("Y");
        assert!(s.unify_terms(Term::Var(x), Term::Var(y)));
        assert!(s.unify_terms(Term::Var(y), Term::Var(x)));
        assert_eq!(s.walk(Term::Var(x)), s.walk(Term::Var(y)));
    }
}
