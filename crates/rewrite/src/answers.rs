//! Certain answers via rewriting, and cross-validation against the chase.
//!
//! For a BDD theory, Definition 2 gives the practical payoff: instead of
//! evaluating `Φ` over the (possibly infinite) `Chase(D,T)`, evaluate the
//! rewriting `Φ′` directly over the finite `D`. This module implements
//! that evaluation path and a checker asserting it agrees with the
//! chase-based path — the equivalence the definition asserts.

use crate::rewrite::{rewrite_query, RewriteConfig};
use bddfc_core::{hom, ConjunctiveQuery, ConstId, Instance, Theory, Vocabulary};

/// Answers `Φ` over `D` under `T` by rewriting. Returns `None` if the
/// rewriting did not saturate (theory not usably BDD for this query).
pub fn certain_answers_rewriting(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &ConjunctiveQuery,
    config: RewriteConfig,
) -> Option<Vec<Vec<ConstId>>> {
    let res = rewrite_query(query, theory, voc, config)?;
    if !res.saturated {
        return None;
    }
    Some(hom::ucq_answers(db, &res.ucq))
}

/// Boolean version of [`certain_answers_rewriting`].
pub fn certainly_entailed_rewriting(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    query: &ConjunctiveQuery,
    config: RewriteConfig,
) -> Option<bool> {
    let res = rewrite_query(query, theory, voc, config)?;
    if !res.saturated {
        return None;
    }
    Some(hom::satisfies_ucq(db, &res.ucq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{certain_cq, ChaseConfig};
    use bddfc_core::{parse_into, parse_program, parse_query};

    #[test]
    fn rewriting_agrees_with_chase_on_linear_theory() {
        let prog = parse_program(
            "P(X) -> exists Z . E(X,Z).
             E(X,Y) -> U(Y).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("U(W)", &mut voc).unwrap();
        for db_src in ["P(a).", "E(b,c).", "R(a,b).", "P(a). E(a,c)."] {
            let mut voc2 = voc.clone();
            let (_, db, _) = parse_into(db_src, &mut voc2).unwrap();
            let via_rw = certainly_entailed_rewriting(
                &db,
                &prog.theory,
                &mut voc2.clone(),
                &q,
                RewriteConfig::default(),
            )
            .unwrap();
            let via_chase = certain_cq(&db, &prog.theory, &mut voc2, &q, ChaseConfig::default());
            assert_eq!(
                via_rw,
                via_chase.is_true(),
                "disagreement on db {db_src:?}"
            );
        }
    }

    #[test]
    fn frontier_keeps_subsumed_intermediates_alive() {
        // Shrunk bddfc-fuzz reproducer (rewrite_vs_chase). Rewriting the
        // query steps through B(Y),P(Y,W) — which is subsumed by the
        // already-kept P(Y,Z),P(Y,W') — and only *its* descendant B(Y)
        // matches the database. A frontier pruned by subsumption drops
        // the intermediate, reports saturation, and answers false while
        // the chase answers true.
        let prog = parse_program(
            "P(X,W) -> A(X).
             B(X) -> P(X,b).
             A(Y) -> Q(Y,Y).
             B(b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("Q(X,Y), P(Y,Z)", &mut voc).unwrap();
        let via_rw = certainly_entailed_rewriting(
            &prog.instance,
            &prog.theory,
            &mut voc.clone(),
            &q,
            RewriteConfig::default(),
        )
        .unwrap();
        assert!(via_rw, "rewriting lost the B(Y) disjunct");
        let via_chase =
            certain_cq(&prog.instance, &prog.theory, &mut voc, &q, ChaseConfig::default());
        assert!(via_chase.is_true());
    }

    #[test]
    fn answer_variables_are_computed() {
        let prog = parse_program(
            "P(X) -> exists Z . E(X,Z).
             P(a). E(b,c).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        // Who has an outgoing E-edge (certainly)?
        let mut q = parse_query("E(W,V)", &mut voc).unwrap();
        q.free = vec![voc.var("W")];
        let ans = certain_answers_rewriting(
            &prog.instance,
            &prog.theory,
            &mut voc,
            &q,
            RewriteConfig::default(),
        )
        .unwrap();
        let a = voc.find_const("a").unwrap();
        let b = voc.find_const("b").unwrap();
        assert_eq!(ans, vec![vec![a], vec![b]]);
    }

    #[test]
    fn unsaturated_rewriting_returns_none() {
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![
            bddfc_core::parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
        ]);
        let (_, db, _) = parse_into("E(a,b).", &mut voc).unwrap();
        let mut q = parse_query("E(U,V)", &mut voc).unwrap();
        q.free = vec![voc.var("U"), voc.var("V")];
        let config = RewriteConfig { max_disjuncts: 20, max_steps: 5_000, max_piece: 2 };
        assert_eq!(
            certainly_entailed_rewriting(&db, &th, &mut voc, &q, config),
            None
        );
    }
}
