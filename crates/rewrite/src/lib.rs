//! # bddfc-rewrite — UCQ rewriting and the BDD property
//!
//! Implements the machinery behind Definition 2 of *On the BDD/FC
//! Conjecture*:
//!
//! * atom unification over flat terms ([`unify`]);
//! * homomorphic containment of conjunctive queries ([`subsume`]);
//! * piece rewriting producing positive first-order (UCQ) rewritings
//!   ([`rewrite`]);
//! * BDD witnesses and the Section 3.3 constant κ ([`bdd`]);
//! * rewriting-based certain answers ([`answers`]).

#![warn(missing_docs)]

pub mod answers;
pub mod bdd;
pub mod query_graph;
pub mod rewrite;
pub mod subsume;
pub mod unify;

pub use answers::{certain_answers_rewriting, certainly_entailed_rewriting};
pub use bdd::{atomic_bdd_probe, bdd_witness, is_atomically_bdd, kappa, BddWitness};
pub use query_graph::{
    find_fork, has_directed_cycle, is_undirected_tree, measure, resolve_fork_by_unification,
    resolve_fork_with, shape, Fork, QueryShape,
};
pub use rewrite::{rewrite_query, rewrite_query_with, RewriteConfig, RewriteResult};
pub use subsume::{equivalent, insert_minimal, insert_minimal_counted, subsumes, SubsumeStats};
pub use unify::{unify_with_all, Subst};
