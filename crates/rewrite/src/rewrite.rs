//! UCQ rewriting by piece unification — the engine behind the BDD
//! property (Definition 2).
//!
//! A theory `T` is BDD iff every query `Φ` admits a *positive first order
//! rewriting*: a UCQ `Φ'` with `T, D ⊨ Φ ⇔ D ⊨ Φ'` for all `D`. The
//! rewriting is computed by backward-chaining: pick a disjunct `q`, a rule
//! `body ⇒ ∃z̄ h`, and a *piece* — a set of atoms of `q` unifiable with
//! `h` such that every variable merged with an existential `z̄` position
//! occurs nowhere outside the piece and is not an answer variable. Then
//! `θ(q ∖ piece) ∪ θ(body)` is a new disjunct. Saturation (up to
//! homomorphic subsumption) yields the rewriting; for BDD theories the
//! process terminates, and its output is exactly the `Φ'` used throughout
//! Section 3 of the paper.

use crate::subsume::{insert_minimal, insert_minimal_counted, SubsumeStats};
use crate::unify::{unify_with_all, Subst};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};
use bddfc_core::obs::{Event, EventSink, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::{Atom, ConjunctiveQuery, Rule, Term, Theory, Ucq, VarId, Vocabulary};

/// Budgets for a rewriting run.
#[derive(Clone, Copy, Debug)]
pub struct RewriteConfig {
    /// Maximum number of disjuncts kept (after subsumption pruning).
    pub max_disjuncts: usize,
    /// Maximum number of rewrite steps attempted.
    pub max_steps: usize,
    /// Maximum piece size considered (number of query atoms unified with
    /// one head at once).
    pub max_piece: usize,
}

impl Default for RewriteConfig {
    fn default() -> Self {
        RewriteConfig { max_disjuncts: 2_000, max_steps: 200_000, max_piece: 4 }
    }
}

/// The outcome of a rewriting run.
#[derive(Clone, Debug)]
pub struct RewriteResult {
    /// The rewriting computed so far: always *sound* (every disjunct is
    /// entailed); *complete* — a true positive first-order rewriting —
    /// exactly when [`RewriteResult::saturated`].
    pub ucq: Ucq,
    /// Did the process reach a fixpoint within budget? If so the theory
    /// admits a UCQ rewriting for this query (the BDD witness).
    pub saturated: bool,
    /// Number of successful rewrite steps (new disjuncts generated,
    /// including later-subsumed ones).
    pub steps: usize,
    /// Maximal rewrite depth (generations of backward chaining) over the
    /// retained disjuncts: an upper bound witness for the derivation depth
    /// `k_Φ` of the standard BDD definition.
    pub max_depth: usize,
}

/// Checks the piece condition for one existential variable class.
///
/// `class` is the set of variables unified with an existential head
/// variable; `piece_vars` the variables occurring in the piece;
/// `outside_vars` the variables occurring in the query outside the piece.
fn existential_class_ok(
    class: &[VarId],
    rule_body_vars: &FxHashSet<VarId>,
    query_free: &FxHashSet<VarId>,
    outside_vars: &FxHashSet<VarId>,
) -> bool {
    for v in class {
        // Merged with a frontier/body variable of the rule: the witness
        // would have to equal a pre-existing value — not sound.
        if rule_body_vars.contains(v) {
            return false;
        }
        if query_free.contains(v) || outside_vars.contains(v) {
            return false;
        }
    }
    true
}

/// Attempts one piece rewriting of `query` with `rule` (already renamed
/// apart) over the atom subset `piece` (indices into `query.atoms`).
/// Returns the new disjunct on success.
fn rewrite_step(
    query: &ConjunctiveQuery,
    rule: &Rule,
    piece: &[usize],
) -> Option<ConjunctiveQuery> {
    let head = &rule.head[0];
    let piece_atoms: Vec<&Atom> = piece.iter().map(|&i| &query.atoms[i]).collect();
    let subst: Subst = unify_with_all(head, &piece_atoms)?;

    let rule_body_vars = rule.body_vars();
    let query_free: FxHashSet<VarId> = query.free.iter().copied().collect();
    let piece_set: FxHashSet<usize> = piece.iter().copied().collect();
    let outside_vars: FxHashSet<VarId> = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| !piece_set.contains(i))
        .flat_map(|(_, a)| a.vars())
        .collect();

    let existentials = rule.existential_vars();
    for &z in &existentials {
        match subst.walk(Term::Var(z)) {
            Term::Const(_) => return None,
            Term::Var(_) => {
                let class = subst.class_of(Term::Var(z));
                // Two distinct existential variables may never be merged:
                // the chase assigns them distinct fresh nulls.
                if class.iter().any(|v| *v != z && existentials.contains(v)) {
                    return None;
                }
                // Restrict attention to the query's variables in the class
                // (plus rule body variables, which are fatal regardless).
                if !existential_class_ok(&class, &rule_body_vars, &query_free, &outside_vars) {
                    return None;
                }
            }
        }
    }

    // Answer variables must remain variables.
    for &f in &query.free {
        if matches!(subst.walk(Term::Var(f)), Term::Const(_)) {
            return None;
        }
    }

    let mut atoms: Vec<Atom> = Vec::new();
    let mut seen = FxHashSet::default();
    for (i, atom) in query.atoms.iter().enumerate() {
        if !piece_set.contains(&i) {
            let a = subst.apply_atom(atom);
            if seen.insert(a.clone()) {
                atoms.push(a);
            }
        }
    }
    for atom in &rule.body {
        let a = subst.apply_atom(atom);
        if seen.insert(a.clone()) {
            atoms.push(a);
        }
    }
    let free = query
        .free
        .iter()
        .map(|&f| match subst.walk(Term::Var(f)) {
            Term::Var(v) => v,
            Term::Const(_) => unreachable!("checked above"),
        })
        .collect();
    Some(ConjunctiveQuery { atoms, free })
}

/// Enumerates the non-empty subsets of `candidates` of size ≤ `cap`.
fn subsets(candidates: &[usize], cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let n = candidates.len();
    // Size-bounded enumeration; pieces beyond the cap are rare in practice
    // (the piece must unify with a *single* head atom).
    fn rec(cands: &[usize], start: usize, cap: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if !cur.is_empty() {
            out.push(cur.clone());
        }
        if cur.len() == cap {
            return;
        }
        for i in start..cands.len() {
            cur.push(cands[i]);
            rec(cands, i + 1, cap, cur, out);
            cur.pop();
        }
    }
    let mut cur = Vec::new();
    rec(candidates, 0, cap.min(n), &mut cur, &mut out);
    out
}

/// Computes the UCQ rewriting of `query` under `theory` within budget.
///
/// Requires single-head rules (the paper's standing assumption); returns
/// `None` if the theory has a multi-head rule.
///
/// Backward chaining proceeds generation by generation (the same order
/// the former FIFO queue visited). Per generation, the rules are renamed
/// apart once sequentially (the vocabulary is mutable state); expanding
/// each frontier disjunct is then read-only and fans out across threads,
/// every item emitting its candidates in canonical (rule, piece) order.
/// Subsumption minimization and the step/disjunct budgets apply on the
/// merged batch, sequentially, so the retained UCQ is identical at any
/// thread count.
pub fn rewrite_query(
    query: &ConjunctiveQuery,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: RewriteConfig,
) -> Option<RewriteResult> {
    rewrite_query_with(query, theory, voc, config, &NULL)
}

/// A dedup key for frontier admission that identifies a CQ up to
/// renaming of its existential variables: atoms are ordered by a
/// name-independent shape, existential variables are then numbered by
/// first occurrence in that order, and the renumbered atoms re-sorted.
/// The renumbering is a bijection, so equal keys imply the two CQs are
/// literally identical after renaming — hence logically equivalent.
/// (Ties in the shape sort can give isomorphic CQs distinct keys; that
/// only costs a re-exploration, never a lost rewriting.)
fn frontier_key(q: &ConjunctiveQuery) -> Vec<u64> {
    const CONST_TAG: u64 = 1 << 32;
    const FREE_TAG: u64 = 2 << 32;
    const EXIST_TAG: u64 = 3 << 32;
    let free: FxHashSet<VarId> = q.free.iter().copied().collect();
    // Shape: existential variables are blanked to the position of their
    // first occurrence within the atom (capturing intra-atom repeats).
    let shape = |a: &Atom| -> Vec<u64> {
        let mut s = vec![a.pred.0 as u64];
        for t in &a.args {
            s.push(match t {
                Term::Const(c) => CONST_TAG | c.0 as u64,
                Term::Var(v) if free.contains(v) => FREE_TAG | v.0 as u64,
                Term::Var(_) => {
                    EXIST_TAG | a.args.iter().position(|u| u == t).unwrap() as u64
                }
            });
        }
        s
    };
    let mut order: Vec<(Vec<u64>, usize)> =
        q.atoms.iter().enumerate().map(|(i, a)| (shape(a), i)).collect();
    order.sort();
    let mut canon: FxHashMap<VarId, u64> = FxHashMap::default();
    let mut rendered: Vec<Vec<u64>> = Vec::with_capacity(order.len());
    for &(_, i) in &order {
        let a = &q.atoms[i];
        let mut r = vec![a.pred.0 as u64];
        for t in &a.args {
            r.push(match t {
                Term::Const(c) => CONST_TAG | c.0 as u64,
                Term::Var(v) if free.contains(v) => FREE_TAG | v.0 as u64,
                Term::Var(v) => {
                    let next = canon.len() as u64;
                    EXIST_TAG | *canon.entry(*v).or_insert(next)
                }
            });
        }
        rendered.push(r);
    }
    rendered.sort();
    // Pred ids carry no tag and args always do, so the flattened stream
    // parses back unambiguously into atoms.
    rendered.into_iter().flatten().collect()
}

/// Like [`rewrite_query`], but reports one `rewrite`/`generation` event
/// per frontier generation into `sink`. Fields: `generation`, `frontier`
/// (disjuncts expanded this generation), `expanded` (candidate disjuncts
/// processed), `inserted` (candidates that survived subsumption),
/// `subsume_pairs` / `prefilter_rejects` / `hom_checks` (the prefilter
/// hit rate is `prefilter_rejects / subsume_pairs`), `steps_total` and
/// `disjuncts_total` (budget consumption), `budget_truncated`; gauges:
/// `wall_ns`, `threads`. Generations cut short by a budget still emit
/// their event before returning.
pub fn rewrite_query_with<S: EventSink>(
    query: &ConjunctiveQuery,
    theory: &Theory,
    voc: &mut Vocabulary,
    config: RewriteConfig,
    sink: &S,
) -> Option<RewriteResult> {
    if !theory.is_single_head() {
        return None;
    }
    // Per-frontier-item attribution: piece-unification attempts and
    // produced rewritings per rule and per piece size, plus per-rule
    // wall time. Only built when a recording sink is installed.
    struct ItemAttr {
        rule_tried: Vec<u64>,
        rule_produced: Vec<u64>,
        rule_ns: Vec<u64>,
        piece_tried: Vec<u64>,
        piece_produced: Vec<u64>,
    }
    let mut disjuncts: Vec<ConjunctiveQuery> = Vec::new();
    insert_minimal(&mut disjuncts, query.clone());
    // Canonical keys of every CQ ever admitted to a frontier. Frontier
    // admission must NOT prune by subsumption: dropping a merely
    // subsumed CQ also drops its future rewritings, which need not be
    // subsumed themselves (found by bddfc-fuzz: a subsumed intermediate
    // whose descendant was the only disjunct matching the database).
    // The output set `disjuncts` still minimizes by subsumption — that
    // direction is sound for UCQ evaluation. Dedup here is by renaming
    // of existential variables (equal keys imply isomorphic CQs), not
    // full logical equivalence: a missed equivalence only re-explores,
    // while pairwise homomorphism checks against everything explored
    // would dominate the whole rewriting on single-predicate queries.
    let mut explored: FxHashSet<Vec<u64>> = FxHashSet::default();
    explored.insert(frontier_key(query));
    let mut frontier: Vec<(ConjunctiveQuery, usize)> = vec![(query.clone(), 0)];

    let mut steps = 0usize;
    let mut max_depth = 0usize;
    let mut generation = 0u64;
    let run_span = if S::ENABLED { sink.span_open("rewrite", "run", 0, None) } else { 0 };

    while !frontier.is_empty() {
        let timer = SpanTimer::start();
        generation += 1;
        let gen_span = if S::ENABLED {
            sink.span_open("rewrite", "generation", run_span, Some(("generation", generation)))
        } else {
            0
        };
        let renamed: Vec<Rule> = theory.rules.iter().map(|r| r.rename_apart(voc)).collect();
        let expansions: Vec<(Vec<ConjunctiveQuery>, Option<ItemAttr>)> =
            par::par_map(&frontier, |(q, _)| {
                let mut out = Vec::new();
                let mut attr = if S::ENABLED {
                    Some(ItemAttr {
                        rule_tried: vec![0; renamed.len()],
                        rule_produced: vec![0; renamed.len()],
                        rule_ns: vec![0; renamed.len()],
                        piece_tried: vec![0; config.max_piece + 1],
                        piece_produced: vec![0; config.max_piece + 1],
                    })
                } else {
                    None
                };
                for (rule_idx, rule) in renamed.iter().enumerate() {
                    let rule_timer = if S::ENABLED { Some(SpanTimer::start()) } else { None };
                    let head_pred = rule.head[0].pred;
                    let candidates: Vec<usize> = q
                        .atoms
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| a.pred == head_pred)
                        .map(|(i, _)| i)
                        .collect();
                    // Datalog heads have no existential positions, so unifying
                    // two query atoms with the head at once only *specializes* a
                    // singleton-piece rewriting — singletons are complete and
                    // avoid the subset blow-up. Existential heads genuinely need
                    // multi-atom pieces (atoms sharing a witness variable).
                    let piece_cap = if rule.is_datalog() { 1 } else { config.max_piece };
                    for piece in subsets(&candidates, piece_cap) {
                        let rewritten = rewrite_step(q, rule, &piece);
                        if let Some(a) = attr.as_mut() {
                            let size = piece.len().min(config.max_piece);
                            a.rule_tried[rule_idx] += 1;
                            a.piece_tried[size] += 1;
                            if rewritten.is_some() {
                                a.rule_produced[rule_idx] += 1;
                                a.piece_produced[size] += 1;
                            }
                        }
                        if let Some(new_q) = rewritten {
                            out.push(new_q);
                        }
                    }
                    if let (Some(a), Some(t)) = (attr.as_mut(), rule_timer) {
                        a.rule_ns[rule_idx] += t.elapsed_ns();
                    }
                }
                (out, attr)
            });
        let (expansions, item_attrs): (Vec<Vec<ConjunctiveQuery>>, Vec<Option<ItemAttr>>) =
            expansions.into_iter().unzip();
        if S::ENABLED {
            // Merge the per-item attribution (par_map preserves frontier
            // order, so the merge — and every count — is deterministic)
            // and emit per-rule / per-piece-size events under this
            // generation's span.
            let mut merged: Option<ItemAttr> = None;
            for a in item_attrs.into_iter().flatten() {
                match merged.as_mut() {
                    None => merged = Some(a),
                    Some(m) => {
                        for (dst, src) in [
                            (&mut m.rule_tried, &a.rule_tried),
                            (&mut m.rule_produced, &a.rule_produced),
                            (&mut m.rule_ns, &a.rule_ns),
                            (&mut m.piece_tried, &a.piece_tried),
                            (&mut m.piece_produced, &a.piece_produced),
                        ] {
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
            if let Some(m) = merged {
                for rule_idx in 0..m.rule_tried.len() {
                    if m.rule_tried[rule_idx] == 0 {
                        continue;
                    }
                    sink.record(Event {
                        engine: "rewrite",
                        name: "rule",
                        parent: gen_span,
                        key: Some(("rule", rule_idx as u64)),
                        fields: &[
                            ("pieces_tried", m.rule_tried[rule_idx]),
                            ("rewrites", m.rule_produced[rule_idx]),
                        ],
                        gauges: &[("wall_ns", m.rule_ns[rule_idx])],
                    });
                }
                for size in 0..m.piece_tried.len() {
                    if m.piece_tried[size] == 0 {
                        continue;
                    }
                    sink.record(Event {
                        engine: "rewrite",
                        name: "piece",
                        parent: gen_span,
                        key: Some(("piece", size as u64)),
                        fields: &[
                            ("tried", m.piece_tried[size]),
                            ("rewrites", m.piece_produced[size]),
                        ],
                        gauges: &[],
                    });
                }
            }
        }
        let mut next = Vec::new();
        let mut gen_stats = SubsumeStats::default();
        let mut expanded = 0u64;
        let mut inserted = 0u64;
        let mut truncated = false;
        'generation: for ((_, depth), new_qs) in frontier.iter().zip(expansions) {
            for new_q in new_qs {
                if steps >= config.max_steps {
                    truncated = true;
                    break 'generation;
                }
                steps += 1;
                expanded += 1;
                if !explored.insert(frontier_key(&new_q)) {
                    continue;
                }
                // Subsumed-but-novel CQs stay in the frontier (see
                // `explored`) without counting as disjuncts, so bound
                // total exploration separately; overrunning it reports
                // the run as truncated — unsaturated is always a sound
                // verdict, unlike saturated-with-missing-disjuncts.
                if explored.len() > 4 * config.max_disjuncts {
                    truncated = true;
                    break 'generation;
                }
                max_depth = max_depth.max(depth + 1);
                if insert_minimal_counted(&mut disjuncts, new_q.clone(), &mut gen_stats) {
                    inserted += 1;
                    if disjuncts.len() > config.max_disjuncts {
                        truncated = true;
                        break 'generation;
                    }
                }
                next.push((new_q, depth + 1));
            }
        }
        if S::ENABLED {
            sink.record(Event {
                engine: "rewrite",
                name: "generation",
                parent: gen_span,
                key: None,
                fields: &[
                    ("generation", generation),
                    ("frontier", frontier.len() as u64),
                    ("expanded", expanded),
                    ("inserted", inserted),
                    ("subsume_pairs", gen_stats.pairs),
                    ("prefilter_rejects", gen_stats.prefilter_rejects),
                    ("hom_checks", gen_stats.hom_checks),
                    ("steps_total", steps as u64),
                    ("disjuncts_total", disjuncts.len() as u64),
                    ("budget_truncated", u64::from(truncated)),
                ],
                gauges: &[
                    ("wall_ns", timer.elapsed_ns()),
                    ("threads", par::num_threads() as u64),
                ],
            });
            sink.span_close(gen_span);
        }
        if truncated {
            if S::ENABLED {
                sink.span_close(run_span);
            }
            return Some(RewriteResult {
                ucq: Ucq::new(disjuncts),
                saturated: false,
                steps,
                max_depth,
            });
        }
        frontier = next;
    }

    if S::ENABLED {
        sink.span_close(run_span);
    }
    Some(RewriteResult { ucq: Ucq::new(disjuncts), saturated: true, steps, max_depth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_program, parse_query, parse_rule};

    #[test]
    fn linear_rule_rewrites_path_query() {
        // Linear (hence BDD) theory: P(x) -> ∃z E(x,z).
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("P(X) -> E(X,Z)", &mut voc).unwrap()]);
        let q = parse_query("E(U,V)", &mut voc).unwrap();
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        // Rewriting: E(U,V) ∨ P(U).
        assert_eq!(res.ucq.len(), 2);
    }

    #[test]
    fn existential_join_blocks_rewriting_step() {
        // E(U,V), F(V,W): V is shared; unifying E's head witness with V is
        // only legal if V occurs nowhere else — here it does.
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("P(X) -> E(X,Z)", &mut voc).unwrap()]);
        let q = parse_query("E(U,V), F(V,W)", &mut voc).unwrap();
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        assert_eq!(res.ucq.len(), 1); // no rewriting applies
    }

    #[test]
    fn transitivity_diverges_within_budget() {
        // E(x,y), E(y,z) -> E(x,z) is datalog but not BDD (path queries
        // unfold forever).
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap()]);
        // With U,V free the rewriting is the infinite family of path
        // queries. (The Boolean "some edge exists" query, by contrast,
        // saturates immediately: transitivity derives edges only from
        // edges.)
        let mut q = parse_query("E(U,V)", &mut voc).unwrap();
        q.free = vec![voc.var("U"), voc.var("V")];
        let res = rewrite_query(
            &q,
            &th,
            &mut voc,
            RewriteConfig { max_disjuncts: 30, max_steps: 10_000, max_piece: 2 },
        )
        .unwrap();
        assert!(!res.saturated);
    }

    #[test]
    fn datalog_projection_rewrites() {
        // U(x) :- E(x,y). Query U(a)? becomes U(a) ∨ E(a,Y).
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("E(X,Y) -> U(X)", &mut voc).unwrap()]);
        let q = parse_query("U(W)", &mut voc).unwrap();
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        assert_eq!(res.ucq.len(), 2);
        assert_eq!(res.max_depth, 1);
    }

    #[test]
    fn two_step_unfolding() {
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![
            parse_rule("A(X) -> B(X)", &mut voc).unwrap(),
            parse_rule("B(X) -> C(X)", &mut voc).unwrap(),
        ]);
        let q = parse_query("C(W)", &mut voc).unwrap();
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        // C(W) ∨ B(W) ∨ A(W).
        assert_eq!(res.ucq.len(), 3);
        assert_eq!(res.max_depth, 2);
    }

    #[test]
    fn piece_with_two_atoms() {
        // Head E(X,Z) with Z existential; query E(U,V), E(W,V): both atoms
        // share V, so V can only be the witness if *both* atoms join the
        // piece (forcing U ~ W).
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("P(X) -> E(X,Z)", &mut voc).unwrap()]);
        let q = parse_query("E(U,V), E(W,V)", &mut voc).unwrap();
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        // Expected disjuncts: the original, and P(U) (with U ~ W).
        assert_eq!(res.ucq.len(), 2);
        let has_p = res
            .ucq
            .disjuncts
            .iter()
            .any(|d| d.atoms.len() == 1 && voc.pred_name(d.atoms[0].pred) == "P");
        assert!(has_p);
    }

    #[test]
    fn free_variables_are_protected() {
        // Query with answer variable V: the witness position cannot be
        // projected onto an answer variable.
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("P(X) -> E(X,Z)", &mut voc).unwrap()]);
        let mut q = parse_query("E(U,V)", &mut voc).unwrap();
        q.free = vec![voc.var("V")];
        let res = rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        assert_eq!(res.ucq.len(), 1); // only the original disjunct
    }

    #[test]
    fn multi_head_theory_is_rejected() {
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![parse_rule("P(X) -> E(X,Z), U(Z)", &mut voc).unwrap()]);
        let q = parse_query("E(U,V)", &mut voc).unwrap();
        assert!(rewrite_query(&q, &th, &mut voc, RewriteConfig::default()).is_none());
    }

    #[test]
    fn sink_reports_generations_and_prefilter_split() {
        use bddfc_core::obs::Memory;
        let mut voc = Vocabulary::new();
        let th = Theory::new(vec![
            parse_rule("A(X) -> B(X)", &mut voc).unwrap(),
            parse_rule("B(X) -> C(X)", &mut voc).unwrap(),
        ]);
        let q = parse_query("C(W)", &mut voc).unwrap();
        let sink = Memory::new(64);
        let res =
            rewrite_query_with(&q, &th, &mut voc, RewriteConfig::default(), &sink).unwrap();
        assert!(res.saturated);
        // C → B → A, then one empty-frontier exit: 3 productive-or-final
        // generations, each emitting one event.
        let gens = sink.counter("rewrite", "generation", "generation");
        assert!(gens >= 1 + 2 + 3, "triangular generation sum, got {gens}");
        assert_eq!(sink.counter("rewrite", "generation", "inserted"), 2);
        assert_eq!(sink.counter("rewrite", "generation", "expanded"), res.steps as u64);
        let pairs = sink.counter("rewrite", "generation", "subsume_pairs");
        assert_eq!(
            pairs,
            sink.counter("rewrite", "generation", "prefilter_rejects")
                + sink.counter("rewrite", "generation", "hom_checks")
        );
        assert_eq!(sink.counter("rewrite", "generation", "budget_truncated"), 0);
    }

    #[test]
    fn rewriting_is_sound_and_complete_on_instances() {
        // Cross-validate against the chase on a linear theory.
        let prog = parse_program(
            "P(X) -> exists Z . E(X,Z).
             E(X,Y) -> U(Y).
             P(a). E(b,c).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("U(W)", &mut voc).unwrap();
        let res = rewrite_query(&q, &prog.theory, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        // D ⊨ Φ′ should hold: E(b,c) gives U(c) via rule 2, and P(a)
        // gives a witness via rule 1 then U via rule 2.
        assert!(bddfc_core::hom::satisfies_ucq(&prog.instance, &res.ucq));
        // And on an instance with no P and no E, it should fail.
        let empty = bddfc_core::Instance::new();
        assert!(!bddfc_core::hom::satisfies_ucq(&empty, &res.ucq));
    }
}
