//! The ternary reduction of Section 5.2 (Theorem 4).
//!
//! Every predicate of arity `k ≥ 4` is list-encoded by a chain of ternary
//! *link* predicates, "giving names to lists of variables, in the good old
//! Prolog way": `P(x₁,…,xₖ)` becomes
//!
//! ```text
//! P₁(x₁,x₂,w₁) ∧ P₂(w₁,x₃,w₂) ∧ … ∧ P_{k-2}(w_{k-3}, x_{k-1}, w_{k-2})
//!              ∧ P_fin(w_{k-2}, xₖ)
//! ```
//!
//! In rule *bodies* and queries the `wᵢ` are ordinary (existentially read)
//! variables; a rule *deriving* `P` must invent the list names, so it is
//! split into a chain of TGDs exactly as in the paper's example — which
//! also means datalog rules with wide heads become existential TGDs in the
//! ternary theory (harmless for certain answers, as §5.4 notes).

use bddfc_core::{Atom, ConjunctiveQuery, Fact, Instance, PredId, Rule, Term, Theory, Vocabulary};
use bddfc_core::fxhash::FxHashMap;

/// The per-predicate encoding: the chain of link predicates.
#[derive(Clone, Debug)]
pub struct ChainEncoding {
    /// Ternary link predicates `P₁ … P_{k-2}`.
    pub links: Vec<PredId>,
    /// The final binary predicate `P_fin` holding `(list, xₖ)`.
    pub fin: PredId,
}

/// A ternary reduction of a theory, with the signature map needed to
/// translate queries and instances.
#[derive(Clone, Debug)]
pub struct TernaryReduction {
    /// The reduced theory (all predicates of arity ≤ 3).
    pub theory: Theory,
    /// Encodings for every reduced predicate.
    pub encodings: FxHashMap<PredId, ChainEncoding>,
}

fn encoding_for(
    pred: PredId,
    voc: &mut Vocabulary,
    encodings: &mut FxHashMap<PredId, ChainEncoding>,
) -> ChainEncoding {
    if let Some(e) = encodings.get(&pred) {
        return e.clone();
    }
    let k = voc.arity(pred);
    debug_assert!(k >= 4);
    let name = voc.pred_name(pred).to_owned();
    let links: Vec<PredId> = (1..=k - 2)
        .map(|i| voc.fresh_pred(&format!("{name}_l{i}"), 3))
        .collect();
    let fin = voc.fresh_pred(&format!("{name}_fin"), 2);
    let enc = ChainEncoding { links, fin };
    encodings.insert(pred, enc.clone());
    enc
}

/// Expands a wide atom into its view conjunction, using `fresh` to mint
/// the list variables. Returns the replacement atoms.
fn expand_atom(
    atom: &Atom,
    voc: &mut Vocabulary,
    encodings: &mut FxHashMap<PredId, ChainEncoding>,
) -> Vec<Atom> {
    let enc = encoding_for(atom.pred, voc, encodings);
    let mut out = Vec::new();
    let mut prev = Term::Var(voc.fresh_var("w"));
    for (i, link) in enc.links.iter().enumerate() {
        let args = if i == 0 {
            vec![atom.args[0], atom.args[1], prev]
        } else {
            let next = Term::Var(voc.fresh_var("w"));
            let a = vec![prev, atom.args[i + 1], next];
            prev = next;
            a
        };
        out.push(Atom::new(*link, args));
    }
    out.push(Atom::new(enc.fin, vec![prev, *atom.args.last().expect("arity ≥ 4")]));
    out
}

/// Reduces a single-head theory to arity ≤ 3 (Theorem 4's construction).
pub fn to_ternary(theory: &Theory, voc: &mut Vocabulary) -> TernaryReduction {
    let mut encodings: FxHashMap<PredId, ChainEncoding> = FxHashMap::default();
    let mut rules: Vec<Rule> = Vec::new();

    for rule in &theory.rules {
        // Expand wide body atoms in place.
        let mut body = Vec::new();
        for atom in &rule.body {
            if atom.args.len() >= 4 {
                body.extend(expand_atom(atom, voc, &mut encodings));
            } else {
                body.push(atom.clone());
            }
        }
        let mut heads_done = false;
        for head in &rule.head {
            if head.args.len() < 4 {
                rules.push(Rule::single(body.clone(), head.clone()));
                heads_done = true;
                continue;
            }
            // Wide head: chain of TGDs, each re-matching the body plus the
            // links built so far (the paper's example pattern).
            let enc = encoding_for(head.pred, voc, &mut encodings);
            let mut ctx = body.clone();
            let mut prev: Option<Term> = None;
            for (i, link) in enc.links.iter().enumerate() {
                let w = Term::Var(voc.fresh_var("hw"));
                let atom = if i == 0 {
                    Atom::new(*link, vec![head.args[0], head.args[1], w])
                } else {
                    Atom::new(*link, vec![prev.expect("chained"), head.args[i + 1], w])
                };
                rules.push(Rule::single(ctx.clone(), atom.clone()));
                ctx.push(atom);
                prev = Some(w);
            }
            let last = *head.args.last().expect("arity ≥ 4");
            rules.push(Rule::single(
                ctx,
                Atom::new(enc.fin, vec![prev.expect("chained"), last]),
            ));
            heads_done = true;
        }
        debug_assert!(heads_done);
    }
    TernaryReduction { theory: Theory::new(rules), encodings }
}

impl TernaryReduction {
    /// Translates a query over the original signature.
    pub fn translate_query(
        &self,
        query: &ConjunctiveQuery,
        voc: &mut Vocabulary,
    ) -> ConjunctiveQuery {
        let mut encodings = self.encodings.clone();
        let mut atoms = Vec::new();
        for atom in &query.atoms {
            if atom.args.len() >= 4 {
                atoms.extend(expand_atom(atom, voc, &mut encodings));
            } else {
                atoms.push(atom.clone());
            }
        }
        ConjunctiveQuery { atoms, free: query.free.clone() }
    }

    /// Translates a database instance (fresh nulls name the lists).
    pub fn translate_instance(&self, db: &Instance, voc: &mut Vocabulary) -> Instance {
        let mut out = Instance::new();
        for fact in db.facts() {
            if fact.args.len() < 4 {
                out.insert(fact.clone());
                continue;
            }
            let enc = &self.encodings[&fact.pred];
            let mut prev = voc.fresh_null("lst");
            for (i, link) in enc.links.iter().enumerate() {
                if i == 0 {
                    out.insert(Fact::new(*link, vec![fact.args[0], fact.args[1], prev]));
                } else {
                    let next = voc.fresh_null("lst");
                    out.insert(Fact::new(*link, vec![prev, fact.args[i + 1], next]));
                    prev = next;
                }
            }
            out.insert(Fact::new(
                enc.fin,
                vec![prev, *fact.args.last().expect("arity ≥ 4")],
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{certain_cq, ChaseConfig};
    use bddfc_core::{parse_into, parse_query};

    #[test]
    fn output_is_ternary() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "P(X,Y,Z,X) -> exists T . R(X,Y,Z,T).
             R(X,Y,Z,T) -> S(X,T).",
            &mut voc,
        )
        .unwrap();
        let red = to_ternary(&theory, &mut voc);
        assert!(red.theory.preds().into_iter().all(|p| voc.arity(p) <= 3));
    }

    #[test]
    fn arity4_head_splits_into_three_rules() {
        // The paper's example: one arity-4 TGD becomes three rules.
        let mut voc = Vocabulary::new();
        let (theory, _, _) =
            parse_into("P(X,Y,Z,X) -> exists T . R(X,Y,Z,T).", &mut voc).unwrap();
        let red = to_ternary(&theory, &mut voc);
        assert_eq!(red.theory.len(), 3);
    }

    #[test]
    fn certain_answers_preserved_through_reduction() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "P(X,Y,Z,X) -> exists T . R(X,Y,Z,T).
             R(X,Y,Z,T) -> S(X,T).
             P(a,b,c,a).",
            &mut voc,
        )
        .unwrap();
        let red = to_ternary(&theory, &mut voc);
        let db_t = red.translate_instance(&db, &mut voc);
        for q_src in ["S(a,W)", "R(a,b,c,W)", "R(b,a,c,W)", "S(b,W)"] {
            let q = parse_query(q_src, &mut voc).unwrap();
            let q_t = red.translate_query(&q, &mut voc);
            let orig = certain_cq(&db, &theory, &mut voc.clone(), &q, ChaseConfig::rounds(8));
            let new = certain_cq(&db_t, &red.theory, &mut voc.clone(), &q_t, ChaseConfig::rounds(16));
            assert_eq!(orig.is_true(), new.is_true(), "query {q_src}");
        }
    }

    #[test]
    fn narrow_predicates_untouched() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,b).",
            &mut voc,
        )
        .unwrap();
        let red = to_ternary(&theory, &mut voc);
        assert_eq!(red.theory.len(), 1);
        assert!(red.encodings.is_empty());
        let db_t = red.translate_instance(&db, &mut voc);
        assert_eq!(db_t.len(), db.len());
    }

    #[test]
    fn instance_translation_builds_chain() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "R(X,Y,Z,T) -> S(X,T). R(a,b,c,d).",
            &mut voc,
        )
        .unwrap();
        let red = to_ternary(&theory, &mut voc);
        let db_t = red.translate_instance(&db, &mut voc);
        // arity 4: 2 links + 1 fin = 3 facts.
        assert_eq!(db_t.len(), 3);
    }
}
