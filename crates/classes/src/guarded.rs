//! The Section 5.6 translation: Guarded Datalog∃ programs are "binary in
//! disguise".
//!
//! The translation re-expresses a guarded theory over a binary signature:
//!
//! * `F_i(x, y)` — "x is the i-th parent of y" (step (ii));
//! * `E_r(y, z)` — "TGD r, led by y, created witness z" (step (vi));
//! * `R_m(z)` — monadic: "z is the witness of an R-atom whose j-th
//!   argument is z's j-th parent" (step (vi));
//! * `Q_{ī}(y)` — monadic: "the tuple of y's parents selected by the
//!   index word ī satisfies Q" (step (vii)); index `0` denotes y itself.
//!
//! Rule bodies are expanded over all assignments of parent indices to
//! their non-leading variables (step (iii)'s combinatorial closure), TGD
//! heads become the `E_r`/`R_m`/(♦)-rule triple, datalog heads become
//! monadic facts at the leading variable, and *transfer rules* propagate
//! monadic knowledge between elements sharing parents (step (vii)).
//!
//! ## Scope
//!
//! The input must be guarded, single-head, constant-free, with every TGD
//! having exactly one existential variable in the last head position and
//! no TGP heading a datalog rule. These are the paper's standing
//! assumptions after its (i)/(iv)/(v) pre-processing; we validate rather
//! than re-derive them.

use crate::recognize::guard_of;
use bddfc_core::{Atom, PredId, Rule, Term, Theory, VarId, Vocabulary};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// Names the rule an error is about: its theory index plus the
/// human-facing label from [`Rule::describe`] — the pretty-printed rule
/// with its source span when the rule was parsed from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleRef {
    /// Index of the rule in the theory.
    pub idx: usize,
    /// `` `E(X,Y) -> E(Y,Z)` at 3:1 `` (span omitted for programmatic
    /// rules).
    pub label: String,
}

impl RuleRef {
    /// Builds the reference for `theory.rules[idx]`.
    pub fn new(theory: &Theory, idx: usize, voc: &Vocabulary) -> Self {
        RuleRef { idx, label: theory.rules[idx].describe(voc) }
    }
}

impl std::fmt::Display for RuleRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule #{} {}", self.idx, self.label)
    }
}

/// Why a theory is outside the supported guarded fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuardedError {
    /// Some rule has no guard.
    NotGuarded(RuleRef),
    /// A rule is multi-head.
    MultiHead(RuleRef),
    /// Constants occur in rules.
    HasConstants(RuleRef),
    /// A TGD does not have exactly one existential variable in the last
    /// head position.
    BadTgdHead(RuleRef),
    /// A TGP also heads a datalog rule (run TGP separation first).
    TgpInDatalogHead(String),
}

impl GuardedError {
    /// The offending rule, when the error concerns a single rule.
    pub fn rule(&self) -> Option<&RuleRef> {
        match self {
            GuardedError::NotGuarded(r)
            | GuardedError::MultiHead(r)
            | GuardedError::HasConstants(r)
            | GuardedError::BadTgdHead(r) => Some(r),
            GuardedError::TgpInDatalogHead(_) => None,
        }
    }
}

impl std::fmt::Display for GuardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardedError::NotGuarded(r) => write!(f, "{r} has no guard"),
            GuardedError::MultiHead(r) => write!(f, "{r} is multi-head"),
            GuardedError::HasConstants(r) => write!(f, "{r} mentions constants"),
            GuardedError::BadTgdHead(r) => write!(
                f,
                "{r}: TGD must have exactly one existential variable, last in the head"
            ),
            GuardedError::TgpInDatalogHead(p) => {
                write!(f, "predicate {p} heads both a TGD and a datalog rule")
            }
        }
    }
}

impl std::error::Error for GuardedError {}

/// The output of the translation, with the signature bookkeeping needed
/// to interpret the binary chase.
#[derive(Clone, Debug)]
pub struct GuardedToBinary {
    /// The binary theory.
    pub theory: Theory,
    /// `F_i` parent-link predicates, index 1-based (`f_preds[0]` is F₁).
    pub f_preds: Vec<PredId>,
    /// Per-TGD creation predicates `E_r`.
    pub e_preds: Vec<PredId>,
    /// Monadic witness predicates per TGP.
    pub witness_monadic: FxHashMap<PredId, PredId>,
    /// Monadic predicates `Q_{ī}` per (predicate, index word).
    pub monadic: FxHashMap<(PredId, Vec<u8>), PredId>,
}

/// Index word entry: 0 = the element itself, i ≥ 1 = its i-th parent.
type IdxWord = Vec<u8>;

struct Builder<'v> {
    voc: &'v mut Vocabulary,
    k: usize,
    f_preds: Vec<PredId>,
    e_preds: Vec<PredId>,
    witness_monadic: FxHashMap<PredId, PredId>,
    monadic: FxHashMap<(PredId, IdxWord), PredId>,
    rules: Vec<Rule>,
}

impl Builder<'_> {
    fn f(&self, i: u8) -> PredId {
        debug_assert!(i >= 1);
        self.f_preds[(i - 1) as usize]
    }

    fn monadic_pred(&mut self, q: PredId, word: &IdxWord) -> PredId {
        if let Some(&p) = self.monadic.get(&(q, word.clone())) {
            return p;
        }
        let name = format!(
            "{}_m{}",
            self.voc.pred_name(q),
            word.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("_")
        );
        let p = self.voc.pred(&name, 1);
        self.monadic.insert((q, word.clone()), p);
        p
    }

    fn witness_pred(&mut self, r: PredId) -> PredId {
        if let Some(&p) = self.witness_monadic.get(&r) {
            return p;
        }
        let name = format!("{}_w", self.voc.pred_name(r));
        let p = self.voc.pred(&name, 1);
        self.witness_monadic.insert(r, p);
        p
    }
}

/// Enumerates all assignments of indices `1..=k` to `vars`.
fn assignments(vars: &[VarId], k: usize) -> Vec<FxHashMap<VarId, u8>> {
    let mut out = vec![FxHashMap::default()];
    for &v in vars {
        let mut next = Vec::with_capacity(out.len() * k);
        for base in &out {
            for i in 1..=k as u8 {
                let mut m = base.clone();
                m.insert(v, i);
                next.push(m);
            }
        }
        out = next;
    }
    out
}

/// Translates a guarded theory into an equivalent binary one (§5.6).
pub fn guarded_to_binary(
    theory: &Theory,
    voc: &mut Vocabulary,
) -> Result<GuardedToBinary, GuardedError> {
    // Validation.
    let tgps: FxHashSet<PredId> = theory.tgps();
    for (i, rule) in theory.rules.iter().enumerate() {
        let rule_ref = || RuleRef::new(theory, i, voc);
        if !rule.is_single_head() {
            return Err(GuardedError::MultiHead(rule_ref()));
        }
        if guard_of(rule).is_none() {
            return Err(GuardedError::NotGuarded(rule_ref()));
        }
        if !rule.constants().is_empty() {
            return Err(GuardedError::HasConstants(rule_ref()));
        }
        match rule.kind() {
            bddfc_core::RuleKind::ExistentialTgd => {
                let ex = rule.existential_vars();
                let head = &rule.head[0];
                let last_ok = matches!(
                    head.args.last(),
                    Some(Term::Var(v)) if ex.contains(v)
                );
                if ex.len() != 1 || !last_ok {
                    return Err(GuardedError::BadTgdHead(rule_ref()));
                }
            }
            bddfc_core::RuleKind::Datalog => {
                if tgps.contains(&rule.head[0].pred) {
                    return Err(GuardedError::TgpInDatalogHead(
                        voc.pred_name(rule.head[0].pred).to_owned(),
                    ));
                }
            }
        }
    }

    // K: maximal number of parents = max arity − 1.
    let k = theory
        .preds()
        .into_iter()
        .map(|p| voc.arity(p))
        .max()
        .unwrap_or(1)
        .saturating_sub(1)
        .max(1);

    let f_preds: Vec<PredId> = (1..=k).map(|i| voc.pred(&format!("Fp{i}"), 2)).collect();
    let mut b = Builder {
        voc,
        k,
        f_preds,
        e_preds: Vec::new(),
        witness_monadic: FxHashMap::default(),
        monadic: FxHashMap::default(),
        rules: Vec::new(),
    };

    for rule in &theory.rules {
        translate_rule(&mut b, rule, &tgps);
    }
    add_transfer_rules(&mut b);

    Ok(GuardedToBinary {
        theory: Theory::new(b.rules),
        f_preds: b.f_preds,
        e_preds: b.e_preds,
        witness_monadic: b.witness_monadic,
        monadic: b.monadic,
    })
}

/// The leading variable: the rightmost variable of the guard.
fn leading_var(rule: &Rule) -> VarId {
    let guard = guard_of(rule).expect("validated");
    guard
        .args
        .iter()
        .rev()
        .find_map(|t| t.as_var())
        .expect("guard has variables")
}

/// Encodes one body atom under an index assignment. TGP atoms become
/// parent links plus the witness monadic at their last argument; non-TGP
/// atoms become a monadic fact at the leading variable.
fn encode_body_atom(
    b: &mut Builder<'_>,
    atom: &Atom,
    tgps: &FxHashSet<PredId>,
    assign: &FxHashMap<VarId, u8>,
    y: VarId,
    out: &mut Vec<Atom>,
) {
    let idx_of = |v: VarId| -> u8 {
        if v == y {
            0
        } else {
            assign[&v]
        }
    };
    if tgps.contains(&atom.pred) {
        let last = atom.args.last().expect("TGP arity ≥ 1").as_var().expect("no constants");
        for (j, t) in atom.args[..atom.args.len() - 1].iter().enumerate() {
            let v = t.as_var().expect("no constants");
            out.push(Atom::new(
                b.f((j + 1) as u8),
                vec![Term::Var(v), Term::Var(last)],
            ));
        }
        let wm = b.witness_pred(atom.pred);
        out.push(Atom::new(wm, vec![Term::Var(last)]));
    } else {
        let word: IdxWord = atom
            .args
            .iter()
            .map(|t| idx_of(t.as_var().expect("no constants")))
            .collect();
        let m = b.monadic_pred(atom.pred, &word);
        out.push(Atom::new(m, vec![Term::Var(y)]));
    }
}

fn translate_rule(b: &mut Builder<'_>, rule: &Rule, tgps: &FxHashSet<PredId>) {
    let y = leading_var(rule);
    let mut others: Vec<VarId> = rule
        .body_vars()
        .into_iter()
        .filter(|&v| v != y)
        .collect();
    others.sort_unstable();

    for assign in assignments(&others, b.k) {
        // Binary body: parent links for every non-leading variable, plus
        // the encoded atoms.
        let mut body: Vec<Atom> = Vec::new();
        for &v in &others {
            body.push(Atom::new(
                b.f(assign[&v]),
                vec![Term::Var(v), Term::Var(y)],
            ));
        }
        for atom in &rule.body {
            encode_body_atom(b, atom, tgps, &assign, y, &mut body);
        }
        // Deduplicate atoms (guard encodings repeat the links).
        let mut seen = FxHashSet::default();
        body.retain(|a| seen.insert(a.clone()));

        let head = &rule.head[0];
        if rule.is_datalog() {
            let idx_of = |v: VarId| -> u8 { if v == y { 0 } else { assign[&v] } };
            let word: IdxWord = head
                .args
                .iter()
                .map(|t| idx_of(t.as_var().expect("no constants")))
                .collect();
            let m = b.monadic_pred(head.pred, &word);
            b.rules.push(Rule::single(body, Atom::new(m, vec![Term::Var(y)])));
        } else {
            // TGD head R(x₁,…,x_q, z): creation edge, witness monadic and
            // (♦) parent propagation.
            let e_r = b.voc.fresh_pred("Ecr", 2);
            b.e_preds.push(e_r);
            let z = *rule.existential_vars().iter().next().expect("validated");
            let e_atom = Atom::new(e_r, vec![Term::Var(y), Term::Var(z)]);
            b.rules.push(Rule::single(body.clone(), e_atom.clone()));

            let wm = b.witness_pred(head.pred);
            let mut with_e = body.clone();
            with_e.push(e_atom.clone());
            b.rules
                .push(Rule::single(with_e, Atom::new(wm, vec![Term::Var(z)])));

            for (j, t) in head.args[..head.args.len() - 1].iter().enumerate() {
                let xj = t.as_var().expect("no constants");
                let fj = b.f((j + 1) as u8);
                if xj == y {
                    // The leading variable is the j-th parent of z: derive
                    // the link directly from the creation edge.
                    b.rules.push(Rule::single(
                        vec![e_atom.clone()],
                        Atom::new(fj, vec![Term::Var(y), Term::Var(z)]),
                    ));
                } else {
                    // (♦): F_{i}(x, y) ∧ E_r(y, z) ⇒ F_j(x, z).
                    let fi = b.f(assign[&xj]);
                    b.rules.push(Rule::single(
                        vec![
                            Atom::new(fi, vec![Term::Var(xj), Term::Var(y)]),
                            e_atom.clone(),
                        ],
                        Atom::new(fj, vec![Term::Var(xj), Term::Var(z)]),
                    ));
                }
            }
        }
    }
}

/// Step (vii)'s transfer rules: monadic knowledge about a parent tuple is
/// shared by every element seeing the same tuple (possibly at different
/// indices, possibly via itself as index 0).
fn add_transfer_rules(b: &mut Builder<'_>) {
    let entries: Vec<((PredId, IdxWord), PredId)> =
        b.monadic.iter().map(|(k, v)| (k.clone(), *v)).collect();
    let y = b.voc.fresh_var("ty");
    let z = b.voc.fresh_var("tz");
    for ((q1, w1), m1) in &entries {
        for ((q2, w2), m2) in &entries {
            if q1 != q2 || w1.len() != w2.len() || (w1 == w2) {
                continue;
            }
            // Build: m1(y) ∧ links(y side) ∧ links(z side) ⇒ m2(z).
            let mut body = vec![Atom::new(*m1, vec![Term::Var(y)])];
            let mut ok = true;
            for (pos, (&i1, &i2)) in w1.iter().zip(w2.iter()).enumerate() {
                let x = b.voc.var(&format!("tx{pos}"));
                let x_term = match i1 {
                    0 => Term::Var(y),
                    i => {
                        body.push(Atom::new(b.f(i), vec![Term::Var(x), Term::Var(y)]));
                        Term::Var(x)
                    }
                };
                match i2 {
                    0 => {
                        // Position refers to z itself on the target side:
                        // expressible only when the source side element is
                        // z too, which we cannot assert — skip this pair.
                        ok = false;
                        break;
                    }
                    i => {
                        body.push(Atom::new(b.f(i), vec![x_term, Term::Var(z)]));
                    }
                }
            }
            if ok {
                b.rules
                    .push(Rule::single(body, Atom::new(*m2, vec![Term::Var(z)])));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{chase, ChaseConfig};
    use bddfc_core::{parse_into, Fact, Instance};

    fn translate(src: &str) -> (GuardedToBinary, Theory, Vocabulary) {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(src, &mut voc).unwrap();
        let tr = guarded_to_binary(&theory, &mut voc).unwrap();
        (tr, theory, voc)
    }

    #[test]
    fn output_is_binary() {
        let (tr, _, voc) = translate(
            "R(X,Y,Z) -> exists W . S(Y,Z,W).
             S(X,Y,Z), P(X) -> P(Z).",
        );
        assert!(tr.theory.preds().into_iter().all(|p| voc.arity(p) <= 2));
    }

    #[test]
    fn output_tgds_have_single_frontier() {
        // The translated TGDs are all of the E_r(y,z) shape — the §5.1 /
        // Theorem 3 fragment, as the paper stresses.
        let (tr, _, _) = translate(
            "R(X,Y,Z) -> exists W . S(Y,Z,W).
             S(X,Y,Z), P(X) -> P(Z).",
        );
        assert!(crate::recognize::is_theorem3_fragment(&tr.theory));
    }

    #[test]
    fn unguarded_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("E(X,Y), E(Y,Z) -> E(X,Z).", &mut voc).unwrap();
        let err = guarded_to_binary(&theory, &mut voc).unwrap_err();
        let GuardedError::NotGuarded(r) = &err else {
            panic!("expected NotGuarded, got {err:?}")
        };
        assert_eq!(r.idx, 0);
        // The error names the rule by its text and source position, not
        // just its index.
        assert_eq!(
            err.to_string(),
            "rule #0 `E(X,Y), E(Y,Z) -> E(X,Z)` at 1:1 has no guard"
        );
        assert_eq!(err.rule(), Some(r));
    }

    #[test]
    fn tgp_in_datalog_head_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "P(X) -> exists Z . E(X,Z).
             E(X,Y) -> E(Y,X).",
            &mut voc,
        )
        .unwrap();
        assert!(matches!(
            guarded_to_binary(&theory, &mut voc),
            Err(GuardedError::TgpInDatalogHead(_))
        ));
    }

    #[test]
    fn witness_elements_correspond_on_linear_guarded_chain() {
        // Original: P(x) -> ∃z E(x,z); E(x,y) -> ∃w E(y,w), seeded P(a).
        // Each original E-witness corresponds to one E_w-marked element in
        // the binary chase.
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "P(X) -> exists Z . E(X,Z).
             E(X,Y) -> exists W . E(Y,W).",
            &mut voc,
        )
        .unwrap();
        let tr = guarded_to_binary(&theory, &mut voc).unwrap();
        // Seed: monadic P at a constant. P is non-TGP, arity 1, word [0].
        let p = voc.find_pred("P").unwrap();
        let pm = tr.monadic[&(p, vec![0])];
        let a = voc.constant("a");
        let mut db = Instance::new();
        db.insert(Fact::new(pm, vec![a]));

        let depth = 6;
        let orig_db = {
            let mut d = Instance::new();
            d.insert(Fact::new(p, vec![a]));
            d
        };
        let orig = chase(&orig_db, &theory, &mut voc.clone(), ChaseConfig::rounds(depth));
        let bin = chase(&db, &tr.theory, &mut voc.clone(), ChaseConfig::rounds(2 * depth));
        let e = voc.find_pred("E").unwrap();
        let ew = tr.witness_monadic[&e];
        // Same number of E-witnesses created per depth prefix (the binary
        // chase interleaves E_r and monadic rounds, hence the 2× budget).
        assert_eq!(
            orig.instance.facts_with_pred(e).len(),
            bin.instance.facts_with_pred(ew).len()
        );
    }

    #[test]
    fn parent_links_track_head_positions() {
        // R(x,y) -> ∃z S(x,y,z): z's parents are x (index 1) and y (2).
        let mut voc = Vocabulary::new();
        let (theory, _, _) =
            parse_into("R(X,Y) -> exists Z . S(X,Y,Z).", &mut voc).unwrap();
        let tr = guarded_to_binary(&theory, &mut voc).unwrap();
        // Seed the binary chase with an R-fact encoded as monadic at b
        // (leading var of the guard R(X,Y) is Y).
        let r = voc.find_pred("R").unwrap();
        // X gets some parent index i: the monadic word is [i, 0]. Pick the
        // variant with i = 1 and provide the matching F link.
        let rm = tr.monadic[&(r, vec![1, 0])];
        let (a, bb) = (voc.constant("a"), voc.constant("b"));
        let f1 = tr.f_preds[0];
        let mut db = Instance::new();
        db.insert(Fact::new(rm, vec![bb]));
        db.insert(Fact::new(f1, vec![a, bb]));
        let res = chase(&db, &tr.theory, &mut voc, ChaseConfig::rounds(6));
        assert!(res.is_fixpoint());
        let s = tr.witness_monadic[&voc.find_pred("S").unwrap()];
        let witnesses = res.instance.facts_with_pred(s);
        assert_eq!(witnesses.len(), 1);
        let z = res.instance.fact(witnesses[0]).args[0];
        // z has parents: F1(a, z) and F2(b, z).
        let f2 = tr.f_preds[1];
        assert!(res.instance.contains(&Fact::new(f1, vec![a, z])));
        assert!(res.instance.contains(&Fact::new(f2, vec![bb, z])));
    }

    #[test]
    fn transfer_rules_share_monadic_knowledge() {
        // Two elements with the same parent at different indices exchange
        // monadic facts about it.
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "R(X,Y), P(X) -> Q(X).
             S(X,Y), Q(X) -> T(Y).",
            &mut voc,
        )
        .unwrap();
        let tr = guarded_to_binary(&theory, &mut voc).unwrap();
        // Q is derived as monadic at some leader; T's rule reads Q at a
        // possibly different index word: the transfer rules bridge them.
        assert!(tr
            .theory
            .rules
            .iter()
            .any(|r| r.body.len() >= 3 && r.is_datalog()));
    }
}
