//! The Section 5.1 splitting: Theorem 3's fragment reduces to binary
//! heads.
//!
//! Theorem 3 extends the main result to TGDs of the form
//! `Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄)` — a single frontier variable, arbitrary
//! existential tuple. The paper's hint: introduce binary relations
//! `RᵢΦ(y, zᵢ)`, replace the TGD by the rules `Ψ ⇒ ∃zᵢ RᵢΦ(y, zᵢ)` and a
//! datalog rule `R¹Φ(y,z₁) ∧ … ∧ RⁿΦ(y,zₙ) → Φ(y, z̄)`.
//!
//! The split theory derives more head tuples (all witness combinations),
//! but maps homomorphically onto the original chase over the original
//! signature, so certain answers are preserved.

use crate::recognize::is_theorem3_fragment;
use bddfc_core::{Atom, Rule, Term, Theory, VarId, Vocabulary};

/// Why a theory is outside the Theorem 3 fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Theorem3Error {
    /// Some TGD has more than one frontier variable.
    TooManyFrontierVars(usize),
    /// A rule is multi-head (eliminate multi-heads first, §5.3).
    MultiHead(usize),
}

impl std::fmt::Display for Theorem3Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Theorem3Error::TooManyFrontierVars(i) => {
                write!(f, "rule #{i} has more than one frontier variable")
            }
            Theorem3Error::MultiHead(i) => write!(f, "rule #{i} is multi-head"),
        }
    }
}

impl std::error::Error for Theorem3Error {}

/// Splits every Theorem 3 TGD into binary-head TGDs plus a regrouping
/// datalog rule, following the §5.1 hint. Datalog rules and TGDs whose
/// head is already at most binary pass through unchanged.
pub fn split_theorem3(theory: &Theory, voc: &mut Vocabulary) -> Result<Theory, Theorem3Error> {
    for (i, rule) in theory.rules.iter().enumerate() {
        if !rule.is_single_head() {
            return Err(Theorem3Error::MultiHead(i));
        }
        if !rule.is_datalog() && rule.frontier().len() > 1 {
            return Err(Theorem3Error::TooManyFrontierVars(i));
        }
    }
    debug_assert!(is_theorem3_fragment(theory));

    let mut out: Vec<Rule> = Vec::new();
    for rule in &theory.rules {
        if rule.is_datalog() || rule.head[0].args.len() <= 2 {
            out.push(rule.clone());
            continue;
        }
        let head = &rule.head[0];
        let mut ex: Vec<VarId> = rule.existential_vars().into_iter().collect();
        ex.sort_unstable();
        let frontier: Vec<VarId> = {
            let mut f: Vec<VarId> = rule.frontier().into_iter().collect();
            f.sort_unstable();
            f
        };
        let Some(&y) = frontier.first() else {
            // No frontier at all: keep the rule (nothing to anchor on;
            // such rules are degenerate and rare).
            out.push(rule.clone());
            continue;
        };
        // One binary witness relation per existential variable.
        let name = voc.pred_name(head.pred).to_owned();
        let mut witness_atoms = Vec::with_capacity(ex.len());
        for (i, &z) in ex.iter().enumerate() {
            let ri = voc.fresh_pred(&format!("{name}_r{i}"), 2);
            let atom = Atom::new(ri, vec![Term::Var(y), Term::Var(z)]);
            out.push(Rule::single(rule.body.clone(), atom.clone()));
            witness_atoms.push(atom);
        }
        // Regroup: R¹(y,z₁) ∧ … ∧ Rⁿ(y,zₙ) → Φ(y,z̄).
        out.push(Rule::single(witness_atoms, head.clone()));
    }
    Ok(Theory::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{certain_cq, chase, ChaseConfig};
    use bddfc_core::{parse_into, parse_query};

    #[test]
    fn split_produces_binary_tgd_heads() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) =
            parse_into("P(X), E(X,Y) -> exists Z1, Z2 . R(Y,Z1,Z2).", &mut voc).unwrap();
        let split = split_theorem3(&theory, &mut voc).unwrap();
        for tgd in split.tgds() {
            assert!(tgd.head[0].args.len() <= 2);
        }
        // 2 witness TGDs + 1 regrouping datalog rule.
        assert_eq!(split.len(), 3);
    }

    #[test]
    fn non_fragment_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("E(X,Y) -> exists Z . R(X,Y,Z).", &mut voc).unwrap();
        assert!(matches!(
            split_theorem3(&theory, &mut voc),
            Err(Theorem3Error::TooManyFrontierVars(0))
        ));
    }

    #[test]
    fn certain_answers_preserved() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "P(Y) -> exists Z1, Z2 . R(Y,Z1,Z2).
             R(Y,Z1,Z2) -> M(Y).
             P(a).",
            &mut voc,
        )
        .unwrap();
        let split = split_theorem3(&theory, &mut voc).unwrap();
        for q_src in ["M(a)", "R(a,W1,W2)", "M(b)"] {
            let q = parse_query(q_src, &mut voc).unwrap();
            let orig = certain_cq(&db, &theory, &mut voc.clone(), &q, ChaseConfig::rounds(6));
            let new = certain_cq(&db, &split, &mut voc.clone(), &q, ChaseConfig::rounds(12));
            assert_eq!(orig.is_true(), new.is_true(), "query {q_src}");
        }
    }

    #[test]
    fn witnesses_are_regrouped() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) =
            parse_into("P(Y) -> exists Z1, Z2 . R(Y,Z1,Z2). P(a).", &mut voc).unwrap();
        let split = split_theorem3(&theory, &mut voc).unwrap();
        let res = chase(&db, &split, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let r = voc.find_pred("R").unwrap();
        let facts = res.instance.facts_with_pred(r);
        assert_eq!(facts.len(), 1);
        let f = res.instance.fact(facts[0]);
        // Distinct witnesses in positions 1 and 2, anchored at a.
        assert_eq!(f.args[0], voc.find_const("a").unwrap());
        assert_ne!(f.args[1], f.args[2]);
    }

    #[test]
    fn binary_heads_pass_through() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("E(X,Y) -> exists Z . E(Y,Z).", &mut voc).unwrap();
        let split = split_theorem3(&theory, &mut voc).unwrap();
        assert_eq!(split, theory);
    }
}
