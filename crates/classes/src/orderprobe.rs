//! The (refuted) ordering conjecture of Section 5.5, as a probe.
//!
//! Conjecture 2 (stated false by the paper) said: a theory is non-FC iff
//! it *defines an ordering* — some CQ `Φ(x,y)` that is irreflexive in the
//! chase yet defines a strict total order on an infinite subset. The "if"
//! direction is true and useful as a non-FC detector; the "only if"
//! direction fails on the notorious example.
//!
//! [`order_probe`] searches a chase prefix for candidate defining
//! queries: binary-atom and two-step composition queries that are
//! irreflexive, transitive and total on a large subset of the prefix.
//! Finding one *proves* non-FC (by the paper's argument: any finite model
//! collapses two elements of the chain, forcing `Φ(x,x)`); finding none
//! proves nothing — which is exactly the paper's point, demonstrated by
//! the notorious example.

use bddfc_chase::{chase, ChaseConfig};
use bddfc_core::{hom, Binding, ConjunctiveQuery, ConstId, Instance, Term, Theory, Vocabulary};
use bddfc_core::fxhash::FxHashSet;
use std::ops::ControlFlow;

/// A witness that the theory defines an ordering on the chase prefix.
#[derive(Clone, Debug)]
pub struct OrderWitness {
    /// The defining query `Φ(x, y)` (free variables in order x, y).
    pub query: ConjunctiveQuery,
    /// The chain found in the prefix (ordered by Φ).
    pub chain: Vec<ConstId>,
}

/// All pairs (a, b) of prefix elements with `prefix ⊨ Φ(a, b)`.
fn relation_pairs(
    prefix: &Instance,
    q: &ConjunctiveQuery,
) -> FxHashSet<(ConstId, ConstId)> {
    let mut out = FxHashSet::default();
    let x = q.free[0];
    let y = q.free[1];
    let _ = hom::for_each_hom(prefix, &q.atoms, &Binding::default(), |b| {
        out.insert((b[&x], b[&y]));
        ControlFlow::Continue(())
    });
    out
}

/// Does the relation strictly totally order some subset of size ≥
/// `min_chain`? Returns the chain if so. (Greedy: follow successors.)
fn find_chain(
    pairs: &FxHashSet<(ConstId, ConstId)>,
    min_chain: usize,
) -> Option<Vec<ConstId>> {
    // Irreflexivity is checked by the caller. A "chain" here is a set
    // a₁ < a₂ < … totally ordered by the relation: every earlier element
    // relates to every later one (transitive chain), matching Conjecture
    // 2's "strict total ordering on A". The greedy extension is sensitive
    // to candidate order, so candidates are visited in ascending ConstId
    // order — deterministic, hasher-independent, and on chase prefixes it
    // follows element creation order, which is the direction truncated
    // transitive closures are densest in.
    let mut succ: bddfc_core::fxhash::FxHashMap<ConstId, Vec<ConstId>> =
        bddfc_core::fxhash::FxHashMap::default();
    for &(a, b) in pairs {
        succ.entry(a).or_default().push(b);
    }
    let mut starts: Vec<ConstId> = succ.keys().copied().collect();
    starts.sort_unstable();
    for list in succ.values_mut() {
        list.sort_unstable();
    }
    for &start in &starts {
        let mut chain = vec![start];
        loop {
            let last = *chain.last().expect("nonempty");
            // Next: the smallest element all chain members relate to.
            let next = succ.get(&last).and_then(|cands| {
                cands
                    .iter()
                    .find(|&&b| {
                        !chain.contains(&b)
                            && chain.iter().all(|&c| pairs.contains(&(c, b)))
                    })
                    .copied()
            });
            match next {
                Some(b) => chain.push(b),
                None => break,
            }
            if chain.len() >= min_chain {
                return Some(chain);
            }
        }
    }
    None
}

/// Candidate defining queries: `R(x,y)` and the compositions
/// `R(x,w) ∧ S(w,y)` over all binary predicates of the prefix.
fn candidates(prefix: &Instance, voc: &mut Vocabulary) -> Vec<ConjunctiveQuery> {
    let x = voc.fresh_var("ox");
    let y = voc.fresh_var("oy");
    let w = voc.fresh_var("ow");
    let binary: Vec<_> = prefix
        .used_preds()
        .filter(|&p| voc.arity(p) == 2)
        .collect();
    let mut out = Vec::new();
    for &r in &binary {
        out.push(ConjunctiveQuery::with_free(
            vec![bddfc_core::Atom::new(r, vec![Term::Var(x), Term::Var(y)])],
            vec![x, y],
        ));
    }
    for &r in &binary {
        for &s in &binary {
            out.push(ConjunctiveQuery::with_free(
                vec![
                    bddfc_core::Atom::new(r, vec![Term::Var(x), Term::Var(w)]),
                    bddfc_core::Atom::new(s, vec![Term::Var(w), Term::Var(y)]),
                ],
                vec![x, y],
            ));
        }
    }
    out
}

/// Probes whether the theory defines an ordering (Conjecture 2's
/// condition) on a chase prefix of the given depth. `min_chain` is the
/// chain length demanded as evidence of "an infinite ordered subset".
pub fn order_probe(
    db: &Instance,
    theory: &Theory,
    voc: &mut Vocabulary,
    depth: u32,
    min_chain: usize,
) -> Option<OrderWitness> {
    let prefix = chase(db, theory, voc, ChaseConfig::rounds(depth)).instance;
    for q in candidates(&prefix, voc) {
        let pairs = relation_pairs(&prefix, &q);
        if pairs.is_empty() {
            continue;
        }
        // Irreflexive in the prefix (a sound under-approximation of
        // "Chase ⊭ ∃x Φ(x,x)").
        if pairs.iter().any(|&(a, b)| a == b) {
            continue;
        }
        if let Some(chain) = find_chain(&pairs, min_chain) {
            return Some(OrderWitness { query: q, chain });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_into;

    #[test]
    fn order_theory_defines_an_ordering() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "Lt(X,Y) -> exists Z . Lt(Y,Z).
             Lt(X,Y), Lt(Y,Z) -> Lt(X,Z).
             Lt(a,b).",
            &mut voc,
        )
        .unwrap();
        let w = order_probe(&db, &theory, &mut voc, 10, 6).expect("defines an ordering");
        assert!(w.chain.len() >= 6);
        assert_eq!(w.query.atoms.len(), 1); // Lt itself
    }

    #[test]
    fn notorious_example_defines_no_ordering() {
        // The paper: this theory does NOT define an ordering, yet is not
        // FC — Conjecture 2's "only if" fails.
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "E(X,Y) -> exists Z . E(Y,Z).
             R(X,Y), E(X,X2), E(Y,Z), E(Z,Y2) -> R(X2,Y2).
             E(a0,a1). R(a0,a0).",
            &mut voc,
        )
        .unwrap();
        assert!(order_probe(&db, &theory, &mut voc, 10, 6).is_none());
    }

    #[test]
    fn successor_chain_alone_is_not_an_order() {
        // E is irreflexive but not transitive: chains of length ≥ 3 under
        // "every earlier element relates to every later" do not exist.
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,b).",
            &mut voc,
        )
        .unwrap();
        assert!(order_probe(&db, &theory, &mut voc, 10, 3).is_none());
    }

    #[test]
    fn transitive_closure_of_dag_detected_via_composition() {
        // Lt not in the signature; the ordering shows as the single-atom
        // candidate over the transitively-closed relation.
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "S(X,Y) -> exists Z . S(Y,Z).
             S(X,Y), S(Y,Z) -> S(X,Z).
             S(a,b).",
            &mut voc,
        )
        .unwrap();
        let w = order_probe(&db, &theory, &mut voc, 8, 5).expect("order found");
        assert!(w.chain.len() >= 5);
    }
}
