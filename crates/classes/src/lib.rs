//! # bddfc-classes — Datalog∃ class recognizers and reductions
//!
//! The Section 5 toolbox of *On the BDD/FC Conjecture*:
//!
//! * recognizers for binary / linear / guarded / sticky / weakly-acyclic
//!   theories and the Theorem 3 fragment ([`recognize`]);
//! * witness-producing upgrades of those recognizers, whose *no* answers
//!   carry independently checkable evidence ([`witness`]);
//! * multi-head elimination, §5.3 ([`multihead`]);
//! * the ternary reduction of Theorem 4, §5.2 ([`ternary`]);
//! * the guarded→binary translation of §5.6 ([`guarded`]).

#![warn(missing_docs)]

pub mod guarded;
pub mod multihead;
pub mod orderprobe;
pub mod recognize;
pub mod ternary;
pub mod theorem3;
pub mod witness;

pub use guarded::{guarded_to_binary, GuardedError, GuardedToBinary};
pub use multihead::eliminate_multi_heads;
pub use recognize::{
    classify, guard_of, is_binary, is_guarded, is_linear, is_sticky, is_theorem3_fragment,
    is_weakly_acyclic, ClassReport,
};
pub use orderprobe::{order_probe, OrderWitness};
pub use ternary::{to_ternary, ChainEncoding, TernaryReduction};
pub use theorem3::{split_theorem3, Theorem3Error};
pub use witness::{
    guard_violations, sticky_violations, theorem3_violations, weak_acyclicity_violation,
    GuardViolation, MarkStep, StickyViolation, Theorem3Violation, WaViolation,
};
