//! Recognizers for the Datalog∃ classes discussed in the paper.
//!
//! * **binary** signatures — the scope of Theorem 1;
//! * **linear** — single-atom bodies, studied in Rosati `[8]`;
//! * **guarded** — a body atom covers all body variables, `[1]`, §5.6;
//! * **sticky** — the Calì–Gottlob–Pieris marking procedure, `[4]`;
//! * **weakly acyclic** — the classical chase-termination condition (a
//!   useful contrast class: WA theories have *finite* chases, making FC
//!   trivial for them);
//! * the **Theorem 3 fragment** — every TGD of the form
//!   `Ψ(x̄, y) ⇒ ∃z̄ Φ(y, z̄)` (single frontier variable), to which the
//!   paper's proof extends beyond binary signatures.

use bddfc_core::{Atom, Rule, Term, Theory, VarId, Vocabulary};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// Is every predicate of the theory of arity ≤ 2?
pub fn is_binary(theory: &Theory, voc: &Vocabulary) -> bool {
    theory.preds().into_iter().all(|p| voc.arity(p) <= 2)
}

/// Is the theory linear: every rule body is a single atom?
pub fn is_linear(theory: &Theory) -> bool {
    theory.rules.iter().all(|r| r.body.len() == 1)
}

/// Returns the guard of a rule, if any: a body atom containing every body
/// variable.
pub fn guard_of(rule: &Rule) -> Option<&Atom> {
    let body_vars = rule.body_vars();
    rule.body.iter().find(|atom| {
        let atom_vars: FxHashSet<VarId> = atom.vars().collect();
        body_vars.iter().all(|v| atom_vars.contains(v))
    })
}

/// Is the theory guarded: every rule has a guard?
pub fn is_guarded(theory: &Theory) -> bool {
    theory.rules.iter().all(|r| guard_of(r).is_some())
}

/// Is every TGD of the Theorem 3 (§5.1) shape `Ψ(x̄,y) ⇒ ∃z̄ Φ(y,z̄)`:
/// at most one frontier variable? (Datalog rules are unrestricted.)
pub fn is_theorem3_fragment(theory: &Theory) -> bool {
    theory.tgds().all(|r| r.frontier().len() <= 1)
}

/// The sticky marking: marks body variable *positions* whose values may
/// be lost (not propagated to the head), then closes under rule
/// composition; the theory is sticky iff no marked variable is a join
/// variable (occurs twice in a body). Implements the marking procedure of
/// Calì, Gottlob & Pieris (VLDB'10) at the granularity of predicate
/// positions.
pub fn is_sticky(theory: &Theory) -> bool {
    // marked: set of (pred, position) whose body occurrences are marked.
    let mut marked: FxHashSet<(bddfc_core::PredId, usize)> = FxHashSet::default();

    // Initial marking: a body variable not occurring in the head marks
    // every body position it occupies.
    for rule in &theory.rules {
        let head_vars = rule.head_vars();
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    if !head_vars.contains(v) {
                        marked.insert((atom.pred, i));
                    }
                }
            }
        }
    }

    // Propagation: if a head position of some rule is marked (as a body
    // position elsewhere), then body variables feeding that head position
    // mark their own body positions.
    loop {
        let mut changed = false;
        for rule in &theory.rules {
            for head in &rule.head {
                for (i, t) in head.args.iter().enumerate() {
                    if !marked.contains(&(head.pred, i)) {
                        continue;
                    }
                    if let Term::Var(v) = t {
                        for atom in &rule.body {
                            for (j, bt) in atom.args.iter().enumerate() {
                                if *bt == Term::Var(*v)
                                    && marked.insert((atom.pred, j))
                                {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Stickiness: no variable occurring in a marked body position may
    // occur more than once in that body.
    for rule in &theory.rules {
        let mut occurrences: FxHashMap<VarId, usize> = FxHashMap::default();
        for atom in &rule.body {
            for t in &atom.args {
                if let Term::Var(v) = t {
                    *occurrences.entry(*v).or_default() += 1;
                }
            }
        }
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    if marked.contains(&(atom.pred, i)) && occurrences[v] > 1 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Weak acyclicity: build the position dependency graph (regular edges for
/// frontier propagation, special edges into existential positions); the
/// theory is weakly acyclic iff no cycle passes through a special edge.
pub fn is_weakly_acyclic(theory: &Theory) -> bool {
    type Pos = (bddfc_core::PredId, usize);
    let mut regular: FxHashMap<Pos, FxHashSet<Pos>> = FxHashMap::default();
    let mut special: FxHashMap<Pos, FxHashSet<Pos>> = FxHashMap::default();

    for rule in &theory.rules {
        let ex = rule.existential_vars();
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                let Term::Var(v) = t else { continue };
                let from: Pos = (atom.pred, i);
                for head in &rule.head {
                    for (j, ht) in head.args.iter().enumerate() {
                        match ht {
                            Term::Var(w) if w == v => {
                                regular.entry(from).or_default().insert((head.pred, j));
                            }
                            Term::Var(w) if ex.contains(w) => {
                                special.entry(from).or_default().insert((head.pred, j));
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    // A cycle through a special edge exists iff some special edge (u → v)
    // has a path v →* u in the combined graph.
    let combined_succ = |p: Pos| -> Vec<Pos> {
        let mut out: Vec<Pos> = Vec::new();
        if let Some(s) = regular.get(&p) {
            out.extend(s.iter().copied());
        }
        if let Some(s) = special.get(&p) {
            out.extend(s.iter().copied());
        }
        out
    };
    let reaches = |from: Pos, to: Pos| -> bool {
        let mut seen: FxHashSet<Pos> = FxHashSet::default();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if seen.insert(p) {
                stack.extend(combined_succ(p));
            }
        }
        false
    };
    for (&u, vs) in &special {
        for &v in vs {
            if reaches(v, u) {
                return false;
            }
        }
    }
    true
}

/// A one-stop classification report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassReport {
    /// Arity ≤ 2 everywhere.
    pub binary: bool,
    /// Single-atom bodies.
    pub linear: bool,
    /// Guard in every body.
    pub guarded: bool,
    /// CGP sticky marking passes.
    pub sticky: bool,
    /// Position dependency graph has no special cycle.
    pub weakly_acyclic: bool,
    /// Every TGD has ≤ 1 frontier variable (§5.1).
    pub theorem3: bool,
}

/// Classifies a theory against every recognizer at once.
pub fn classify(theory: &Theory, voc: &Vocabulary) -> ClassReport {
    ClassReport {
        binary: is_binary(theory, voc),
        linear: is_linear(theory),
        guarded: is_guarded(theory),
        sticky: is_sticky(theory),
        weakly_acyclic: is_weakly_acyclic(theory),
        theorem3: is_theorem3_fragment(theory),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_into, parse_rule};

    fn theory(src: &str) -> (Theory, Vocabulary) {
        let mut voc = Vocabulary::new();
        let (t, _, _) = parse_into(src, &mut voc).unwrap();
        (t, voc)
    }

    #[test]
    fn linear_implies_guarded() {
        let (t, voc) = theory("E(X,Y) -> exists Z . E(Y,Z). P(X) -> U(X).");
        let report = classify(&t, &voc);
        assert!(report.linear && report.guarded && report.binary);
    }

    #[test]
    fn guard_detection() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("R(X,Y,Z), P(X) -> U(Z)", &mut voc).unwrap();
        let g = guard_of(&r).unwrap();
        assert_eq!(voc.pred_name(g.pred), "R");
        let r2 = parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap();
        assert!(guard_of(&r2).is_none());
    }

    #[test]
    fn transitivity_is_not_guarded_not_linear() {
        let (t, voc) = theory("E(X,Y), E(Y,Z) -> E(X,Z).");
        let report = classify(&t, &voc);
        assert!(!report.linear && !report.guarded);
        // But it is weakly acyclic (no existential at all).
        assert!(report.weakly_acyclic);
    }

    #[test]
    fn successor_rule_is_not_weakly_acyclic() {
        let (t, voc) = theory("E(X,Y) -> exists Z . E(Y,Z).");
        assert!(!is_weakly_acyclic(&t));
        let _ = voc;
    }

    #[test]
    fn acyclic_generation_is_weakly_acyclic() {
        let (t, _) = theory("P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).");
        assert!(is_weakly_acyclic(&t));
    }

    #[test]
    fn sticky_examples() {
        // Classic sticky example: joins propagate to heads.
        let (t, _) = theory("E(X,Y), E(Y,Z) -> R(X,Y,Z).");
        assert!(is_sticky(&t));
        // Classic non-sticky: the join variable Y is lost.
        let (t2, _) = theory("E(X,Y), E(Y,Z) -> R(X,Z).");
        assert!(!is_sticky(&t2));
    }

    #[test]
    fn sticky_propagation_through_rules() {
        // Y survives into R but a second rule drops R's middle position:
        // the marking propagates back and hits the join.
        let (t, _) = theory(
            "E(X,Y), E(Y,Z) -> R(X,Y,Z).
             R(X,Y,Z) -> S(X,Z).",
        );
        assert!(!is_sticky(&t));
    }

    #[test]
    fn theorem3_fragment_detection() {
        let (t, _) = theory("P(X), E(X,Y) -> exists Z1, Z2 . R(Y,Z1,Z2).");
        assert!(is_theorem3_fragment(&t));
        let (t2, _) = theory("E(X,Y) -> exists Z . R(X,Y,Z).");
        assert!(!is_theorem3_fragment(&t2)); // two frontier variables
    }

    #[test]
    fn ternary_predicate_breaks_binary() {
        let (t, voc) = theory("R(X,Y,Z) -> U(X).");
        assert!(!is_binary(&t, &voc));
    }

    #[test]
    fn empty_theory_is_in_every_class() {
        // Vacuous quantification: with no rules, every recognizer accepts.
        let (t, voc) = theory("");
        assert_eq!(
            classify(&t, &voc),
            ClassReport {
                binary: true,
                linear: true,
                guarded: true,
                sticky: true,
                weakly_acyclic: true,
                theorem3: true,
            }
        );
    }

    #[test]
    fn zero_ary_predicates() {
        // A 0-ary body atom contributes no variables, so it can only be a
        // guard when the body has no variables at all.
        let (t, voc) = theory("Start() -> exists Z . P(Z). Start().");
        let report = classify(&t, &voc);
        assert!(report.binary && report.linear && report.guarded);
        // No frontier variable at all (0 ≤ 1), and nothing feeds back
        // into Start: weakly acyclic and in the Theorem 3 fragment.
        assert!(report.weakly_acyclic && report.theorem3 && report.sticky);

        // A 0-ary atom next to a variable-carrying one is NOT a guard for
        // that variable.
        let mut voc2 = Vocabulary::new();
        let r = parse_rule("Start(), P(X) -> U(X)", &mut voc2).unwrap();
        let g = guard_of(&r).unwrap();
        assert_eq!(voc2.pred_name(g.pred), "P");
    }

    #[test]
    fn constants_in_bodies_and_heads() {
        // Constants occupy positions but are not variables: they never
        // join, never mark, and never induce position-graph edges.
        let (t, voc) = theory("P(a,X) -> Q(X,b). P(a,a).");
        let report = classify(&t, &voc);
        assert!(report.binary && report.linear && report.guarded);
        assert!(report.sticky && report.weakly_acyclic && report.theorem3);

        // A constant repeated in the body is not a join variable, so the
        // marking has nothing to poison.
        let (t2, _) = theory("E(a,Y), E(a,Z) -> R(Y).");
        assert!(is_sticky(&t2));

        // A constant-only head position never receives an existential, so
        // it cannot close a special cycle on its own.
        let (t3, _) = theory("P(X) -> exists Z . E(Z,c). E(X,Y) -> P(X).");
        assert!(!is_weakly_acyclic(&t3)); // E[0] is existential, feeds P[0] -> E via Z? no:
        // special edge P[0] -> E[0]; regular E[0] -> P[0]; cycle through the
        // special edge, hence not WA — the constant at E[1] is inert.
    }

    #[test]
    fn single_rule_self_loops() {
        // Datalog self-loop: E feeds E with no existential — weakly
        // acyclic (no special edge), sticky, guarded, linear.
        let (t, voc) = theory("E(X,Y) -> E(Y,X).");
        assert_eq!(
            classify(&t, &voc),
            ClassReport {
                binary: true,
                linear: true,
                guarded: true,
                sticky: true,
                weakly_acyclic: true,
                theorem3: true,
            }
        );

        // Existential self-loop: the special edge E[0]→E[1] sits on a
        // cycle (E[1] regular-feeds E[0] via Y) — not weakly acyclic.
        let (t2, voc2) = theory("E(X,Y) -> exists Z . E(Y,Z).");
        assert_eq!(
            classify(&t2, &voc2),
            ClassReport {
                binary: true,
                linear: true,
                guarded: true,
                sticky: true,
                weakly_acyclic: false,
                theorem3: true,
            }
        );

        // Self-join on the same predicate inside one rule: X is lost in
        // the head and sits in a marked joined position — not sticky.
        let (t3, voc3) = theory("E(X,Y), E(Y,Z) -> E(X,Z). E(X,Y) -> exists W . E(Y,W).");
        let report = classify(&t3, &voc3);
        assert!(!report.sticky && !report.weakly_acyclic && !report.linear && !report.guarded);
    }

    #[test]
    fn example1_classification() {
        let (t, voc) = theory(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(Y,Z), E(Z,X) -> exists T . U(X,T).
             U(X,Y) -> exists Z . U(Y,Z).",
        );
        let report = classify(&t, &voc);
        assert!(report.binary);
        assert!(!report.linear); // triangle body
        assert!(!report.weakly_acyclic);
        assert!(report.theorem3); // all TGDs have one frontier var
    }
}
