//! Multi-head TGD elimination (Section 5.3).
//!
//! For unrestricted arity, a multi-head TGD is replaced by a single-head
//! TGD whose head is the *join* of all head atoms (a fresh predicate over
//! every head variable), plus datalog rules splitting the join back into
//! the original atoms — exactly the paper's first observation in §5.3.

use bddfc_core::{Atom, Rule, Term, Theory, VarId, Vocabulary};

/// Replaces every multi-head rule by its join encoding. Single-head rules
/// pass through unchanged. The result is single-head and equivalent for
/// certain answers over the original signature.
pub fn eliminate_multi_heads(theory: &Theory, voc: &mut Vocabulary) -> Theory {
    let mut out = Vec::new();
    for rule in &theory.rules {
        if rule.is_single_head() {
            out.push(rule.clone());
            continue;
        }
        // Collect all head variables in deterministic order, constants
        // stay in the split-back rules.
        let mut head_vars: Vec<VarId> = Vec::new();
        for atom in &rule.head {
            for v in atom.vars() {
                if !head_vars.contains(&v) {
                    head_vars.push(v);
                }
            }
        }
        let join = voc.fresh_pred("Join", head_vars.len());
        let join_head = Atom::new(join, head_vars.iter().map(|&v| Term::Var(v)).collect());
        out.push(Rule::single(rule.body.clone(), join_head.clone()));
        for atom in &rule.head {
            out.push(Rule::single(vec![join_head.clone()], atom.clone()));
        }
    }
    Theory::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{certain_cq, ChaseConfig};
    use bddfc_core::{parse_into, parse_query};

    #[test]
    fn result_is_single_head() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) =
            parse_into("P(X) -> E(X,Z), U(Z). E(X,Y), U(Y) -> M(X).", &mut voc).unwrap();
        assert!(!theory.is_single_head());
        let single = eliminate_multi_heads(&theory, &mut voc);
        assert!(single.is_single_head());
        assert_eq!(single.len(), 4); // join TGD + 2 splitters + datalog rule
    }

    #[test]
    fn certain_answers_preserved() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into(
            "P(X) -> E(X,Z), U(Z).
             E(X,Y), U(Y) -> M(X).
             P(a).",
            &mut voc,
        )
        .unwrap();
        let single = eliminate_multi_heads(&theory, &mut voc);
        for q_src in ["M(a)", "E(a,W), U(W)", "U(a)"] {
            let q = parse_query(q_src, &mut voc).unwrap();
            let orig = certain_cq(&db, &theory, &mut voc.clone(), &q, ChaseConfig::rounds(8));
            let new = certain_cq(&db, &single, &mut voc.clone(), &q, ChaseConfig::rounds(16));
            assert_eq!(orig.is_true(), new.is_true(), "query {q_src}");
        }
    }

    #[test]
    fn shared_witness_is_preserved() {
        // The defining property of a multi-head TGD: one witness serves
        // both atoms. The join encoding must keep that.
        let mut voc = Vocabulary::new();
        let (theory, db, _) = parse_into("P(X) -> E(X,Z), U(Z). P(a).", &mut voc).unwrap();
        let single = eliminate_multi_heads(&theory, &mut voc);
        let res = bddfc_chase::chase(&db, &single, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        let w_e = res.instance.fact(res.instance.facts_with_pred(e)[0]).args[1];
        let w_u = res.instance.fact(res.instance.facts_with_pred(u)[0]).args[0];
        assert_eq!(w_e, w_u);
    }
}
