//! Witness-producing upgrades of the [`crate::recognize`] recognizers.
//!
//! Each checker here answers the same question as its boolean oracle —
//! guardedness, stickiness, weak acyclicity, the Theorem 3 fragment —
//! but a *no* comes with evidence: the offending rule, the body variable
//! each candidate guard misses, the marking derivation that poisons a
//! join position, or an explicit special-edge cycle. Every witness type
//! has a [`validate`](GuardViolation::validate)-style method that
//! re-checks the claim against the theory *without* re-running the
//! analysis, so a reported witness can be trusted (and tested)
//! independently.
//!
//! The boolean recognizers in [`crate::recognize`] are kept untouched as
//! oracles; `tests/lint.rs` proves agreement differentially.
//!
//! All outputs are deterministic functions of the theory: rules, atoms
//! and argument positions are walked in declaration order and every
//! intermediate set is ordered.

use bddfc_core::posgraph::{Edge, EdgeKind, Pos, PosGraph};
use bddfc_core::{Term, Theory, VarId};
use std::collections::BTreeMap;

/// Evidence that a rule has no guard: for every body atom, one body
/// variable that the atom fails to cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardViolation {
    /// Index of the unguarded rule in [`Theory::rules`].
    pub rule: usize,
    /// `missing[i]` is a body variable of the rule absent from body atom
    /// `i` — so no atom can serve as guard.
    pub missing: Vec<VarId>,
}

impl GuardViolation {
    /// Re-checks the witness against `theory`: every `missing[i]` must be
    /// a body variable of the rule that does not occur in body atom `i`.
    pub fn validate(&self, theory: &Theory) -> Result<(), String> {
        let rule = theory
            .rules
            .get(self.rule)
            .ok_or_else(|| format!("rule index {} out of range", self.rule))?;
        if self.missing.len() != rule.body.len() {
            return Err(format!(
                "witness names {} atoms but the body has {}",
                self.missing.len(),
                rule.body.len()
            ));
        }
        let body_vars = rule.body_vars();
        for (i, (atom, &miss)) in rule.body.iter().zip(&self.missing).enumerate() {
            if !body_vars.contains(&miss) {
                return Err(format!("missing[{i}] is not a body variable"));
            }
            if atom.vars().any(|v| v == miss) {
                return Err(format!("body atom {i} does contain missing[{i}]"));
            }
        }
        Ok(())
    }
}

/// All unguarded rules of the theory, in declaration order.
pub fn guard_violations(theory: &Theory) -> Vec<GuardViolation> {
    let mut out = Vec::new();
    for (ri, rule) in theory.rules.iter().enumerate() {
        let mut body_vars: Vec<VarId> = rule.body_vars().into_iter().collect();
        body_vars.sort_unstable();
        let missing: Option<Vec<VarId>> = rule
            .body
            .iter()
            .map(|atom| {
                let atom_vars: Vec<VarId> = atom.vars().collect();
                body_vars.iter().copied().find(|v| !atom_vars.contains(v))
            })
            .collect();
        if let Some(missing) = missing {
            out.push(GuardViolation { rule: ri, missing });
        }
    }
    out
}

/// One step of a sticky-marking derivation.
///
/// Initial steps (`because == None`) mark a body position whose variable
/// is dropped by the rule's head; propagation steps mark a body position
/// feeding an already-marked head position (`because == Some(head_pos)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarkStep {
    /// The position being marked.
    pub pos: Pos,
    /// Index of the rule justifying this marking.
    pub rule: usize,
    /// `None` for an initial marking; `Some(p)` when the marking
    /// propagates from head position `p`, marked by an earlier step.
    pub because: Option<Pos>,
}

/// Evidence that the theory is not sticky: a marked body position holding
/// a join variable, with the derivation that marked it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StickyViolation {
    /// Index of the rule whose body contains the poisoned join.
    pub rule: usize,
    /// Index of the body atom.
    pub atom: usize,
    /// Argument position within that atom.
    pub arg: usize,
    /// The join variable sitting there.
    pub var: VarId,
    /// Its occurrence count across the rule body (always ≥ 2).
    pub occurrences: usize,
    /// Derivation of the marking, initial step first; the final step
    /// marks this violation's `(pred, arg)` position.
    pub marking: Vec<MarkStep>,
}

impl StickyViolation {
    /// Re-checks the witness: replays every marking step against the
    /// theory (each propagation must cite a position marked earlier in
    /// the chain) and recounts the join variable's occurrences.
    pub fn validate(&self, theory: &Theory) -> Result<(), String> {
        let rule = theory
            .rules
            .get(self.rule)
            .ok_or_else(|| format!("rule index {} out of range", self.rule))?;
        let atom = rule
            .body
            .get(self.atom)
            .ok_or_else(|| format!("body atom {} out of range", self.atom))?;
        match atom.args.get(self.arg) {
            Some(Term::Var(v)) if *v == self.var => {}
            _ => return Err("flagged position does not hold the flagged variable".into()),
        }
        let occurrences = rule
            .body
            .iter()
            .flat_map(|a| a.vars())
            .filter(|v| *v == self.var)
            .count();
        if occurrences != self.occurrences || occurrences < 2 {
            return Err(format!(
                "variable occurs {occurrences}× in the body, witness claims {}",
                self.occurrences
            ));
        }
        // Replay the derivation.
        let mut marked: Vec<Pos> = Vec::new();
        for (k, step) in self.marking.iter().enumerate() {
            let srule = theory
                .rules
                .get(step.rule)
                .ok_or_else(|| format!("step {k}: rule index out of range"))?;
            let justified = match step.because {
                None => {
                    // Some body atom of `srule` holds a head-dropped
                    // variable at this position.
                    let head_vars = srule.head_vars();
                    srule.body.iter().any(|a| {
                        a.pred == step.pos.pred
                            && matches!(
                                a.args.get(step.pos.arg),
                                Some(Term::Var(v)) if !head_vars.contains(v)
                            )
                    })
                }
                Some(hp) => {
                    if !marked.contains(&hp) {
                        return Err(format!(
                            "step {k} cites a position not marked earlier in the chain"
                        ));
                    }
                    // Some head atom of `srule` holds a variable at `hp`
                    // that also sits at `step.pos` in the body.
                    srule.head.iter().any(|h| {
                        h.pred == hp.pred
                            && match h.args.get(hp.arg) {
                                Some(Term::Var(v)) => srule.body.iter().any(|a| {
                                    a.pred == step.pos.pred
                                        && a.args.get(step.pos.arg)
                                            == Some(&Term::Var(*v))
                                }),
                                _ => false,
                            }
                    })
                }
            };
            if !justified {
                return Err(format!("step {k} is not justified by its rule"));
            }
            marked.push(step.pos);
        }
        match self.marking.last() {
            Some(last) if last.pos == (Pos { pred: atom.pred, arg: self.arg }) => Ok(()),
            _ => Err("derivation does not end at the flagged position".into()),
        }
    }
}

/// All sticky-marking violations, in (rule, atom, arg) order.
///
/// Runs the Calì–Gottlob–Pieris marking fixpoint exactly as
/// [`crate::recognize::is_sticky`] does, but records for every marked
/// position the first step that marked it, so each violation carries a
/// replayable derivation.
pub fn sticky_violations(theory: &Theory) -> Vec<StickyViolation> {
    // first_mark: position -> the step that first marked it.
    let mut first_mark: BTreeMap<Pos, MarkStep> = BTreeMap::new();

    for (ri, rule) in theory.rules.iter().enumerate() {
        let head_vars = rule.head_vars();
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    if !head_vars.contains(v) {
                        let pos = Pos { pred: atom.pred, arg: i };
                        first_mark
                            .entry(pos)
                            .or_insert(MarkStep { pos, rule: ri, because: None });
                    }
                }
            }
        }
    }

    loop {
        let mut changed = false;
        for (ri, rule) in theory.rules.iter().enumerate() {
            for head in &rule.head {
                for (i, t) in head.args.iter().enumerate() {
                    let hp = Pos { pred: head.pred, arg: i };
                    if !first_mark.contains_key(&hp) {
                        continue;
                    }
                    if let Term::Var(v) = t {
                        for atom in &rule.body {
                            for (j, bt) in atom.args.iter().enumerate() {
                                if *bt != Term::Var(*v) {
                                    continue;
                                }
                                let pos = Pos { pred: atom.pred, arg: j };
                                if !first_mark.contains_key(&pos) {
                                    first_mark.insert(
                                        pos,
                                        MarkStep { pos, rule: ri, because: Some(hp) },
                                    );
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Chain extraction: follow `because` links back to an initial step.
    let chain_to = |target: Pos| -> Vec<MarkStep> {
        let mut chain = Vec::new();
        let mut cur = Some(target);
        while let Some(p) = cur {
            let step = first_mark[&p];
            chain.push(step);
            cur = step.because;
        }
        chain.reverse();
        chain
    };

    let mut out = Vec::new();
    for (ri, rule) in theory.rules.iter().enumerate() {
        let mut occurrences: BTreeMap<VarId, usize> = BTreeMap::new();
        for atom in &rule.body {
            for t in &atom.args {
                if let Term::Var(v) = t {
                    *occurrences.entry(*v).or_default() += 1;
                }
            }
        }
        for (ai, atom) in rule.body.iter().enumerate() {
            for (i, t) in atom.args.iter().enumerate() {
                let Term::Var(v) = t else { continue };
                let pos = Pos { pred: atom.pred, arg: i };
                if first_mark.contains_key(&pos) && occurrences[v] > 1 {
                    out.push(StickyViolation {
                        rule: ri,
                        atom: ai,
                        arg: i,
                        var: *v,
                        occurrences: occurrences[v],
                        marking: chain_to(pos),
                    });
                }
            }
        }
    }
    out
}

/// Evidence that the theory is not weakly acyclic: a cycle in the
/// position dependency graph passing through a special edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaViolation {
    /// The cycle, as a chained edge sequence (`cycle[k].to ==
    /// cycle[k+1].from`, wrapping around); the first edge is special.
    pub cycle: Vec<Edge>,
}

impl WaViolation {
    /// Re-checks the witness: the edges must chain into a cycle, contain
    /// a special edge, and each edge must genuinely be induced by the
    /// rule it names.
    pub fn validate(&self, theory: &Theory) -> Result<(), String> {
        if self.cycle.is_empty() {
            return Err("empty cycle".into());
        }
        if !self.cycle.iter().any(|e| e.kind == EdgeKind::Special) {
            return Err("cycle has no special edge".into());
        }
        for (k, e) in self.cycle.iter().enumerate() {
            let next = &self.cycle[(k + 1) % self.cycle.len()];
            if e.to != next.from {
                return Err(format!("edge {k} does not chain into its successor"));
            }
            let rule = theory
                .rules
                .get(e.rule)
                .ok_or_else(|| format!("edge {k}: rule index out of range"))?;
            let ex = rule.existential_vars();
            let induced = rule.body.iter().any(|atom| {
                atom.pred == e.from.pred
                    && match atom.args.get(e.from.arg) {
                        Some(Term::Var(v)) => rule.head.iter().any(|h| {
                            h.pred == e.to.pred
                                && match h.args.get(e.to.arg) {
                                    Some(Term::Var(w)) => match e.kind {
                                        EdgeKind::Regular => w == v,
                                        EdgeKind::Special => ex.contains(w),
                                    },
                                    _ => false,
                                }
                        }),
                        _ => false,
                    }
            });
            if !induced {
                return Err(format!("edge {k} is not induced by rule {}", e.rule));
            }
        }
        Ok(())
    }
}

/// The deterministic special-edge cycle of the theory's position
/// dependency graph, or `None` when the theory is weakly acyclic.
pub fn weak_acyclicity_violation(theory: &Theory) -> Option<WaViolation> {
    PosGraph::new(theory).special_cycle().map(|cycle| WaViolation { cycle })
}

/// Evidence that a TGD falls outside the Theorem 3 fragment: its
/// frontier has more than one variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Theorem3Violation {
    /// Index of the offending TGD in [`Theory::rules`].
    pub rule: usize,
    /// Its frontier variables, sorted (always ≥ 2 of them).
    pub frontier: Vec<VarId>,
}

impl Theorem3Violation {
    /// Re-checks the witness: the rule must be an existential TGD whose
    /// recomputed frontier matches and exceeds one variable.
    pub fn validate(&self, theory: &Theory) -> Result<(), String> {
        let rule = theory
            .rules
            .get(self.rule)
            .ok_or_else(|| format!("rule index {} out of range", self.rule))?;
        if rule.is_datalog() {
            return Err("rule is plain datalog, not a TGD".into());
        }
        let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
        frontier.sort_unstable();
        if frontier != self.frontier {
            return Err("frontier mismatch".into());
        }
        if frontier.len() <= 1 {
            return Err("frontier has at most one variable".into());
        }
        Ok(())
    }
}

/// All TGDs outside the Theorem 3 fragment, in declaration order.
pub fn theorem3_violations(theory: &Theory) -> Vec<Theorem3Violation> {
    let mut out = Vec::new();
    for (ri, rule) in theory.rules.iter().enumerate() {
        if rule.is_datalog() {
            continue;
        }
        let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
        if frontier.len() > 1 {
            frontier.sort_unstable();
            out.push(Theorem3Violation { rule: ri, frontier });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognize::{is_guarded, is_sticky, is_theorem3_fragment, is_weakly_acyclic};
    use bddfc_core::{parse_into, Vocabulary};

    fn theory(src: &str) -> Theory {
        let mut voc = Vocabulary::new();
        let (t, _, _) = parse_into(src, &mut voc).unwrap();
        t
    }

    #[test]
    fn guard_witness_agrees_and_validates() {
        let t = theory("E(X,Y), E(Y,Z) -> E(X,Z). R(X,Y,Z), P(X) -> U(Z).");
        let vs = guard_violations(&t);
        assert_eq!(vs.len(), 1, "only the transitivity rule is unguarded");
        assert_eq!(vs[0].rule, 0);
        vs[0].validate(&t).unwrap();
        assert_eq!(vs.is_empty(), is_guarded(&t));
    }

    #[test]
    fn guarded_theory_has_no_witness() {
        let t = theory("E(X,Y) -> exists Z . E(Y,Z).");
        assert!(guard_violations(&t).is_empty());
        assert!(is_guarded(&t));
    }

    #[test]
    fn sticky_witness_agrees_and_validates() {
        let t = theory("E(X,Y), E(Y,Z) -> R(X,Z).");
        let vs = sticky_violations(&t);
        assert!(!vs.is_empty());
        assert!(!is_sticky(&t));
        for v in &vs {
            v.validate(&t).unwrap();
            // Initial marking only: one-step derivations.
            assert!(v.marking.len() == 1 && v.marking[0].because.is_none());
        }
    }

    #[test]
    fn sticky_propagation_witness_has_a_chain() {
        let t = theory(
            "E(X,Y), E(Y,Z) -> R(X,Y,Z).
             R(X,Y,Z) -> S(X,Z).",
        );
        let vs = sticky_violations(&t);
        assert!(!vs.is_empty());
        assert!(!is_sticky(&t));
        let longest = vs.iter().map(|v| v.marking.len()).max().unwrap();
        assert!(longest >= 2, "propagation must show up in some chain");
        for v in &vs {
            v.validate(&t).unwrap();
        }
    }

    #[test]
    fn wa_witness_agrees_and_validates() {
        let t = theory("E(X,Y) -> exists Z . E(Y,Z).");
        let v = weak_acyclicity_violation(&t).unwrap();
        assert!(!is_weakly_acyclic(&t));
        v.validate(&t).unwrap();
        let t2 = theory("P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).");
        assert!(weak_acyclicity_violation(&t2).is_none());
        assert!(is_weakly_acyclic(&t2));
    }

    #[test]
    fn theorem3_witness_agrees_and_validates() {
        let t = theory("E(X,Y) -> exists Z . R(X,Y,Z). P(X), E(X,Y) -> exists Z . U(Y,Z).");
        let vs = theorem3_violations(&t);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, 0);
        vs[0].validate(&t).unwrap();
        assert!(!is_theorem3_fragment(&t));
    }

    #[test]
    fn corrupted_witnesses_fail_validation() {
        let t = theory("E(X,Y), E(Y,Z) -> E(X,Z).");
        let mut g = guard_violations(&t).remove(0);
        g.missing.swap(0, 1); // now each atom *contains* its "missing" var
        assert!(g.validate(&t).is_err());

        let t2 = theory("E(X,Y) -> exists Z . E(Y,Z).");
        let mut w = weak_acyclicity_violation(&t2).unwrap();
        w.cycle[0].kind = EdgeKind::Regular;
        assert!(w.validate(&t2).is_err());

        let t3 = theory("E(X,Y), E(Y,Z) -> R(X,Z).");
        let mut s = sticky_violations(&t3).remove(0);
        s.occurrences += 1;
        assert!(s.validate(&t3).is_err());
    }
}
