//! Re-export of the workspace diagnostic model.
//!
//! The model — [`Diagnostic`], [`Severity`], [`LintReport`], the
//! stable-code registry [`CODES`] — lives in [`bddfc_core::diag`] so
//! that other crates (notably `bddfc-analyze`) can emit diagnostics
//! without depending on the linter. This module keeps the historical
//! `bddfc_lint::diag` paths working.

pub use bddfc_core::diag::*;
