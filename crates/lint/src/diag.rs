//! The diagnostic model: codes, severities, rendered text and JSON.
//!
//! Every lint produces [`Diagnostic`] values with a stable code
//! (`B0xx` hygiene, `B1xx` class membership), a severity, an optional
//! primary [`SrcSpan`] and free-form secondary notes carrying the
//! witness details. Rendering — both the rustc-style text and the
//! `--json` form — is a pure function of the diagnostic, and
//! [`LintReport::sort`] fixes a total order, so output is byte-identical
//! across runs and thread counts.

use bddfc_core::obs::json_escape;
use bddfc_core::SrcSpan;
use std::fmt;

/// How bad a diagnostic is. The order is `Note < Warning < Error`;
/// `--deny <level>` fails a run containing any diagnostic at or above
/// the level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (e.g. class-membership facts).
    Note,
    /// Probably a defect; the program still means something.
    Warning,
    /// The program is broken (parse error, unsafe rule).
    Error,
}

impl Severity {
    /// Parses a `--deny` level name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a stable code, severity, message, optional primary span
/// and witness notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"B101"`. Codes never change meaning.
    pub code: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// One-line primary message.
    pub message: String,
    /// Primary source span (absent for theory-level findings or
    /// programmatically built rules).
    pub span: Option<SrcSpan>,
    /// Secondary lines carrying the witness (missed guard variables,
    /// marking derivations, cycle edges, …).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        span: Option<SrcSpan>,
    ) -> Self {
        Diagnostic { code, severity, message: message.into(), span, notes: Vec::new() }
    }

    /// Appends a secondary note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic rustc-style:
    ///
    /// ```text
    /// warning[B103]: theory is not weakly acyclic: ...
    ///   --> chain.dlg:1:1
    ///    = note: special edge E[1] -> E[1] induced by rule #0
    /// ```
    pub fn render(&self, file: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            out.push_str(&format!("  --> {file}:{span}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("   = note: {note}\n"));
        }
        out
    }

    /// The diagnostic as one JSON object (fixed key order, no
    /// whitespace) — a deterministic function of the diagnostic.
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",",
            self.code,
            self.severity,
            json_escape(&self.message)
        );
        match self.span {
            Some(s) => {
                let _ = write!(
                    out,
                    "\"span\":{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}},",
                    s.line, s.col, s.end_line, s.end_col
                );
            }
            None => out.push_str("\"span\":null,"),
        }
        out.push_str("\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(n));
        }
        out.push_str("]}");
        out
    }
}

/// All diagnostics for one input, under its display name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintReport {
    /// Display name of the input (file path or zoo program name).
    pub file: String,
    /// The findings, in [`LintReport::sort`] order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates a report and puts the diagnostics into canonical order:
    /// by span start (spanless first), then code, then message.
    pub fn new(file: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        Self::sort(&mut diagnostics);
        LintReport { file: file.into(), diagnostics }
    }

    /// Canonical diagnostic order (see [`LintReport::new`]).
    pub fn sort(diagnostics: &mut [Diagnostic]) {
        diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span.map_or((0, 0), |s| (s.line, s.col)),
                    d.code,
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// The worst severity present, if any diagnostic exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Renders every diagnostic rustc-style, separated by blank lines,
    /// followed by a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.file));
            out.push('\n');
        }
        let (e, w, n) = self.counts();
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.file, e, w, n
        ));
        out
    }

    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// The report as one JSON object (fixed key order, no whitespace).
    pub fn json(&self) -> String {
        let mut out = format!("{{\"file\":\"{}\",\"diagnostics\":[", json_escape(&self.file));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.json());
        }
        out.push_str("]}");
        out
    }
}

/// Renders several reports as the `bddfc-lint --json` document: one
/// line, fixed key order, reports in input order.
pub fn reports_json(reports: &[LintReport]) -> String {
    let mut out = String::from("{\"schema\":1,\"files\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.json());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_parse() {
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn render_includes_code_span_and_notes() {
        let d = Diagnostic::new(
            "B101",
            Severity::Note,
            "rule has no guard",
            Some(SrcSpan::new(3, 1, 3, 20)),
        )
        .with_note("body atom `E(X,Y)` misses `Z`");
        let s = d.render("t.dlg");
        assert!(s.contains("note[B101]: rule has no guard"), "{s}");
        assert!(s.contains("--> t.dlg:3:1"), "{s}");
        assert!(s.contains("= note: body atom"), "{s}");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let d = Diagnostic::new("B000", Severity::Error, "bad \"quote\"", None);
        assert_eq!(
            d.json(),
            "{\"code\":\"B000\",\"severity\":\"error\",\
             \"message\":\"bad \\\"quote\\\"\",\"span\":null,\"notes\":[]}"
        );
    }

    #[test]
    fn sort_is_total_and_span_first() {
        let a = Diagnostic::new("B002", Severity::Warning, "x", Some(SrcSpan::new(2, 1, 2, 5)));
        let b = Diagnostic::new("B103", Severity::Warning, "y", None);
        let report = LintReport::new("t", vec![a.clone(), b.clone()]);
        assert_eq!(report.diagnostics, vec![b, a]);
    }
}
