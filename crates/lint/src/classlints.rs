//! Class-membership lints `B101..B105`, built on the witness-producing
//! recognizers of [`bddfc_classes::witness`].
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | B101 | note     | rule has no guard (outside guarded Datalog∃, §5.6) |
//! | B102 | note     | sticky marking poisons a join variable (Calì–Gottlob–Pieris) |
//! | B103 | warning  | special-edge cycle: weak acyclicity unprovable, chase may not terminate |
//! | B104 | note     | TGD outside the Theorem 3 fragment (> 1 frontier variable) |
//! | B105 | note     | predicate arity > 2: outside the binary scope of Theorem 1 |
//!
//! Only B103 is a warning — it is the one finding with an operational
//! consequence (an unbounded chase may diverge). The rest report where a
//! theory sits relative to the paper's syntactic classes.

use crate::diag::{Diagnostic, Severity};
use bddfc_classes::witness::{
    guard_violations, sticky_violations, theorem3_violations, weak_acyclicity_violation,
    MarkStep,
};
use bddfc_core::posgraph::EdgeKind;
use bddfc_core::Program;

/// Runs every class lint over `prog`.
pub fn class_lints(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if prog.theory.is_empty() {
        return out;
    }
    not_binary(prog, &mut out);
    not_guarded(prog, &mut out);
    not_sticky(prog, &mut out);
    not_weakly_acyclic(prog, &mut out);
    outside_theorem3(prog, &mut out);
    out
}

fn not_binary(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut preds: Vec<_> = prog.theory.preds().into_iter().collect();
    preds.sort_unstable();
    for p in preds {
        let arity = prog.voc.arity(p);
        if arity > 2 {
            out.push(Diagnostic::new(
                "B105",
                Severity::Note,
                format!(
                    "predicate `{}` has arity {arity}: the signature is not binary \
                     (outside the scope of Theorem 1)",
                    prog.voc.pred_name(p)
                ),
                None,
            ));
        }
    }
}

fn not_guarded(prog: &Program, out: &mut Vec<Diagnostic>) {
    for v in guard_violations(&prog.theory) {
        let rule = &prog.theory.rules[v.rule];
        let mut d = Diagnostic::new(
            "B101",
            Severity::Note,
            format!(
                "rule {} has no guard: no body atom covers all body variables",
                rule.describe(&prog.voc)
            ),
            rule.span(),
        );
        for (i, (atom, &miss)) in rule.body.iter().zip(&v.missing).enumerate() {
            d = d.with_note(format!(
                "body atom #{i} `{}` misses `{}`",
                atom.display(&prog.voc),
                prog.voc.var_name(miss)
            ));
        }
        out.push(d);
    }
}

fn render_mark_step(step: &MarkStep, prog: &Program) -> String {
    let rule = &prog.theory.rules[step.rule];
    match step.because {
        None => format!(
            "position {} is marked: rule {} drops the variable there",
            step.pos.display(&prog.voc),
            rule.describe(&prog.voc)
        ),
        Some(hp) => format!(
            "position {} is marked: it feeds the marked head position {} in rule {}",
            step.pos.display(&prog.voc),
            hp.display(&prog.voc),
            rule.describe(&prog.voc)
        ),
    }
}

fn not_sticky(prog: &Program, out: &mut Vec<Diagnostic>) {
    for v in sticky_violations(&prog.theory) {
        let rule = &prog.theory.rules[v.rule];
        let name = prog.voc.var_name(v.var);
        let mut d = Diagnostic::new(
            "B102",
            Severity::Note,
            format!(
                "sticky marking poisons join variable `{name}` in rule {}",
                rule.describe(&prog.voc)
            ),
            rule.body_span(v.atom).or_else(|| rule.span()),
        )
        .with_note(format!("`{name}` occurs {}x in the body", v.occurrences));
        for step in &v.marking {
            d = d.with_note(render_mark_step(step, prog));
        }
        out.push(d);
    }
}

fn not_weakly_acyclic(prog: &Program, out: &mut Vec<Diagnostic>) {
    let Some(v) = weak_acyclicity_violation(&prog.theory) else { return };
    let first = &v.cycle[0];
    let rule = &prog.theory.rules[first.rule];
    let mut d = Diagnostic::new(
        "B103",
        Severity::Warning,
        format!(
            "the theory cannot be proven weakly acyclic: the position dependency \
             graph has a {}-edge cycle through {}",
            v.cycle.len(),
            first.to.display(&prog.voc)
        ),
        rule.span(),
    )
    .with_note("an unbounded chase over this theory may not terminate".to_string());
    for e in &v.cycle {
        d = d.with_note(format!(
            "{} edge {} -> {} induced by rule {}",
            match e.kind {
                EdgeKind::Special => "special",
                EdgeKind::Regular => "regular",
            },
            e.from.display(&prog.voc),
            e.to.display(&prog.voc),
            prog.theory.rules[e.rule].describe(&prog.voc)
        ));
    }
    out.push(d);
}

fn outside_theorem3(prog: &Program, out: &mut Vec<Diagnostic>) {
    for v in theorem3_violations(&prog.theory) {
        let rule = &prog.theory.rules[v.rule];
        let names: Vec<&str> = v.frontier.iter().map(|&x| prog.voc.var_name(x)).collect();
        out.push(Diagnostic::new(
            "B104",
            Severity::Note,
            format!(
                "TGD {} falls outside the Theorem 3 fragment: its frontier \
                 {{{}}} has {} variables (at most 1 allowed)",
                rule.describe(&prog.voc),
                names.join(", "),
                names.len()
            ),
            rule.span(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn lints(src: &str) -> Vec<Diagnostic> {
        let prog = parse_program(src).unwrap();
        let mut ds = class_lints(&prog);
        crate::diag::LintReport::sort(&mut ds);
        ds
    }

    #[test]
    fn empty_theory_has_no_class_lints() {
        assert!(lints("E(a,b).").is_empty());
    }

    #[test]
    fn chain_theory_warns_on_weak_acyclicity_only_once() {
        let ds = lints("E(X,Y) -> exists Z . E(Y,Z). E(a,b).");
        let wa: Vec<_> = ds.iter().filter(|d| d.code == "B103").collect();
        assert_eq!(wa.len(), 1);
        assert_eq!(wa[0].severity, Severity::Warning);
        assert!(wa[0].notes.iter().any(|n| n.starts_with("special edge")), "{:?}", wa[0]);
    }

    #[test]
    fn transitivity_gets_a_guard_note_with_witness() {
        let ds = lints("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b).");
        let g: Vec<_> = ds.iter().filter(|d| d.code == "B101").collect();
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].notes.len(), 2, "one note per body atom");
    }

    #[test]
    fn lost_join_gets_a_sticky_note() {
        let ds = lints("E(X,Y), E(Y,Z) -> R(X,Z). E(a,b). ?- R(X,Y).");
        assert!(ds.iter().any(|d| d.code == "B102" && d.message.contains("`Y`")));
    }

    #[test]
    fn quaternary_pred_and_wide_frontier() {
        let ds = lints("E(X,Y) -> exists Z1, Z2 . R(X,Y,Z1,Z2). E(a,b). ?- R(X,Y,Z,T).");
        assert!(ds.iter().any(|d| d.code == "B105"));
        assert!(ds.iter().any(|d| d.code == "B104"));
    }
}
