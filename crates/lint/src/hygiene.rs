//! Hygiene lints `B001..B006`: program defects independent of any
//! Datalog∃ class.
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | B001 | error    | unsafe rule (empty body) |
//! | B002 | warning  | singleton variable (dropped, not `_`-prefixed) |
//! | B003 | note     | head-only predicate (derived but never used) |
//! | B004 | warning  | body-only predicate (can never hold a fact) |
//! | B005 | warning  | unreachable rule (body predicate in a dependency component unreachable from any fact) |
//! | B006 | warning  | duplicate rule (equal up to variable renaming) |

use crate::diag::{Diagnostic, Severity};
use bddfc_core::scc::condense;
use bddfc_core::{ConstId, PredId, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every hygiene lint over `prog`.
pub fn hygiene_lints(prog: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    unsafe_rules(prog, &mut out);
    singleton_variables(prog, &mut out);
    predicate_roles(prog, &mut out);
    unreachable_rules(prog, &mut out);
    duplicate_rules(prog, &mut out);
    out
}

/// B001: a rule with an empty body holds vacuously of everything — the
/// classical safety violation. The parser cannot produce one, but
/// programmatically built theories can.
fn unsafe_rules(prog: &Program, out: &mut Vec<Diagnostic>) {
    for rule in &prog.theory.rules {
        if !rule.is_safe() {
            out.push(Diagnostic::new(
                "B001",
                Severity::Error,
                format!("unsafe rule {}: the body is empty", rule.describe(&prog.voc)),
                rule.span(),
            ));
        }
    }
}

/// B002: a variable occurring exactly once in its rule is either a typo
/// or an intentional drop; the `_` prefix documents the latter.
fn singleton_variables(prog: &Program, out: &mut Vec<Diagnostic>) {
    for rule in &prog.theory.rules {
        let mut count: BTreeMap<bddfc_core::VarId, usize> = BTreeMap::new();
        for atom in rule.body.iter().chain(&rule.head) {
            for v in atom.vars() {
                *count.entry(v).or_default() += 1;
            }
        }
        let head_vars = rule.head_vars();
        for (v, n) in count {
            // Existential variables legitimately occur once (the witness
            // position); only body-side singletons are suspicious.
            if n != 1 || head_vars.contains(&v) {
                continue;
            }
            let name = prog.voc.var_name(v);
            if name.starts_with('_') {
                continue;
            }
            // Point at the body atom containing the singleton.
            let span = rule
                .body
                .iter()
                .position(|a| a.vars().any(|w| w == v))
                .and_then(|i| rule.body_span(i))
                .or_else(|| rule.span());
            out.push(
                Diagnostic::new(
                    "B002",
                    Severity::Warning,
                    format!(
                        "variable `{name}` occurs only once in {}",
                        rule.describe(&prog.voc)
                    ),
                    span,
                )
                .with_note(format!("rename it `_{name}` if the drop is intentional")),
            );
        }
    }
}

/// B003 (head-only: derived but never used) and B004 (body-only: can
/// never hold a fact, so its rules can never fire).
fn predicate_roles(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut in_body: BTreeSet<PredId> = BTreeSet::new();
    let mut in_head: BTreeSet<PredId> = BTreeSet::new();
    for rule in &prog.theory.rules {
        in_body.extend(rule.body.iter().map(|a| a.pred));
        in_head.extend(rule.head.iter().map(|a| a.pred));
    }
    let in_query: BTreeSet<PredId> = prog
        .queries
        .iter()
        .flat_map(|q| q.atoms.iter().map(|a| a.pred))
        .collect();
    let in_facts: BTreeSet<PredId> = prog.instance.facts().iter().map(|f| f.pred).collect();

    for &p in &in_head {
        if !in_body.contains(&p) && !in_query.contains(&p) {
            out.push(Diagnostic::new(
                "B003",
                Severity::Note,
                format!(
                    "predicate `{}` is derived but never used in any rule body or query",
                    prog.voc.pred_name(p)
                ),
                first_body_or_head_span(prog, p, false),
            ));
        }
    }
    for &p in &in_body {
        if !in_head.contains(&p) && !in_facts.contains(&p) {
            out.push(
                Diagnostic::new(
                    "B004",
                    Severity::Warning,
                    format!(
                        "predicate `{}` occurs in rule bodies but no fact or rule head \
                         can ever populate it",
                        prog.voc.pred_name(p)
                    ),
                    first_body_or_head_span(prog, p, true),
                )
                .with_note("every rule using it is dead"),
            );
        }
    }
}

/// The span of the first body (or head) atom over `p`, if known.
fn first_body_or_head_span(
    prog: &Program,
    p: PredId,
    body: bool,
) -> Option<bddfc_core::SrcSpan> {
    for rule in &prog.theory.rules {
        let atoms = if body { &rule.body } else { &rule.head };
        if let Some(i) = atoms.iter().position(|a| a.pred == p) {
            return if body { rule.body_span(i) } else { rule.head_span(i) };
        }
    }
    None
}

/// B005: condense the predicate-dependency graph (body pred → head pred)
/// into strongly connected components and walk the DAG from the fact
/// predicates; a rule whose body mentions a predicate in an unreachable
/// component can never fire. (Reachability over-approximates
/// derivability, so every report is sound.)
fn unreachable_rules(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut preds: BTreeSet<PredId> = prog.theory.preds().into_iter().collect();
    preds.extend(prog.instance.facts().iter().map(|f| f.pred));
    let preds: Vec<PredId> = preds.into_iter().collect();
    if preds.is_empty() {
        return;
    }
    let index: BTreeMap<PredId, usize> =
        preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); preds.len()];
    for rule in &prog.theory.rules {
        for b in &rule.body {
            for h in &rule.head {
                succ[index[&b.pred]].insert(index[&h.pred]);
            }
        }
    }

    let comp = condense(&succ);
    let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ncomp];
    for (u, ss) in succ.iter().enumerate() {
        for &v in ss {
            if comp[u] != comp[v] {
                comp_succ[comp[u]].insert(comp[v]);
            }
        }
    }

    // Seeds: components holding a fact predicate, or the head of a
    // body-less rule.
    let mut reachable = vec![false; ncomp];
    let mut queue: Vec<usize> = Vec::new();
    let seed = |c: usize, reachable: &mut Vec<bool>, queue: &mut Vec<usize>| {
        if !reachable[c] {
            reachable[c] = true;
            queue.push(c);
        }
    };
    for f in prog.instance.facts() {
        seed(comp[index[&f.pred]], &mut reachable, &mut queue);
    }
    for rule in &prog.theory.rules {
        if rule.body.is_empty() {
            for h in &rule.head {
                seed(comp[index[&h.pred]], &mut reachable, &mut queue);
            }
        }
    }
    while let Some(c) = queue.pop() {
        for &d in &comp_succ[c] {
            if !reachable[d] {
                reachable[d] = true;
                queue.push(d);
            }
        }
    }

    for rule in &prog.theory.rules {
        let dead = rule
            .body
            .iter()
            .enumerate()
            .find(|(_, a)| !reachable[comp[index[&a.pred]]]);
        if let Some((i, atom)) = dead {
            let members: Vec<&str> = preds
                .iter()
                .enumerate()
                .filter(|&(j, _)| comp[j] == comp[index[&atom.pred]])
                .map(|(_, &p)| prog.voc.pred_name(p))
                .collect();
            out.push(
                Diagnostic::new(
                    "B005",
                    Severity::Warning,
                    format!(
                        "rule {} can never fire: `{}` is unreachable from the facts",
                        rule.describe(&prog.voc),
                        prog.voc.pred_name(atom.pred)
                    ),
                    rule.body_span(i).or_else(|| rule.span()),
                )
                .with_note(format!(
                    "its dependency component {{{}}} contains no fact predicate and \
                     is fed by none",
                    members.join(", ")
                )),
            );
        }
    }
}

/// B006: two rules equal up to variable renaming (atom order
/// sensitive). The later rule is flagged, pointing back at the first.
fn duplicate_rules(prog: &Program, out: &mut Vec<Diagnostic>) {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Key {
        Var(usize),
        Const(ConstId),
    }
    let canonical = |rule: &Rule| -> Vec<(bool, PredId, Vec<Key>)> {
        let mut renumber: BTreeMap<bddfc_core::VarId, usize> = BTreeMap::new();
        let mut shape = Vec::new();
        for (is_head, atom) in rule
            .body
            .iter()
            .map(|a| (false, a))
            .chain(rule.head.iter().map(|a| (true, a)))
        {
            let args = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => {
                        let next = renumber.len();
                        Key::Var(*renumber.entry(*v).or_insert(next))
                    }
                    Term::Const(c) => Key::Const(*c),
                })
                .collect();
            shape.push((is_head, atom.pred, args));
        }
        shape
    };

    let mut seen: BTreeMap<Vec<(bool, PredId, Vec<Key>)>, usize> = BTreeMap::new();
    for (ri, rule) in prog.theory.rules.iter().enumerate() {
        match seen.entry(canonical(rule)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(ri);
            }
            std::collections::btree_map::Entry::Occupied(e) => {
                let first = &prog.theory.rules[*e.get()];
                out.push(
                    Diagnostic::new(
                        "B006",
                        Severity::Warning,
                        format!(
                            "rule {} duplicates an earlier rule (up to variable renaming)",
                            rule.describe(&prog.voc)
                        ),
                        rule.span(),
                    )
                    .with_note(format!("first occurrence: {}", first.describe(&prog.voc))),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let prog = parse_program(src).unwrap();
        let mut ds = hygiene_lints(&prog);
        crate::diag::LintReport::sort(&mut ds);
        ds.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        assert!(codes("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). ?- E(X,Y).").is_empty());
    }

    #[test]
    fn singleton_variable_fires_but_not_for_underscore_or_existential() {
        let prog = parse_program("E(X,Y) -> exists Z . U(Y,Z). E(a,b). ?- U(X,Y).").unwrap();
        let ds = hygiene_lints(&prog);
        // X is a body singleton; Z (existential) and Y are not flagged.
        assert_eq!(ds.iter().filter(|d| d.code == "B002").count(), 1);
        assert!(ds[0].message.contains("`X`"), "{}", ds[0].message);
        assert!(codes("E(_X,Y) -> exists Z . U(Y,Z). E(a,b). ?- U(X,Y).").is_empty());
    }

    #[test]
    fn head_only_and_body_only_predicates() {
        let cs = codes("E(X,Y) -> U(X,Y). E(a,b).");
        assert!(cs.contains(&"B003"), "{cs:?}"); // U derived, never used
        let cs = codes("P(X), E(X,Y) -> E(Y,X). E(a,b). ?- E(X,Y).");
        assert!(cs.contains(&"B004"), "{cs:?}"); // P never populated
        assert!(cs.contains(&"B005"), "{cs:?}"); // so the rule is dead
    }

    #[test]
    fn unreachable_cycle_is_reported() {
        // U and V feed each other but nothing seeds them.
        let cs = codes(
            "U(X,Y) -> V(Y,X). V(X,Y) -> U(Y,X). E(a,b). ?- E(X,Y), U(X,Y), V(X,Y).",
        );
        assert_eq!(cs.iter().filter(|c| **c == "B005").count(), 2, "{cs:?}");
        // Once seeded by a fact, the same cycle is alive.
        let cs = codes("U(X,Y) -> V(Y,X). V(X,Y) -> U(Y,X). U(a,b). ?- U(X,Y), V(X,Y).");
        assert!(!cs.contains(&"B005"), "{cs:?}");
    }

    #[test]
    fn duplicate_rules_up_to_renaming() {
        let cs = codes(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(A,B), E(B,C) -> E(A,C).
             E(a,b). ?- E(X,Y).",
        );
        assert_eq!(cs.iter().filter(|c| **c == "B006").count(), 1, "{cs:?}");
        // Different join structure is not a duplicate.
        let cs = codes(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(X,Y), E(X,Z) -> E(Y,Z).
             E(a,b). ?- E(X,Y).",
        );
        assert!(!cs.contains(&"B006"), "{cs:?}");
    }

    #[test]
    fn unsafe_rule_fires_on_programmatic_theory() {
        use bddfc_core::{Atom, Instance, Rule, Term, Theory, Vocabulary};
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let x = voc.var("X");
        let theory = Theory::new(vec![Rule::new(vec![], vec![Atom::new(p, vec![Term::Var(x)])])]);
        let prog = Program {
            voc,
            theory,
            instance: Instance::new(),
            queries: Vec::new(),
        };
        let ds = hygiene_lints(&prog);
        assert!(ds.iter().any(|d| d.code == "B001" && d.severity == Severity::Error));
    }
}
