//! # bddfc-lint — a Datalog∃ program linter
//!
//! Static analysis over parsed [`bddfc_core::Program`]s, reporting
//! span-carrying, machine-readable diagnostics in the spirit of rustc's
//! lint architecture:
//!
//! * the diagnostic model — stable codes, severities, rendered text and
//!   a deterministic JSON form ([`diag`]);
//! * hygiene lints `B001..B006` — unsafe rules, singleton variables,
//!   head-only/body-only predicates, unreachable rules (via the
//!   predicate-dependency SCC condensation), duplicate rules
//!   ([`hygiene`]);
//! * class lints `B101..B105` — witness-producing reports of where the
//!   theory sits relative to the paper's syntactic classes: guarded
//!   (§5.6), sticky, weakly acyclic, the Theorem 3 fragment and binary
//!   signatures ([`classlints`]).
//!
//! The `bddfc-lint` binary drives all of this over files or the zoo
//! corpus (`--zoo`); parse failures surface as code `B000`:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | B000 | error    | source does not parse |
//!
//! The perf lints `B201..B205` of `bddfc_analyze` are folded into
//! [`lint_program`] as well, so the CLI reports every stable code;
//! `bddfc-lint --explain Bxxx` prints the long-form explanation from
//! the [`bddfc_core::diag::CODES`] registry.
//!
//! ## Determinism contract
//!
//! Diagnostics are a pure function of the input program: lints walk
//! rules, atoms and positions in declaration order, witnesses come from
//! the deterministic recognizers of [`bddfc_classes::witness`], and
//! [`LintReport`] fixes a total order. `bddfc-lint --json` output is
//! byte-identical at any `BDDFC_THREADS` setting.
//!
//! ```
//! let report = bddfc_lint::lint_source("chain", "E(X,Y) -> exists Z . E(Y,Z). E(a,b).");
//! assert!(report.diagnostics.iter().any(|d| d.code == "B103"));
//! ```

pub mod classlints;
pub mod diag;
pub mod hygiene;

pub use classlints::class_lints;
pub use diag::{reports_json, Diagnostic, LintReport, Severity};
pub use hygiene::hygiene_lints;

use bddfc_core::{parse_program, Program};

/// Runs every lint over an already-parsed program — hygiene, class and
/// the perf lints of `bddfc_analyze` — in canonical order.
pub fn lint_program(prog: &Program) -> Vec<Diagnostic> {
    let mut out = hygiene_lints(prog);
    out.extend(class_lints(prog));
    out.extend(bddfc_analyze::perflints::perf_lints(prog));
    LintReport::sort(&mut out);
    out
}

/// Parses `src` and lints it, reporting under the display name `file`.
/// A parse failure yields a single `B000` error diagnostic.
pub fn lint_source(file: &str, src: &str) -> LintReport {
    match parse_program(src) {
        Ok(prog) => LintReport::new(file, lint_program(&prog)),
        Err(e) => LintReport::new(
            file,
            vec![Diagnostic::new(
                "B000",
                Severity::Error,
                e.message.clone(),
                Some(bddfc_core::SrcSpan::new(
                    u32::try_from(e.line).unwrap_or(u32::MAX),
                    u32::try_from(e.col).unwrap_or(u32::MAX),
                    u32::try_from(e.line).unwrap_or(u32::MAX),
                    u32::try_from(e.col).unwrap_or(u32::MAX),
                )),
            )],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_becomes_b000() {
        let r = lint_source("bad", "E(a,b");
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].code, "B000");
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(r.diagnostics[0].span.is_some());
    }

    #[test]
    fn lint_program_is_sorted_and_deterministic() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).
                   E(X,Y), E(Y,Z) -> R(X,Z).
                   E(a,b). ?- R(X,Y).";
        let a = lint_source("t", src);
        let b = lint_source("t", src);
        assert_eq!(a, b);
        let positions: Vec<_> = a
            .diagnostics
            .iter()
            .map(|d| d.span.map_or((0, 0), |s| (s.line, s.col)))
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn json_document_shape() {
        let r = lint_source("t", "E(a,b).");
        let doc = reports_json(&[r]);
        assert!(doc.starts_with("{\"schema\":1,\"files\":[{\"file\":\"t\""), "{doc}");
        assert!(!doc.contains('\n'));
    }
}
