//! `bddfc-lint` — lint Datalog∃ programs.
//!
//! ```text
//! bddfc-lint FILE...                    # lint files, rustc-style output
//! bddfc-lint --zoo                      # lint the embedded zoo corpus
//! bddfc-lint FILE --json                # one-line deterministic JSON
//! bddfc-lint FILE --deny warning       # exit 1 on warnings or worse
//! ```
//!
//! The exit code is 0 when every diagnostic is below the `--deny` level
//! (default `error`), 1 otherwise, 2 on usage errors. JSON output is
//! byte-identical across runs and `BDDFC_THREADS` settings.

use bddfc_lint::{lint_source, reports_json, LintReport, Severity};
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    zoo: bool,
    json: bool,
    deny: Severity,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-lint [FILE]... [--zoo] [--json] [--deny <note|warning|error>]\n\
         \n\
         FILE...            Datalog∃ source files to lint\n\
         --zoo              also lint the embedded zoo corpus\n\
         --json             print one deterministic JSON document instead of text\n\
         --deny LEVEL       exit nonzero if any diagnostic is at or above LEVEL\n\
         \x20                  (default: error)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args { files: Vec::new(), zoo: false, json: false, deny: Severity::Error };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--zoo" => args.zoo = true,
            "--json" => args.json = true,
            "--deny" => {
                let level = it.next().unwrap_or_else(|| {
                    eprintln!("--deny needs a value");
                    usage()
                });
                args.deny = Severity::parse(&level).unwrap_or_else(|| {
                    eprintln!("unknown deny level {level:?}");
                    usage()
                });
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown argument: {flag}");
                usage()
            }
            file => args.files.push(file.to_owned()),
        }
    }
    if args.files.is_empty() && !args.zoo {
        eprintln!("no input: pass FILE arguments or --zoo");
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut reports: Vec<LintReport> = Vec::new();

    for path in &args.files {
        match std::fs::read_to_string(path) {
            Ok(src) => reports.push(lint_source(path, &src)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.zoo {
        for &(name, src) in bddfc_zoo::corpus() {
            reports.push(lint_source(&format!("zoo:{name}"), src));
        }
    }

    if args.json {
        println!("{}", reports_json(&reports));
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
    }

    let worst = reports.iter().filter_map(|r| r.max_severity()).max();
    match worst {
        Some(s) if s >= args.deny => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}
