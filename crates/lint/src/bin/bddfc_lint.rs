//! `bddfc-lint` — lint Datalog∃ programs.
//!
//! ```text
//! bddfc-lint FILE...                    # lint files, rustc-style output
//! bddfc-lint --zoo                      # lint the embedded zoo corpus
//! bddfc-lint FILE --json                # one-line deterministic JSON
//! bddfc-lint FILE --deny warning        # exit 1 on warnings or worse
//! bddfc-lint FILE --deny-prefix B00     # exit 1 on any B00x, any severity
//! bddfc-lint --explain B202             # long-form explanation of a code
//! ```
//!
//! The exit code is 0 when every diagnostic is below the `--deny` level
//! (default `error`) and no diagnostic matches a `--deny-prefix`, 1
//! otherwise, 2 on usage errors (including `--explain` of an unknown
//! code). JSON output is byte-identical across runs and `BDDFC_THREADS`
//! settings.

use bddfc_core::diag::code_info;
use bddfc_lint::{lint_source, reports_json, LintReport, Severity};
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    zoo: bool,
    json: bool,
    deny: Severity,
    deny_prefixes: Vec<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-lint [FILE]... [--zoo] [--json] [--deny <note|warning|error>]\n\
         \x20                [--deny-prefix PREFIX]... | --explain CODE\n\
         \n\
         FILE...            Datalog∃ source files to lint\n\
         --zoo              also lint the embedded zoo corpus\n\
         --json             print one deterministic JSON document instead of text\n\
         --deny LEVEL       exit nonzero if any diagnostic is at or above LEVEL\n\
         \x20                  (default: error)\n\
         --deny-prefix P    exit nonzero if any diagnostic's code starts with P,\n\
         \x20                  whatever its severity (repeatable; e.g. B00)\n\
         --explain CODE     print the long-form explanation of a stable code"
    );
    std::process::exit(2)
}

/// Prints the registry entry for `code`; exits 2 on an unknown code,
/// listing everything known.
fn explain(code: &str) -> ! {
    match code_info(code) {
        Some(info) => {
            println!("{}[{}]: {}", info.severity, info.code, info.summary);
            println!();
            println!("{}", info.explain);
            std::process::exit(0)
        }
        None => {
            eprintln!("unknown code {code:?}; known codes:");
            for c in bddfc_core::diag::CODES {
                eprintln!("  {}  {}", c.code, c.summary);
            }
            std::process::exit(2)
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        files: Vec::new(),
        zoo: false,
        json: false,
        deny: Severity::Error,
        deny_prefixes: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--zoo" => args.zoo = true,
            "--json" => args.json = true,
            "--deny" => {
                let level = it.next().unwrap_or_else(|| {
                    eprintln!("--deny needs a value");
                    usage()
                });
                args.deny = Severity::parse(&level).unwrap_or_else(|| {
                    eprintln!("unknown deny level {level:?}");
                    usage()
                });
            }
            "--deny-prefix" => {
                let p = it.next().unwrap_or_else(|| {
                    eprintln!("--deny-prefix needs a value");
                    usage()
                });
                args.deny_prefixes.push(p);
            }
            "--explain" => {
                let code = it.next().unwrap_or_else(|| {
                    eprintln!("--explain needs a code");
                    usage()
                });
                explain(&code)
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown argument: {flag}");
                usage()
            }
            file => args.files.push(file.to_owned()),
        }
    }
    if args.files.is_empty() && !args.zoo {
        eprintln!("no input: pass FILE arguments, --zoo, or --explain CODE");
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut reports: Vec<LintReport> = Vec::new();

    for path in &args.files {
        match std::fs::read_to_string(path) {
            Ok(src) => reports.push(lint_source(path, &src)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.zoo {
        for &(name, src) in bddfc_zoo::corpus() {
            reports.push(lint_source(&format!("zoo:{name}"), src));
        }
    }

    if args.json {
        println!("{}", reports_json(&reports));
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
    }

    let worst = reports.iter().filter_map(|r| r.max_severity()).max();
    if matches!(worst, Some(s) if s >= args.deny) {
        return ExitCode::FAILURE;
    }
    let prefix_hit = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .any(|d| args.deny_prefixes.iter().any(|p| d.code.starts_with(p.as_str())));
    if prefix_hit {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
