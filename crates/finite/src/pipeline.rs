//! The Theorem 2 pipeline: certified finite countermodels for binary BDD
//! theories.
//!
//! Given `T₀`, `D` and a query `Q` with `Chase(D,T₀) ⊭ Q`, the pipeline
//! constructs a finite `M ⊨ D, T₀` with `M ⊭ Q` by walking the paper's
//! proof:
//!
//! 1. hide the query: `T = T₀ ∪ {Q ⇒ ∃z F(y,z)}` (♠4);
//! 2. normalize heads into (♠5) form;
//! 3. compute κ — the maximal variable count of any rule-body rewriting
//!    (Section 3.3); failure means the theory is not usably BDD;
//! 4. chase a finite prefix and extract the skeleton `S(D,T)`
//!    (Definition 12);
//! 5. color `S` naturally (Definition 14) and search for `n` such that
//!    the quotient `Mₙ(S̄)` preserves positive κ-types (Definition 8) —
//!    the Main Lemma guarantees such an `n` exists;
//! 6. chase `Mₙ(S̄)`, which by Lemma 5 only saturates datalog rules and
//!    creates no elements;
//! 7. **certify** the result independently (`⊨ D`, `⊨ T₀`, `⊭ Q`).
//!
//! ## The finite-prefix substitution
//!
//! The paper quotients the *infinite* chase. We quotient a finite prefix
//! of depth `L`, with one twist: positive `n`-types only depend on
//! radius-`n` neighbourhoods (they are decided by connected canonical
//! queries — see `bddfc-types`), so elements created at depth
//! `≤ L − max(n, κ)` have exactly their infinite-chase types. The quotient
//! projects only facts among these *safe* elements; rim elements
//! contribute nothing. Any residual artifact is caught by step 7, which
//! triggers a retry with a deeper prefix — soundness never depends on the
//! heuristic.

use crate::certify::{certify_countermodel, CertFailure};
use crate::skeleton::skeleton;
use crate::transform::{hide_query, normalize_spade5};
use bddfc_chase::{chase, ChaseConfig, ChaseStatus};
use bddfc_core::{
    hom, ConjunctiveQuery, ConstId, Instance, PredId, Theory, Vocabulary,
};
use bddfc_rewrite::{kappa, RewriteConfig};
use bddfc_types::{natural_coloring, Quotient, TypeAnalyzer};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// Budgets and parameters for the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct FcConfig {
    /// Rewriting budget for the κ computation.
    pub rewrite: RewriteConfig,
    /// Initial chase prefix depth `L`.
    pub chase_depth: u32,
    /// Maximal prefix depth before giving up.
    pub max_chase_depth: u32,
    /// Fact budget per chase prefix.
    pub chase_facts: usize,
    /// Maximal quotient parameter `n` tried per prefix.
    pub n_max: usize,
    /// Round budget for the final saturating chase of the quotient.
    pub final_rounds: u32,
    /// Skeleton size cap: prefixes whose skeleton exceeds this are not
    /// quotiented (the partition cost would dominate); the run gives up
    /// instead of hanging.
    pub max_skeleton: usize,
}

impl Default for FcConfig {
    fn default() -> Self {
        FcConfig {
            rewrite: RewriteConfig::default(),
            chase_depth: 8,
            max_chase_depth: 64,
            chase_facts: 200_000,
            n_max: 4,
            final_rounds: 64,
            max_skeleton: 9_000,
        }
    }
}

/// A certified finite countermodel, with provenance.
#[derive(Clone, Debug)]
pub struct Certified {
    /// The model (over the original signature, color and auxiliary
    /// predicates removed).
    pub model: Instance,
    /// κ used for conservativity (Section 3.3).
    pub kappa: usize,
    /// The quotient parameter `n` that worked.
    pub n: usize,
    /// The chase prefix depth used.
    pub chase_depth: u32,
    /// Did Lemma 5 hold exactly (final chase created no new elements)?
    pub lemma5_no_new_elements: bool,
    /// Domain size of the model.
    pub model_size: usize,
}

/// Outcome of a pipeline run.
#[derive(Clone, Debug)]
pub enum FcOutcome {
    /// A certified finite countermodel.
    Countermodel(Box<Certified>),
    /// The query is certainly entailed — no countermodel exists at all.
    /// Reports the chase round at which the query became true.
    Entailed {
        /// Chase depth at which the forbidden atom appeared.
        depth: u32,
    },
    /// The budgets were exhausted without a decision.
    Inconclusive(String),
}

impl FcOutcome {
    /// The certified model, if any.
    pub fn model(&self) -> Option<&Certified> {
        match self {
            FcOutcome::Countermodel(c) => Some(c),
            _ => None,
        }
    }
}

/// Element creation depths: the round at which each element first appears.
fn element_depths(res: &bddfc_chase::ChaseResult) -> FxHashMap<ConstId, u32> {
    let mut depth: FxHashMap<ConstId, u32> = FxHashMap::default();
    for (idx, fact) in res.instance.facts().iter().enumerate() {
        let d = res.fact_depth(idx);
        for &c in &fact.args {
            depth
                .entry(c)
                .and_modify(|cur| *cur = (*cur).min(d))
                .or_insert(d);
        }
    }
    depth
}

/// Runs the full Theorem 2 pipeline.
pub fn finite_countermodel(
    db: &Instance,
    theory0: &Theory,
    query: &ConjunctiveQuery,
    voc: &mut Vocabulary,
    config: FcConfig,
) -> FcOutcome {
    // Step 0: the query may already hold in D.
    if hom::satisfies_cq(db, query) {
        return FcOutcome::Entailed { depth: 0 };
    }

    // Steps 1–2: hide the query, normalize heads.
    let hidden = hide_query(theory0, query, voc);
    let norm = match normalize_spade5(&hidden.theory, voc) {
        Ok(t) => t,
        Err(e) => return FcOutcome::Inconclusive(format!("normalization failed: {e}")),
    };
    let forbidden = hidden.forbidden;

    // Step 3: κ.
    let Some(kap) = kappa(&norm, voc, config.rewrite) else {
        return FcOutcome::Inconclusive(
            "κ computation failed: some rule-body rewriting did not saturate (theory not \
             verifiably BDD within budget)"
                .into(),
        );
    };
    let m = kap.max(2);

    let color_free_preds: FxHashSet<PredId> = norm.preds().into_iter().collect();

    let mut l = config.chase_depth;
    let mut last_reason = String::from("no prefix attempted");
    while l <= config.max_chase_depth {
        // Step 4: chase prefix and skeleton.
        let res = chase(
            db,
            &norm,
            voc,
            ChaseConfig {
                max_rounds: l,
                max_facts: config.chase_facts,
                ..Default::default()
            },
        );
        if !res.instance.facts_with_pred(forbidden).is_empty() {
            let d = res
                .instance
                .facts_with_pred(forbidden)
                .iter()
                .map(|&i| res.fact_depth(i))
                .min()
                .unwrap_or(res.rounds);
            // The forbidden atom appears one round after the query became
            // true (the hidden (♠4) rule fires on it).
            return FcOutcome::Entailed { depth: d.saturating_sub(1) };
        }
        if res.status == ChaseStatus::Fixpoint {
            // The chase itself is finite and F-free: it is the model.
            let model = res.instance.restrict_to_preds(&theory0.preds());
            let failures = certify_countermodel(&res.instance, db, theory0, query, voc);
            if failures.is_empty() {
                return FcOutcome::Countermodel(Box::new(Certified {
                    model_size: model.domain_size(),
                    model,
                    kappa: kap,
                    n: 0,
                    chase_depth: res.rounds,
                    lemma5_no_new_elements: true,
                }));
            }
            return FcOutcome::Inconclusive(format!(
                "terminating chase failed certification: {:?}",
                failures
            ));
        }

        let skel = skeleton(&res.instance, db, &norm);
        if skel.domain_size() > config.max_skeleton {
            return FcOutcome::Inconclusive(format!(
                "skeleton prefix too large to quotient ({} elements > cap {}); last: {last_reason}",
                skel.domain_size(),
                config.max_skeleton
            ));
        }
        let depths = element_depths(&res);

        // Step 5: color and search n.
        let coloring = natural_coloring(&skel, voc, m);
        let colored = coloring.apply(&skel);

        for n in m..=config.n_max {
            let margin = (n.max(m)) as u32;
            if margin >= l {
                break;
            }
            let safe: FxHashSet<ConstId> = skel
                .domain()
                .filter(|c| depths.get(c).copied().unwrap_or(0) + margin <= l)
                .collect();
            if !db.domain().all(|c| safe.contains(&c)) {
                last_reason = "database elements not safe (prefix too shallow)".into();
                continue;
            }
            let partition = {
                let analyzer = TypeAnalyzer::new(&colored, voc, n);
                analyzer.partition()
            };
            let colored_safe = colored.restrict_to_elements(&safe);
            let quotient = Quotient::new(&colored_safe, partition, voc);
            let m_sigma = quotient.instance.restrict_to_preds(&color_free_preds);

            // Conservativity (♠2) on safe elements: quotient types map back.
            let analyzer_m = TypeAnalyzer::new(&m_sigma, voc, m);
            let mut conservative = true;
            for &e in &safe {
                let Some(qe) = quotient.try_project(e) else {
                    continue;
                };
                if !m_sigma.in_domain(qe) {
                    continue;
                }
                if !analyzer_m.ptp_included_in(qe, &skel, e) {
                    conservative = false;
                    break;
                }
            }
            if !conservative {
                last_reason = format!("n = {n} not conservative at prefix depth {l}");
                continue;
            }

            // Step 6: saturate the quotient with the full normalized theory.
            // Divergence here is detected by the round budget; a small
            // fact budget keeps failed attempts cheap.
            let final_res = chase(
                &m_sigma,
                &norm,
                voc,
                ChaseConfig {
                    max_rounds: config.final_rounds,
                    max_facts: (config.chase_facts / 4).max(10_000),
                    ..Default::default()
                },
            );
            if final_res.status != ChaseStatus::Fixpoint {
                last_reason = format!("final chase diverged for n = {n}, depth {l}");
                continue;
            }
            if !final_res.instance.facts_with_pred(forbidden).is_empty() {
                last_reason = format!("forbidden atom re-derived for n = {n}, depth {l}");
                continue;
            }

            // Step 7: certify against the *original* theory and query.
            let failures: Vec<CertFailure> =
                certify_countermodel(&final_res.instance, db, theory0, query, voc);
            if failures.is_empty() {
                let lemma5 =
                    final_res.instance.domain_size() == m_sigma.domain_size();
                let model = final_res.instance.restrict_to_preds(&theory0.preds());
                return FcOutcome::Countermodel(Box::new(Certified {
                    model_size: final_res.instance.domain_size(),
                    model,
                    kappa: kap,
                    n,
                    chase_depth: l,
                    lemma5_no_new_elements: lemma5,
                }));
            }
            last_reason = format!(
                "certification failed for n = {n}, depth {l}: {}",
                failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            );
        }
        // Grow gently: partition cost is superlinear in prefix size.
        l += (l / 2).max(4);
    }
    FcOutcome::Inconclusive(last_reason)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_program, parse_query};

    fn run(src: &str, query: &str, config: FcConfig) -> (FcOutcome, Vocabulary, Instance, Theory, ConjunctiveQuery) {
        let prog = parse_program(src).unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query(query, &mut voc).unwrap();
        let out = finite_countermodel(&prog.instance, &prog.theory, &q, &mut voc, config);
        (out, voc, prog.instance, prog.theory, q)
    }

    #[test]
    fn successor_rule_gets_certified_countermodel() {
        // The simplest diverging-chase BDD theory: E(x,y) → ∃z E(y,z).
        // Chase(E(a,b)) is an infinite chain without loops, so E(x,x) is
        // not entailed; the pipeline must find a finite loop-free model…
        // wait — every finite model of the successor rule contains a
        // cycle, but not necessarily a *self-loop*; E(X,X) must stay false.
        let (out, voc, db, theory, q) = run(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,b).",
            "E(X,X)",
            FcConfig::default(),
        );
        let cert = out.model().unwrap_or_else(|| panic!("expected countermodel: {out:?}"));
        assert!(cert.model_size >= 2);
        let failures = certify_countermodel(&cert.model, &db, &theory, &q, &voc);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn entailed_query_is_detected() {
        let (out, _, _, _, _) = run(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,b).",
            "E(X1,X2), E(X2,X3), E(X3,X4)",
            FcConfig::default(),
        );
        match out {
            FcOutcome::Entailed { depth } => assert_eq!(depth, 2),
            other => panic!("expected Entailed, got {other:?}"),
        }
    }

    #[test]
    fn terminating_chase_is_its_own_model() {
        let (out, _, _, _, _) = run(
            "E(X,Y) -> exists Z . E(Y,Z). E(a,a).",
            "U(W)",
            FcConfig::default(),
        );
        let cert = out.model().expect("fixpoint fast path");
        assert_eq!(cert.model_size, 1);
        assert!(cert.lemma5_no_new_elements);
    }

    #[test]
    fn example7_theory_countermodel() {
        // Example 7/8: the full theory with the datalog rule deriving R;
        // the query asks for an R-edge between *distinct-typed* ends via
        // a fresh marker that never appears: use F0(x,y) absent from the
        // theory. Simplest meaningful check: R(x,y) with an E-edge apart —
        // the chase has only R(e,e) atoms, no query R(x,y),E(x,y) match.
        let (out, voc, db, theory, q) = run(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(X2,Y) -> R(X,X2).
             E(a,b).",
            "R(X,Y), E(X,Y)",
            FcConfig::default(),
        );
        let cert = out
            .model()
            .unwrap_or_else(|| panic!("expected countermodel: {out:?}"));
        let failures = certify_countermodel(&cert.model, &db, &theory, &q, &voc);
        assert!(failures.is_empty(), "{failures:?}");
        // The model saturates R over the loop classes: Lemma 5 may add
        // facts but never elements.
        assert!(cert.model_size < 64);
    }

    #[test]
    fn two_relation_tree_theory() {
        // Example 9's binary-tree theory: F/G successors everywhere.
        let (out, voc, db, theory, q) = run(
            "F(X,Y) -> exists Z . F(Y,Z).
             F(X,Y) -> exists Z . G(Y,Z).
             G(X,Y) -> exists Z . F(Y,Z).
             G(X,Y) -> exists Z . G(Y,Z).
             F(a,b).",
            "F(X,X)",
            FcConfig { n_max: 6, ..FcConfig::default() },
        );
        let cert = out
            .model()
            .unwrap_or_else(|| panic!("expected countermodel: {out:?}"));
        let failures = certify_countermodel(&cert.model, &db, &theory, &q, &voc);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn non_bdd_theory_is_inconclusive() {
        // Transitivity is not BDD; κ must fail.
        let (out, _, _, _, _) = run(
            "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b).",
            "E(b,a)",
            FcConfig {
                rewrite: RewriteConfig { max_disjuncts: 15, max_steps: 3000, max_piece: 2 },
                ..FcConfig::default()
            },
        );
        match out {
            FcOutcome::Inconclusive(reason) => {
                assert!(reason.contains("κ"), "{reason}")
            }
            other => panic!("expected Inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn query_already_true_in_db() {
        let (out, _, _, _, _) = run("E(a,a).", "E(X,X)", FcConfig::default());
        assert!(matches!(out, FcOutcome::Entailed { depth: 0 }));
    }
}
