//! The Section 3.1 pre-processing transformations.
//!
//! * **Query hiding** (♠4): enrich the theory with
//!   `Q(x̄, y) ⇒ ∃z F(y, z)` for a fresh predicate `F`; a finite model of
//!   `T₀, D, ¬Q` exists iff a finite F-free model of the enriched theory
//!   exists (Theorem 2's reduction).
//! * **Head normalization** (♠5): rewrite every existential TGD so that
//!   its head is a single binary atom `∃z R(y, z)` with the frontier value
//!   first and the unique fresh witness second, and so that no
//!   tuple-generating predicate (TGP) occurs in a datalog head. The paper
//!   leaves this as an exercise with a hint (primed predicates `R'`,
//!   `R''`); we implement the general binary case.

use bddfc_core::{Atom, ConjunctiveQuery, PredId, Rule, Term, Theory, VarId, Vocabulary};

/// Errors from the normalization transforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// A TGD head has arity above 2: the binary pipeline does not apply
    /// (use the class toolbox reductions first).
    HeadNotBinary(String),
    /// A rule is multi-head; split it first (Section 5.3).
    MultiHead(String),
    /// A TGD whose head is entirely existential needs a frontier variable
    /// in the body to anchor the auxiliary chain, but the body is ground.
    NoFrontierAnchor(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::HeadNotBinary(r) => write!(f, "TGD head not ≤ binary: {r}"),
            TransformError::MultiHead(r) => write!(f, "rule is multi-head: {r}"),
            TransformError::NoFrontierAnchor(r) => {
                write!(f, "no frontier variable to anchor auxiliary chain: {r}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Result of hiding a query inside a theory (♠4).
#[derive(Clone, Debug)]
pub struct HiddenQuery {
    /// The enriched theory `T = T₀ ∪ {Q ⇒ ∃z F(y,z)}`.
    pub theory: Theory,
    /// The fresh forbidden predicate `F`.
    pub forbidden: PredId,
}

/// Applies (♠4): adds `Q(x̄,y) ⇒ ∃z F(y,z)` with fresh `F`. The
/// distinguished `y` is the least variable of the query (any choice
/// works — the rule fires iff `Q` holds).
pub fn hide_query(
    theory: &Theory,
    query: &ConjunctiveQuery,
    voc: &mut Vocabulary,
) -> HiddenQuery {
    let forbidden = voc.fresh_pred("F_hide", 2);
    let mut vars: Vec<VarId> = query.variables().into_iter().collect();
    vars.sort_unstable();
    let z = voc.fresh_var("zF");
    let head = match vars.first() {
        Some(&y) => Atom::new(forbidden, vec![Term::Var(y), Term::Var(z)]),
        None => {
            // Variable-free query: anchor the head on one of its
            // constants (a ground non-empty query mentions at least one).
            let mut consts: Vec<_> = query.constants().into_iter().collect();
            consts.sort_unstable();
            let c = consts
                .first()
                .copied()
                .expect("non-empty ground query mentions a constant");
            Atom::new(forbidden, vec![Term::Const(c), Term::Var(z)])
        }
    };
    let mut rules = theory.rules.clone();
    rules.push(Rule::single(query.atoms.clone(), head));
    HiddenQuery { theory: Theory::new(rules), forbidden }
}

/// Picks the least frontier variable of a rule as an anchor.
fn frontier_anchor(rule: &Rule) -> Option<VarId> {
    let mut f: Vec<VarId> = rule.frontier().into_iter().collect();
    f.sort_unstable();
    f.first().copied().or_else(|| {
        // No head variable comes from the body; any body variable anchors.
        let mut b: Vec<VarId> = rule.body_vars().into_iter().collect();
        b.sort_unstable();
        b.first().copied()
    })
}

/// Applies (♠5) to a single-head theory over a signature with TGD heads of
/// arity ≤ 2. Returns an equivalent theory (conservative extension over
/// fresh primed predicates) in which:
///
/// * every existential TGD head is `∃z R⁺(t, z)` — binary, frontier term
///   first, a single fresh witness second;
/// * TGPs occur in no datalog head (each `R⁺` is fresh, bridged back to
///   the original predicate by datalog rules).
pub fn normalize_spade5(theory: &Theory, voc: &mut Vocabulary) -> Result<Theory, TransformError> {
    // A TGD already *conforms* when its head is binary with a
    // frontier-or-constant first argument and a single existential witness
    // second. Conforming TGDs may keep their head predicate as the TGP —
    // unless that predicate is "dirty": it also heads a datalog rule, or a
    // non-conforming TGD (whose rerouting will bridge back through a
    // datalog rule). Leaving conforming rules untouched preserves the
    // restricted chase's witness reuse (and hence its termination
    // behaviour) instead of gratuitously renaming every TGP.
    let conforms = |rule: &Rule| -> bool {
        let head = &rule.head[0];
        if head.args.len() != 2 {
            return false;
        }
        let ex = rule.existential_vars();
        let first_ok = match head.args[0] {
            Term::Var(v) => !ex.contains(&v),
            Term::Const(_) => true,
        };
        let second_ok = matches!(head.args[1], Term::Var(v) if ex.contains(&v));
        first_ok && second_ok && ex.len() == 1
    };
    let mut dirty: bddfc_core::fxhash::FxHashSet<PredId> = bddfc_core::fxhash::FxHashSet::default();
    for rule in &theory.rules {
        if !rule.is_single_head() {
            return Err(TransformError::MultiHead(format!("{:?}", rule.head)));
        }
        if rule.is_datalog() || !conforms(rule) {
            dirty.extend(rule.head.iter().map(|a| a.pred));
        }
    }

    let mut out: Vec<Rule> = Vec::new();
    for rule in &theory.rules {
        if rule.is_datalog() {
            out.push(rule.clone());
            continue;
        }
        if conforms(rule) && !dirty.contains(&rule.head[0].pred) {
            out.push(rule.clone());
            continue;
        }
        let head = rule.head[0].clone();
        if head.args.len() > 2 {
            return Err(TransformError::HeadNotBinary(format!("arity {}", head.args.len())));
        }
        let ex = rule.existential_vars();
        let fresh_x = voc.fresh_var("nx");
        let fresh_y = voc.fresh_var("ny");
        match head.args.as_slice() {
            // ∃z R(t, z) with t from the body: already close; route through
            // a fresh primed predicate so R never heads a TGD directly.
            [t, Term::Var(z)] if ex.contains(z) && !matches!(t, Term::Var(v) if ex.contains(v)) => {
                let rp = voc.fresh_pred(&format!("{}_fw", voc.pred_name(head.pred)), 2);
                out.push(Rule::single(
                    rule.body.clone(),
                    Atom::new(rp, vec![*t, Term::Var(*z)]),
                ));
                out.push(Rule::single(
                    vec![Atom::new(rp, vec![Term::Var(fresh_x), Term::Var(fresh_y)])],
                    Atom::new(head.pred, vec![Term::Var(fresh_x), Term::Var(fresh_y)]),
                ));
            }
            // ∃z R(z, t): witness first — flip through R''.
            [Term::Var(z), t] if ex.contains(z) && !matches!(t, Term::Var(v) if ex.contains(v)) => {
                let rp = voc.fresh_pred(&format!("{}_bw", voc.pred_name(head.pred)), 2);
                out.push(Rule::single(
                    rule.body.clone(),
                    Atom::new(rp, vec![*t, Term::Var(*z)]),
                ));
                out.push(Rule::single(
                    vec![Atom::new(rp, vec![Term::Var(fresh_x), Term::Var(fresh_y)])],
                    Atom::new(head.pred, vec![Term::Var(fresh_y), Term::Var(fresh_x)]),
                ));
            }
            // ∃z R(z, z): one witness used twice.
            [Term::Var(z1), Term::Var(z2)] if z1 == z2 && ex.contains(z1) => {
                let anchor = frontier_anchor(rule)
                    .ok_or_else(|| TransformError::NoFrontierAnchor(format!("{:?}", head)))?;
                let rp = voc.fresh_pred(&format!("{}_dg", voc.pred_name(head.pred)), 2);
                out.push(Rule::single(
                    rule.body.clone(),
                    Atom::new(rp, vec![Term::Var(anchor), Term::Var(*z1)]),
                ));
                out.push(Rule::single(
                    vec![Atom::new(rp, vec![Term::Var(fresh_x), Term::Var(fresh_y)])],
                    Atom::new(head.pred, vec![Term::Var(fresh_y), Term::Var(fresh_y)]),
                ));
            }
            // ∃z₁ z₂ R(z₁, z₂): two fresh witnesses — chain two TGDs
            // (the Section 5.1 splitting).
            [Term::Var(z1), Term::Var(z2)] if ex.contains(z1) && ex.contains(z2) => {
                let anchor = frontier_anchor(rule)
                    .ok_or_else(|| TransformError::NoFrontierAnchor(format!("{:?}", head)))?;
                let w1 = voc.fresh_pred(&format!("{}_w1", voc.pred_name(head.pred)), 2);
                let w2 = voc.fresh_pred(&format!("{}_w2", voc.pred_name(head.pred)), 2);
                out.push(Rule::single(
                    rule.body.clone(),
                    Atom::new(w1, vec![Term::Var(anchor), Term::Var(*z1)]),
                ));
                out.push(Rule::single(
                    vec![Atom::new(w1, vec![Term::Var(fresh_x), Term::Var(fresh_y)])],
                    Atom::new(w2, vec![Term::Var(fresh_y), Term::Var(voc.fresh_var("nz"))]),
                ));
                let (a, b) = (voc.fresh_var("na"), voc.fresh_var("nb"));
                out.push(Rule::single(
                    vec![Atom::new(w2, vec![Term::Var(a), Term::Var(b)])],
                    Atom::new(head.pred, vec![Term::Var(a), Term::Var(b)]),
                ));
            }
            // ∃z U(z): unary head with existential witness.
            [Term::Var(z)] if ex.contains(z) => {
                let anchor = frontier_anchor(rule)
                    .ok_or_else(|| TransformError::NoFrontierAnchor(format!("{:?}", head)))?;
                let rp = voc.fresh_pred(&format!("{}_un", voc.pred_name(head.pred)), 2);
                out.push(Rule::single(
                    rule.body.clone(),
                    Atom::new(rp, vec![Term::Var(anchor), Term::Var(*z)]),
                ));
                out.push(Rule::single(
                    vec![Atom::new(rp, vec![Term::Var(fresh_x), Term::Var(fresh_y)])],
                    Atom::new(head.pred, vec![Term::Var(fresh_y)]),
                ));
            }
            _ => {
                // Existential rule whose head pattern did not match any
                // case above (e.g. stray shapes with constants); reject
                // loudly rather than mis-normalize.
                return Err(TransformError::HeadNotBinary(format!("{:?}", head)));
            }
        }
    }
    let normalized = Theory::new(out);
    debug_assert!(normalized.satisfies_spade5());
    Ok(normalized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_chase::{certain_cq, ChaseConfig};
    use bddfc_core::{parse_into, parse_program, parse_query};

    #[test]
    fn hide_query_adds_one_rule() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z).").unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("E(X,X)", &mut voc).unwrap();
        let hidden = hide_query(&prog.theory, &q, &mut voc);
        assert_eq!(hidden.theory.len(), 2);
        assert_eq!(voc.arity(hidden.forbidden), 2);
    }

    #[test]
    fn hidden_query_rule_fires_iff_query_holds() {
        let prog = parse_program("E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("E(X,X)", &mut voc).unwrap();
        let hidden = hide_query(&Theory::default(), &q, &mut voc);
        let res = bddfc_chase::chase(
            &prog.instance,
            &hidden.theory,
            &mut voc,
            ChaseConfig::default(),
        );
        assert!(res.is_fixpoint());
        assert_eq!(res.instance.facts_with_pred(hidden.forbidden).len(), 1);
    }

    #[test]
    fn normalize_passes_spade5() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y) -> exists Z . E(Z,Y).
             P(X) -> exists Z . U(Z).
             E(X,Y), E(Y,Z) -> E(X,Z).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        assert!(!prog.theory.satisfies_spade5()); // E also in datalog head
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        assert!(norm.satisfies_spade5());
    }

    #[test]
    fn normalization_preserves_certain_answers() {
        let src = "
            E(X,Y) -> exists Z . E(Y,Z).
            E(X,Y) -> exists Z . F(Z,Y).
            F(X,Y), E(Y,Z) -> G(X,Z).
            E(a,b).
        ";
        let prog = parse_program(src).unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        for q_src in [
            "E(X1,X2), E(X2,X3)",
            "F(W,b)",
            "G(X,Y)",
            "G(X,X)",
            "F(X,X)",
        ] {
            let q = parse_query(q_src, &mut voc).unwrap();
            let orig = certain_cq(
                &prog.instance,
                &prog.theory,
                &mut voc.clone(),
                &q,
                ChaseConfig::rounds(12),
            );
            let new = certain_cq(
                &prog.instance,
                &norm,
                &mut voc.clone(),
                &q,
                ChaseConfig::rounds(24),
            );
            // Compare decided-true vs decided-true; depths may shift by the
            // auxiliary hops.
            assert_eq!(orig.is_true(), new.is_true(), "query {q_src}");
        }
    }

    #[test]
    fn double_existential_head_is_chained() {
        let prog = parse_program("P(X) -> exists Z1, Z2 . R(Z1,Z2). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        assert!(norm.satisfies_spade5());
        let res = bddfc_chase::chase(&prog.instance, &norm, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let r = voc.find_pred("R").unwrap();
        assert_eq!(res.instance.facts_with_pred(r).len(), 1);
        // The two witnesses are distinct fresh nulls.
        let fact = res.instance.fact(res.instance.facts_with_pred(r)[0]);
        assert_ne!(fact.args[0], fact.args[1]);
    }

    #[test]
    fn diagonal_existential_head() {
        let prog = parse_program("P(X) -> exists Z . R(Z,Z). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = bddfc_chase::chase(&prog.instance, &norm, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let r = voc.find_pred("R").unwrap();
        let fact = res.instance.fact(res.instance.facts_with_pred(r)[0]);
        assert_eq!(fact.args[0], fact.args[1]);
    }

    #[test]
    fn unary_existential_head() {
        let prog = parse_program("P(X) -> exists Z . U(Z). P(a).").unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = bddfc_chase::chase(&prog.instance, &norm, &mut voc, ChaseConfig::default());
        assert!(res.is_fixpoint());
        let u = voc.find_pred("U").unwrap();
        assert_eq!(res.instance.facts_with_pred(u).len(), 1);
    }

    #[test]
    fn ground_body_without_frontier_is_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("P(a) -> exists Z . U(Z).", &mut voc).unwrap();
        assert!(matches!(
            normalize_spade5(&theory, &mut voc),
            Err(TransformError::NoFrontierAnchor(_))
        ));
    }

    #[test]
    fn ternary_head_is_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("P(X) -> exists Z . R(X,X,Z).", &mut voc).unwrap();
        assert!(matches!(
            normalize_spade5(&theory, &mut voc),
            Err(TransformError::HeadNotBinary(_))
        ));
    }

    #[test]
    fn multi_head_is_rejected() {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into("P(X) -> E(X,Z), U(Z).", &mut voc).unwrap();
        assert!(matches!(
            normalize_spade5(&theory, &mut voc),
            Err(TransformError::MultiHead(_))
        ));
    }
}
