//! # bddfc-finite — the Theorem 2 pipeline
//!
//! Turns the paper's existence proof into an algorithm producing
//! *certified* finite countermodels:
//!
//! * query hiding (♠4) and head normalization (♠5) ([`transform`]);
//! * the skeleton `S(D,T)` with Lemma 3 validation ([`mod@skeleton`]);
//! * Very Treelike DAGs, Definition 11 ([`vtdag`]);
//! * the end-to-end pipeline with the finite-prefix substitution
//!   ([`pipeline`]);
//! * the independent certifier ([`certify`]).

#![warn(missing_docs)]

pub mod certify;
pub mod pipeline;
pub mod skeleton;
pub mod transform;
pub mod vtdag;

pub use certify::{certify_countermodel, CertFailure};
pub use pipeline::{finite_countermodel, Certified, FcConfig, FcOutcome};
pub use skeleton::{analyze_skeleton, skeleton, skeleton_flesh_preds, SkeletonReport};
pub use transform::{hide_query, normalize_spade5, HiddenQuery, TransformError};
pub use vtdag::{is_vtdag, vtdag_violations, VtdagViolation};
