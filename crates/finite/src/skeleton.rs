//! The skeleton `S(D, T)` (Definition 12) and its structure (Lemma 3).
//!
//! The skeleton of a chase is the substructure consisting of all elements,
//! the atoms of `D`, and the atoms of the tuple-generating predicates
//! (TGPs). Its atoms are the *skeleton atoms*; everything else in the
//! chase (derived by datalog rules) is *flesh*. For theories in (♠5)
//! form the skeleton's non-constant part is a forest of bounded degree —
//! simple enough to be ptp-conservative, yet rich enough to regenerate the
//! whole chase by datalog saturation alone (Lemma 4).

use bddfc_core::{ConstId, Instance, PredId, Theory, Vocabulary};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// Extracts `S(D,T)`: the atoms of `db` plus all TGP atoms of `chased`.
pub fn skeleton(chased: &Instance, db: &Instance, theory: &Theory) -> Instance {
    let tgps = theory.tgps();
    let mut out = Instance::new();
    for fact in db.facts() {
        out.insert(fact.clone());
    }
    for fact in chased.facts() {
        if tgps.contains(&fact.pred) {
            out.insert(fact.clone());
        }
    }
    out
}

/// Structural report on a skeleton, per Lemma 3.
#[derive(Clone, Debug, Default)]
pub struct SkeletonReport {
    /// (i) `S_non` is acyclic.
    pub acyclic: bool,
    /// (ii) every non-constant element has in-degree ≤ 1 among skeleton
    /// atoms restricted to non-constants.
    pub in_degree_le_1: bool,
    /// (iv) the maximal degree observed among non-constant elements.
    pub max_degree: usize,
    /// Number of non-constant elements.
    pub non_constant_elements: usize,
}

impl SkeletonReport {
    /// Does the skeleton have the forest shape Lemma 3 promises?
    pub fn is_forest(&self) -> bool {
        self.acyclic && self.in_degree_le_1
    }
}

/// Validates the Lemma 3 structure of a skeleton: the restriction to
/// non-constant elements must be a forest (acyclic, in-degree ≤ 1) of
/// degree bounded by `|Σ| + 1`.
pub fn analyze_skeleton(skel: &Instance, voc: &Vocabulary) -> SkeletonReport {
    let non: FxHashSet<ConstId> = skel.domain().filter(|&c| voc.is_null(c)).collect();
    let mut in_deg: FxHashMap<ConstId, usize> = FxHashMap::default();
    let mut out_edges: FxHashMap<ConstId, Vec<ConstId>> = FxHashMap::default();
    let mut degree: FxHashMap<ConstId, usize> = FxHashMap::default();
    for fact in skel.facts() {
        if fact.args.len() != 2 {
            continue;
        }
        let (a, b) = (fact.args[0], fact.args[1]);
        if non.contains(&a) {
            *degree.entry(a).or_default() += 1;
        }
        if non.contains(&b) && (b != a || !non.contains(&a)) {
            *degree.entry(b).or_default() += 1;
        }
        if non.contains(&a) && non.contains(&b) {
            *in_deg.entry(b).or_default() += 1;
            out_edges.entry(a).or_default().push(b);
        }
    }
    let in_degree_le_1 = in_deg.values().all(|&d| d <= 1);

    // Cycle detection on the non-constant digraph (iterative DFS).
    let mut color: FxHashMap<ConstId, u8> = FxHashMap::default(); // 0 new, 1 open, 2 done
    let mut acyclic = true;
    for &start in &non {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let succs = out_edges.get(&node).map_or(&[][..], |v| v.as_slice());
            if idx < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let next = succs[idx];
                match color.get(&next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        stack.push((next, 0));
                    }
                    1 => acyclic = false,
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
            }
        }
        if !acyclic {
            break;
        }
    }

    SkeletonReport {
        acyclic,
        in_degree_le_1,
        max_degree: degree.values().copied().max().unwrap_or(0),
        non_constant_elements: non.len(),
    }
}

/// Partitions the predicates of a chase into skeleton (D-relations and
/// TGPs) and flesh (everything else) for reporting.
pub fn skeleton_flesh_preds(
    chased: &Instance,
    db: &Instance,
    theory: &Theory,
) -> (FxHashSet<PredId>, FxHashSet<PredId>) {
    let tgps = theory.tgps();
    let mut skeleton_preds: FxHashSet<PredId> = db.used_preds().collect();
    skeleton_preds.extend(tgps.iter().copied());
    let flesh: FxHashSet<PredId> = chased
        .used_preds()
        .filter(|p| !skeleton_preds.contains(p))
        .collect();
    (skeleton_preds, flesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::normalize_spade5;
    use bddfc_chase::{chase, saturate_datalog, ChaseConfig};
    use bddfc_core::parse_program;

    #[test]
    fn skeleton_of_example7() {
        // Example 7: E(x,y) → ∃z E(y,z); E(x,y),E(x',y) → R(x,x').
        // Skeleton = D ∪ E-atoms; flesh = R-atoms.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(X2,Y) -> R(X,X2).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(8));
        let skel = skeleton(&res.instance, &prog.instance, &norm);
        let r = voc.find_pred("R").unwrap();
        assert!(skel.facts_with_pred(r).is_empty(), "flesh atom in skeleton");
        // All chase elements appear in the skeleton.
        assert_eq!(skel.domain_size(), res.instance.domain_size());
    }

    #[test]
    fn skeleton_is_forest_for_normalized_theory() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y) -> exists Z . G(Y,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(6));
        let skel = skeleton(&res.instance, &prog.instance, &norm);
        let report = analyze_skeleton(&skel, &voc);
        assert!(report.is_forest(), "{report:?}");
        assert!(report.max_degree <= voc.pred_count() + 1);
    }

    #[test]
    fn lemma4_chase_rebuilt_from_skeleton_by_datalog_alone() {
        // Lemma 4: Chase(S,T) = Chase(D,T); moreover rebuilding from S only
        // triggers datalog rules.
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(X2,Y) -> R(X,X2).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(6));
        let skel = skeleton(&res.instance, &prog.instance, &norm);
        let rebuilt = saturate_datalog(&skel, &norm);
        // Lemma 4 concerns the infinite chase; on a finite prefix the
        // saturation is *complete* over the skeleton while the prefix is
        // depth-truncated, so the checkable inclusion is: every prefix
        // fact is regenerated from the skeleton by datalog alone.
        assert!(rebuilt.instance.models(&res.instance));
        // And the rebuilt instance recovers flesh atoms: R(e,e) for chain
        // elements.
        let r = voc.find_pred("R").unwrap();
        assert!(!rebuilt.instance.facts_with_pred(r).is_empty());
        // No new elements were created (datalog saturation cannot).
        assert_eq!(rebuilt.instance.domain_size(), skel.domain_size());
    }

    #[test]
    fn flesh_preds_detected() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(X,Y), E(X2,Y) -> R(X,X2).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let norm = normalize_spade5(&prog.theory, &mut voc).unwrap();
        let res = chase(&prog.instance, &norm, &mut voc, ChaseConfig::rounds(4));
        let (skel_preds, flesh) = skeleton_flesh_preds(&res.instance, &prog.instance, &norm);
        let r = voc.find_pred("R").unwrap();
        assert!(flesh.contains(&r));
        assert!(!skel_preds.contains(&r));
    }

    #[test]
    fn cyclic_input_reported_not_forest() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let a = voc.fresh_null("a");
        let b = voc.fresh_null("b");
        inst.insert(bddfc_core::Fact::new(e, vec![a, b]));
        inst.insert(bddfc_core::Fact::new(e, vec![b, a]));
        let report = analyze_skeleton(&inst, &voc);
        assert!(!report.acyclic);
    }
}
