//! Very Treelike DAGs (Definitions 10 and 11).
//!
//! A structure is a VTDAG when its non-constant part is a DAG, each
//! non-constant element has at most one non-constant direct predecessor
//! *per binary relation*, and the set of direct predecessors of every
//! element is a directed clique. Trees are trivially VTDAGs; the Main
//! Lemma (Lemma 2) asserts every VTDAG is ptp-conservative.

use bddfc_core::{ConstId, Instance, Vocabulary};
use bddfc_types::predecessors;
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// Why a structure fails to be a VTDAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VtdagViolation {
    /// The non-constant part has a directed cycle.
    Cyclic,
    /// Some element has two non-constant predecessors in one relation.
    MultiplePredecessors {
        /// The offending element.
        element: ConstId,
    },
    /// Two predecessors of an element are not related either way.
    PredecessorsNotClique {
        /// The element whose predecessor set is not a directed clique.
        element: ConstId,
    },
}

/// Checks Definition 11, returning all violations found (empty = VTDAG).
pub fn vtdag_violations(inst: &Instance, voc: &Vocabulary) -> Vec<VtdagViolation> {
    let mut out = Vec::new();
    let non: FxHashSet<ConstId> = inst.domain().filter(|&c| voc.is_null(c)).collect();

    // Condition 1: per-relation in-degree ≤ 1 among non-constants.
    let mut in_by_rel: FxHashMap<(bddfc_core::PredId, ConstId), FxHashSet<ConstId>> =
        FxHashMap::default();
    let mut edges: FxHashMap<ConstId, Vec<ConstId>> = FxHashMap::default();
    for fact in inst.facts() {
        if fact.args.len() != 2 {
            continue;
        }
        let (a, b) = (fact.args[0], fact.args[1]);
        if non.contains(&a) && non.contains(&b) {
            in_by_rel.entry((fact.pred, b)).or_default().insert(a);
            edges.entry(a).or_default().push(b);
        }
    }
    let mut bad_multi: FxHashSet<ConstId> = FxHashSet::default();
    for ((_, e), preds) in &in_by_rel {
        if preds.len() > 1 {
            bad_multi.insert(*e);
        }
    }
    let mut bad_multi: Vec<ConstId> = bad_multi.into_iter().collect();
    bad_multi.sort_unstable();
    for element in bad_multi {
        out.push(VtdagViolation::MultiplePredecessors { element });
    }

    // DAG check.
    if has_cycle(&non, &edges) {
        out.push(VtdagViolation::Cyclic);
    }

    // Condition 2: P(e) ∖ {e} must be a directed clique: for d ≠ d' in
    // P(e), d ∈ P(d') or d' ∈ P(d).
    let mut sorted_non: Vec<ConstId> = non.iter().copied().collect();
    sorted_non.sort_unstable();
    for &e in &sorted_non {
        let p: Vec<ConstId> = {
            let mut v: Vec<ConstId> = predecessors(inst, voc, e).into_iter().collect();
            v.sort_unstable();
            v
        };
        let mut ok = true;
        for (i, &d) in p.iter().enumerate() {
            for &d2 in p.iter().skip(i + 1) {
                let d_in_p_d2 = predecessors(inst, voc, d2).contains(&d);
                let d2_in_p_d = predecessors(inst, voc, d).contains(&d2);
                if !d_in_p_d2 && !d2_in_p_d {
                    ok = false;
                }
            }
        }
        if !ok {
            out.push(VtdagViolation::PredecessorsNotClique { element: e });
        }
    }
    out
}

fn has_cycle(nodes: &FxHashSet<ConstId>, edges: &FxHashMap<ConstId, Vec<ConstId>>) -> bool {
    let mut color: FxHashMap<ConstId, u8> = FxHashMap::default();
    for &start in nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let succs = edges.get(&node).map_or(&[][..], |v| v.as_slice());
            if idx < succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let next = succs[idx];
                match color.get(&next).copied().unwrap_or(0) {
                    0 => {
                        color.insert(next, 1);
                        stack.push((next, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color.insert(node, 2);
                stack.pop();
            }
        }
    }
    false
}

/// Is the structure a VTDAG (Definition 11)?
pub fn is_vtdag(inst: &Instance, voc: &Vocabulary) -> bool {
    vtdag_violations(inst, voc).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::Fact;

    #[test]
    fn trees_are_vtdags() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let f = voc.pred("F", 2);
        let mut inst = Instance::new();
        let root = voc.fresh_null("r");
        let l = voc.fresh_null("l");
        let r = voc.fresh_null("r");
        inst.insert(Fact::new(e, vec![root, l]));
        inst.insert(Fact::new(f, vec![root, r]));
        assert!(is_vtdag(&inst, &voc));
    }

    #[test]
    fn two_predecessors_in_one_relation_violate() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let (a, b, c) = (voc.fresh_null("a"), voc.fresh_null("b"), voc.fresh_null("c"));
        inst.insert(Fact::new(e, vec![a, c]));
        inst.insert(Fact::new(e, vec![b, c]));
        let v = vtdag_violations(&inst, &voc);
        assert!(v
            .iter()
            .any(|x| matches!(x, VtdagViolation::MultiplePredecessors { element } if *element == c)));
    }

    #[test]
    fn cycles_violate() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let (a, b) = (voc.fresh_null("a"), voc.fresh_null("b"));
        inst.insert(Fact::new(e, vec![a, b]));
        inst.insert(Fact::new(e, vec![b, a]));
        assert!(vtdag_violations(&inst, &voc).contains(&VtdagViolation::Cyclic));
    }

    #[test]
    fn diamond_with_unrelated_predecessors_violates_clique() {
        // e has predecessors d (via E) and d' (via F), unrelated: the
        // second VTDAG condition fails.
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let f = voc.pred("F", 2);
        let mut inst = Instance::new();
        let (d, d2, x) = (voc.fresh_null("d"), voc.fresh_null("d"), voc.fresh_null("x"));
        inst.insert(Fact::new(e, vec![d, x]));
        inst.insert(Fact::new(f, vec![d2, x]));
        let v = vtdag_violations(&inst, &voc);
        assert!(v
            .iter()
            .any(|vi| matches!(vi, VtdagViolation::PredecessorsNotClique { element } if *element == x)));
    }

    #[test]
    fn related_predecessors_form_clique() {
        // d -> d' and both -> x: P(x) = {x, d, d'} with d ∈ P(d').
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let f = voc.pred("F", 2);
        let g = voc.pred("G", 2);
        let mut inst = Instance::new();
        let (d, d2, x) = (voc.fresh_null("d"), voc.fresh_null("d"), voc.fresh_null("x"));
        inst.insert(Fact::new(g, vec![d, d2]));
        inst.insert(Fact::new(e, vec![d, x]));
        inst.insert(Fact::new(f, vec![d2, x]));
        assert!(is_vtdag(&inst, &voc));
    }

    #[test]
    fn constants_are_exempt() {
        // Constants may have any in-degree.
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let c = voc.constant("c");
        let mut inst = Instance::new();
        let (a, b) = (voc.fresh_null("a"), voc.fresh_null("b"));
        inst.insert(Fact::new(e, vec![a, c]));
        inst.insert(Fact::new(e, vec![b, c]));
        inst.insert(Fact::new(e, vec![c, a]));
        inst.insert(Fact::new(e, vec![c, b]));
        assert!(is_vtdag(&inst, &voc));
    }
}
