//! Independent certification of finite countermodels.
//!
//! Everything the pipeline produces is re-checked from scratch against
//! Definition 1's requirements: `M ⊨ D`, `M ⊨ T`, `M ⊭ Φ`. The pipeline's
//! heuristics (chase prefix depth, quotient parameter search) can
//! therefore never produce a wrong answer — only a retry.

use bddfc_core::satisfaction::{first_violation, satisfies_rule};
use bddfc_core::{hom, ConjunctiveQuery, Instance, Theory, Vocabulary};

/// A reason a candidate model fails certification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertFailure {
    /// Some fact of `D` is missing.
    MissingDbFact(String),
    /// Some rule of the theory is violated.
    RuleViolated {
        /// Index of the violated rule.
        rule_idx: usize,
        /// Rendering of the rule.
        rule: String,
    },
    /// The forbidden query is satisfied.
    QuerySatisfied,
}

impl std::fmt::Display for CertFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertFailure::MissingDbFact(s) => write!(f, "missing database fact {s}"),
            CertFailure::RuleViolated { rule_idx, rule } => {
                write!(f, "rule #{rule_idx} violated: {rule}")
            }
            CertFailure::QuerySatisfied => write!(f, "forbidden query is satisfied"),
        }
    }
}

/// Certifies that `model` witnesses `T, D ⊭_fin Φ`: it extends `db`,
/// satisfies every rule of `theory`, and avoids `query`. Returns all
/// failures (empty = certified).
pub fn certify_countermodel(
    model: &Instance,
    db: &Instance,
    theory: &Theory,
    query: &ConjunctiveQuery,
    voc: &Vocabulary,
) -> Vec<CertFailure> {
    let mut failures = Vec::new();
    for fact in db.facts() {
        if !model.contains(fact) {
            failures.push(CertFailure::MissingDbFact(fact.display(voc).to_string()));
        }
    }
    for (rule_idx, rule) in theory.rules.iter().enumerate() {
        if !satisfies_rule(model, rule) {
            debug_assert!(first_violation(model, rule).is_some());
            failures.push(CertFailure::RuleViolated {
                rule_idx,
                rule: rule.display(voc).to_string(),
            });
        }
    }
    if hom::satisfies_cq(model, query) {
        failures.push(CertFailure::QuerySatisfied);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_program, parse_query};

    #[test]
    fn good_countermodel_certifies() {
        // 2-cycle tail model for the successor rule, avoiding E(x,x).
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b). E(b,c). E(c,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("E(X,X)", &mut voc).unwrap();
        let db = {
            let mut v2 = voc.clone();
            bddfc_core::parse_into("E(a,b).", &mut v2).unwrap().1
        };
        let failures = certify_countermodel(&prog.instance, &db, &prog.theory, &q, &voc);
        assert!(failures.is_empty(), "{failures:?}");
        let _ = db;
    }

    #[test]
    fn violations_are_reported() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).",
        )
        .unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("E(X,X)", &mut voc).unwrap();
        let failures =
            certify_countermodel(&prog.instance, &prog.instance, &prog.theory, &q, &voc);
        // b has no successor.
        assert!(failures
            .iter()
            .any(|f| matches!(f, CertFailure::RuleViolated { .. })));
    }

    #[test]
    fn satisfied_query_fails_certification() {
        let prog = parse_program("E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let q = parse_query("E(X,X)", &mut voc).unwrap();
        let failures =
            certify_countermodel(&prog.instance, &prog.instance, &Theory::default(), &q, &voc);
        assert_eq!(failures, vec![CertFailure::QuerySatisfied]);
    }

    #[test]
    fn missing_db_fact_fails_certification() {
        let prog = parse_program("E(a,a).").unwrap();
        let mut voc = prog.voc.clone();
        let (_, db2, _) = bddfc_core::parse_into("E(a,a). E(b,b).", &mut voc).unwrap();
        let q = parse_query("U(X)", &mut voc).unwrap();
        let failures =
            certify_countermodel(&prog.instance, &db2, &Theory::default(), &q, &voc);
        assert!(matches!(failures[0], CertFailure::MissingDbFact(_)));
    }
}
