//! A tiny deterministic PRNG, so workload generation and property tests
//! need no external randomness crate (the hermetic-build policy).
//!
//! [`SplitMix64`] is Steele, Lea & Flood's 64-bit mixer: one addition and
//! two xor-shift-multiply rounds per output. It is equidistributed enough
//! for test-case generation and benchmarking workloads, trivially seedable,
//! and — crucially for reproducible experiments — the same seed yields the
//! same stream on every platform and every run.

/// A seeded, deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `usize` in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift range reduction (Lemire); the slight modulo bias
        // of the naive approach is avoided without a division.
        let wide = (self.next_u64() as u128) * (n as u128);
        (wide >> 64) as usize
    }

    /// A uniformly distributed value in the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of mantissa are plenty for test probabilities.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Splits off an independent child generator (for nested generation
    /// that must not perturb the parent's stream).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_reference_values() {
        // SplitMix64 reference outputs for seed 0 — pins the algorithm so
        // seeds stay stable across refactors (EXPERIMENTS.md depends on
        // seed-reproducible workloads).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SplitMix64::new(42);
        let mut child = parent.fork();
        let p1 = parent.next_u64();
        let c1 = child.next_u64();
        assert_ne!(p1, c1);
        // Re-deriving the same fork point gives the same child stream.
        let mut parent2 = SplitMix64::new(42);
        let mut child2 = parent2.fork();
        assert_eq!(child2.next_u64(), c1);
    }
}
