//! Conjunctive queries and unions of conjunctive queries.
//!
//! Following the paper (footnote 1 and Section 1.1), a *query* is a
//! conjunctive query without negation; free variables that are omitted are
//! treated as existentially quantified, so a [`ConjunctiveQuery`] with an
//! empty `free` list is a Boolean query. Unions of conjunctive queries
//! ([`Ucq`]) appear as positive first-order rewritings (Definition 2).

use crate::symbols::{ConstId, VarId, Vocabulary};
use crate::term::{Atom, Fact, Term};
use crate::fxhash::{FxHashMap, FxHashSet};
use std::fmt;

/// A conjunctive query: a conjunction of atoms with a tuple of free
/// (answer) variables; all other variables are existential.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The conjuncts.
    pub atoms: Vec<Atom>,
    /// The free (answer) variables, in answer-tuple order. Empty for a
    /// Boolean query.
    pub free: Vec<VarId>,
}

impl ConjunctiveQuery {
    /// Creates a Boolean conjunctive query.
    pub fn boolean(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms, free: Vec::new() }
    }

    /// Creates a conjunctive query with answer variables.
    pub fn with_free(atoms: Vec<Atom>, free: Vec<VarId>) -> Self {
        ConjunctiveQuery { atoms, free }
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// The set of all variables occurring in the query.
    pub fn variables(&self) -> FxHashSet<VarId> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// The number of distinct variables (the paper counts query size in
    /// variables, e.g. in Definition 3).
    pub fn var_count(&self) -> usize {
        self.variables().len()
    }

    /// The set of constants occurring in the query.
    pub fn constants(&self) -> FxHashSet<ConstId> {
        self.atoms.iter().flat_map(|a| a.constants()).collect()
    }

    /// The existential variables: those not in `free`.
    pub fn existential_vars(&self) -> FxHashSet<VarId> {
        let free: FxHashSet<VarId> = self.free.iter().copied().collect();
        self.variables().difference(&free).copied().collect()
    }

    /// Applies a variable substitution to every atom (free variables are
    /// substituted in the answer tuple as well when they map to variables).
    pub fn apply(&self, subst: &impl Fn(VarId) -> Option<Term>) -> ConjunctiveQuery {
        let atoms = self.atoms.iter().map(|a| a.apply(subst)).collect();
        let free = self
            .free
            .iter()
            .map(|&v| match subst(v) {
                Some(Term::Var(w)) => w,
                _ => v,
            })
            .collect();
        ConjunctiveQuery { atoms, free }
    }

    /// Renames every variable through `fresh`, producing a variable-disjoint
    /// copy. `fresh` must be injective.
    pub fn rename(&self, fresh: &FxHashMap<VarId, VarId>) -> ConjunctiveQuery {
        self.apply(&|v| fresh.get(&v).map(|&w| Term::Var(w)))
    }

    /// Renames the query apart from any already-interned variable.
    pub fn rename_apart(&self, voc: &mut Vocabulary) -> ConjunctiveQuery {
        let mut map = FxHashMap::default();
        for v in self.variables() {
            let name = voc.var_name(v).to_owned();
            map.insert(v, voc.fresh_var(&name));
        }
        self.rename(&map)
    }

    /// The *frozen* (canonical) instance of the query: each variable becomes
    /// a fresh null. Returns the instance together with the freezing map.
    ///
    /// Used for homomorphic subsumption checks: `Q₁ ⊑ Q₂` iff `Q₂` maps
    /// homomorphically into the frozen instance of `Q₁` (respecting free
    /// variables).
    pub fn freeze(&self, voc: &mut Vocabulary) -> (crate::Instance, FxHashMap<VarId, ConstId>) {
        let mut map: FxHashMap<VarId, ConstId> = FxHashMap::default();
        let mut inst = crate::Instance::new();
        for atom in &self.atoms {
            let mut args = Vec::with_capacity(atom.args.len());
            for t in &atom.args {
                match t {
                    Term::Const(c) => args.push(*c),
                    Term::Var(v) => {
                        let c = *map.entry(*v).or_insert_with(|| voc.fresh_null("frz"));
                        args.push(c);
                    }
                }
            }
            inst.insert(Fact::new(atom.pred, args));
        }
        (inst, map)
    }

    /// Renders the query using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayCq<'a> {
        DisplayCq { cq: self, voc }
    }
}

/// A union of conjunctive queries. All disjuncts must share the same free
/// variable tuple length (checked by [`Ucq::new`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl Ucq {
    /// Creates a UCQ.
    ///
    /// # Panics
    /// Panics if disjuncts disagree on the number of free variables.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        if let Some(first) = disjuncts.first() {
            let n = first.free.len();
            assert!(
                disjuncts.iter().all(|d| d.free.len() == n),
                "UCQ disjuncts must have equal answer arity"
            );
        }
        Ucq { disjuncts }
    }

    /// The UCQ with a single disjunct.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        Ucq { disjuncts: vec![cq] }
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Is the union empty (equivalent to `false`)?
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Renders the UCQ using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayUcq<'a> {
        DisplayUcq { ucq: self, voc }
    }
}

/// Helper for [`ConjunctiveQuery::display`].
pub struct DisplayCq<'a> {
    cq: &'a ConjunctiveQuery,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayCq<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.cq.free.is_empty() {
            write!(f, "(")?;
            for (i, v) in self.cq.free.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.voc.var_name(*v))?;
            }
            write!(f, ") <- ")?;
        }
        for (i, a) in self.cq.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(self.voc))?;
        }
        Ok(())
    }
}

/// Helper for [`Ucq::display`].
pub struct DisplayUcq<'a> {
    ucq: &'a Ucq,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayUcq<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.ucq.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{}", d.display(self.voc))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::PredId;

    fn path_query(voc: &mut Vocabulary) -> (ConjunctiveQuery, PredId, VarId, VarId, VarId) {
        let e = voc.pred("E", 2);
        let x = voc.var("X");
        let y = voc.var("Y");
        let z = voc.var("Z");
        let cq = ConjunctiveQuery::boolean(vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ]);
        (cq, e, x, y, z)
    }

    #[test]
    fn variable_accounting() {
        let mut voc = Vocabulary::new();
        let (cq, _, x, _, _) = path_query(&mut voc);
        assert_eq!(cq.var_count(), 3);
        assert!(cq.is_boolean());
        assert!(cq.existential_vars().contains(&x));
    }

    #[test]
    fn rename_apart_gives_disjoint_vars() {
        let mut voc = Vocabulary::new();
        let (cq, _, _, _, _) = path_query(&mut voc);
        let cq2 = cq.rename_apart(&mut voc);
        assert!(cq.variables().is_disjoint(&cq2.variables()));
        assert_eq!(cq2.var_count(), 3);
    }

    #[test]
    fn freeze_produces_canonical_instance() {
        let mut voc = Vocabulary::new();
        let (cq, _, _, y, _) = path_query(&mut voc);
        let (inst, map) = cq.freeze(&mut voc);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.domain_size(), 3);
        assert!(voc.is_null(map[&y]));
    }

    #[test]
    fn freeze_shares_repeated_variables() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let x = voc.var("X");
        let cq = ConjunctiveQuery::boolean(vec![Atom::new(e, vec![Term::Var(x), Term::Var(x)])]);
        let (inst, _) = cq.freeze(&mut voc);
        assert_eq!(inst.domain_size(), 1);
    }

    #[test]
    #[should_panic(expected = "equal answer arity")]
    fn ucq_arity_mismatch_panics() {
        let mut voc = Vocabulary::new();
        let (cq, _, x, _, _) = path_query(&mut voc);
        let mut with_free = cq.clone();
        with_free.free = vec![x];
        Ucq::new(vec![cq, with_free]);
    }

    #[test]
    fn display_round_trip_shapes() {
        let mut voc = Vocabulary::new();
        let (cq, _, _, _, _) = path_query(&mut voc);
        assert_eq!(cq.display(&voc).to_string(), "E(X,Y), E(Y,Z)");
    }
}
