//! Rule and theory satisfaction, and violation enumeration.
//!
//! `M ⊨ T` checking is what certifies every finite model this workspace
//! produces; violation enumeration is what drives the chase.

use crate::columnar::Relation;
use crate::hom::{self, Binding};
use crate::instance::Instance;
use crate::rule::{Rule, Theory};
use crate::symbols::{ConstId, VarId};
use crate::term::{Atom, Term};
use std::ops::ControlFlow;

/// A witness that a rule is violated in an instance: a homomorphism of the
/// body that admits no extension satisfying the head.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Index of the violated rule in the theory (when enumerated through
    /// [`theory_violations`]; `0` for single-rule APIs).
    pub rule_idx: usize,
    /// The body homomorphism with no head extension.
    pub binding: Binding,
}

/// Restricts a binding to the given variables (used to canonicalize
/// violations: only frontier variables matter for head satisfaction).
pub fn restrict_binding(binding: &Binding, vars: &[VarId]) -> Binding {
    vars.iter()
        .filter_map(|v| binding.get(v).map(|&c| (*v, c)))
        .collect()
}

/// Is the head of `rule` satisfiable in `inst` under the (body) binding?
/// I.e. does some extension of `binding` to the existential variables make
/// every head atom true? This is the *non-oblivious* applicability check of
/// Section 1.1: "such that there is no y ∈ D satisfying D ⊨ Q(y, ȳ)".
pub fn head_satisfied(inst: &Instance, rule: &Rule, binding: &Binding) -> bool {
    hom::hom_exists(inst, &rule.head, binding)
}

/// How [`HeadCheck`] decides head satisfaction for its rule.
enum HeadPlan {
    /// No existential variables: a frontier binding grounds every head
    /// atom, so the check is one `contains` lookup per atom.
    Grounded,
    /// Exactly one head atom mentions existential variables, each of
    /// which occurs exactly once (and only in that atom): the other
    /// atoms are grounded lookups and the special atom reduces to a
    /// posting-list scan of its columnar relation.
    SingleAtom(usize),
    /// Anything else (shared or repeated existentials): fall back to the
    /// general homomorphism search.
    General,
}

/// A per-rule head-satisfaction plan, precompiled so the chase admission
/// loop — which runs [`head_satisfied`] once per candidate trigger —
/// avoids the general backtracking search on the common rule shapes.
/// Produces exactly the same verdicts as [`head_satisfied`] on bindings
/// that cover the rule frontier.
pub struct HeadCheck {
    plan: HeadPlan,
}

impl HeadCheck {
    /// Compiles the plan for one rule.
    pub fn new(rule: &Rule) -> Self {
        let ex = rule.existential_vars();
        if ex.is_empty() {
            return HeadCheck { plan: HeadPlan::Grounded };
        }
        let touched: Vec<usize> = rule
            .head
            .iter()
            .enumerate()
            .filter(|(_, atom)| atom.vars().any(|v| ex.contains(&v)))
            .map(|(i, _)| i)
            .collect();
        if let [only] = touched[..] {
            let once_each = ex.iter().all(|&v| {
                rule.head[only].vars().filter(|&w| w == v).count() == 1
            });
            if once_each {
                return HeadCheck { plan: HeadPlan::SingleAtom(only) };
            }
        }
        HeadCheck { plan: HeadPlan::General }
    }

    /// Is the head of the rule this plan was compiled for satisfiable in
    /// `inst` under the (frontier-covering) binding?
    pub fn satisfied(&self, inst: &Instance, rule: &Rule, binding: &Binding) -> bool {
        match self.plan {
            HeadPlan::Grounded => {
                rule.head.iter().all(|atom| grounded_atom_holds(inst, atom, binding))
            }
            HeadPlan::SingleAtom(idx) => {
                rule.head
                    .iter()
                    .enumerate()
                    .all(|(i, atom)| i == idx || grounded_atom_holds(inst, atom, binding))
                    && witness_row_exists(inst, &rule.head[idx], binding)
            }
            HeadPlan::General => hom::hom_exists(inst, &rule.head, binding),
        }
    }
}

/// Grounds `atom` under `binding` and asks the instance for the fact.
/// Unbound variables make the atom non-ground and the answer `false`
/// (plans only route atoms here whose variables the binding covers).
fn grounded_atom_holds(inst: &Instance, atom: &Atom, binding: &Binding) -> bool {
    // Ground into a stack buffer for the overwhelmingly common small
    // arities; the probe itself never materializes a fact either way.
    let mut buf = [ConstId(0); 8];
    let mut heap;
    let args: &mut [ConstId] = if atom.args.len() <= buf.len() {
        &mut buf[..atom.args.len()]
    } else {
        heap = vec![ConstId(0); atom.args.len()];
        &mut heap
    };
    for (slot, t) in args.iter_mut().zip(&atom.args) {
        match t {
            Term::Const(c) => *slot = *c,
            Term::Var(v) => match binding.get(v) {
                Some(&c) => *slot = c,
                None => return false,
            },
        }
    }
    inst.contains_ground(atom.pred, args)
}

/// Does any row of `atom`'s relation agree with the binding on every
/// bound position? Unbound positions are distinct once-occurring
/// existential variables (the [`HeadPlan::SingleAtom`] precondition), so
/// row existence is exactly head satisfiability for that atom.
fn witness_row_exists(inst: &Instance, atom: &Atom, binding: &Binding) -> bool {
    let Some(rel) = inst.columnar().relation(atom.pred) else {
        return false;
    };
    let bound: Vec<(usize, ConstId)> = atom
        .args
        .iter()
        .enumerate()
        .filter_map(|(pos, t)| match t {
            Term::Const(c) => Some((pos, *c)),
            Term::Var(v) => binding.get(v).map(|&c| (pos, c)),
        })
        .collect();
    let Some(&(best_pos, best_c)) =
        bound.iter().min_by_key(|&&(pos, c)| rel.matching(pos, c).len())
    else {
        return rel.rows() > 0;
    };
    let rows = rel.matching(best_pos, best_c);
    if bound.len() == 1 {
        return !rows.is_empty();
    }
    rows.iter().any(|&r| row_agrees(rel, r as usize, &bound))
}

/// Does row `r` hold element `c` at every `(pos, c)` in `bound`?
fn row_agrees(rel: &Relation, r: usize, bound: &[(usize, ConstId)]) -> bool {
    bound.iter().all(|&(pos, c)| rel.get(r, pos) == c)
}

/// Does the instance satisfy the rule?
pub fn satisfies_rule(inst: &Instance, rule: &Rule) -> bool {
    first_violation(inst, rule).is_none()
}

/// Finds one violation of the rule, if any.
pub fn first_violation(inst: &Instance, rule: &Rule) -> Option<Violation> {
    let mut found = None;
    let _ = hom::for_each_hom(inst, &rule.body, &Binding::default(), |b| {
        if head_satisfied(inst, rule, b) {
            ControlFlow::Continue(())
        } else {
            found = Some(Violation { rule_idx: 0, binding: b.clone() });
            ControlFlow::Break(())
        }
    });
    found
}

/// Enumerates all violations of the rule. Bindings are restricted to the
/// body variables actually used by the head (the rule frontier), and
/// deduplicated, so each returned violation demands a distinct repair —
/// exactly the grain at which the paper's `Chase¹` creates witnesses
/// (`c_{t,x̄}` depends on the rule and the frontier tuple).
pub fn rule_violations(inst: &Instance, rule: &Rule) -> Vec<Violation> {
    let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
    frontier.sort_unstable();
    let mut seen = crate::fxhash::FxHashSet::default();
    let mut out = Vec::new();
    let _ = hom::for_each_hom(inst, &rule.body, &Binding::default(), |b| {
        let key: Vec<_> = frontier.iter().map(|v| b[v]).collect();
        if seen.contains(&key) {
            return ControlFlow::Continue(());
        }
        let restricted = restrict_binding(b, &frontier);
        if !head_satisfied(inst, rule, &restricted) {
            seen.insert(key);
            out.push(Violation { rule_idx: 0, binding: restricted });
        } else {
            seen.insert(key);
        }
        ControlFlow::Continue(())
    });
    out
}

/// Does the instance satisfy every rule of the theory?
pub fn satisfies_theory(inst: &Instance, theory: &Theory) -> bool {
    theory.rules.iter().all(|r| satisfies_rule(inst, r))
}

/// Enumerates all violations across the theory, tagged with rule indices.
pub fn theory_violations(inst: &Instance, theory: &Theory) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, rule) in theory.rules.iter().enumerate() {
        for mut v in rule_violations(inst, rule) {
            v.rule_idx = i;
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;
    use crate::term::{Atom, Fact, Term};

    fn succ_theory(voc: &mut Vocabulary) -> Theory {
        let e = voc.pred("E", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        Theory::new(vec![Rule::single(
            vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])],
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        )])
    }

    #[test]
    fn loop_satisfies_successor_rule() {
        let mut voc = Vocabulary::new();
        let th = succ_theory(&mut voc);
        let e = voc.find_pred("E").unwrap();
        let a = voc.constant("a");
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![a, a]));
        assert!(satisfies_theory(&inst, &th));
    }

    #[test]
    fn chain_end_violates_successor_rule() {
        let mut voc = Vocabulary::new();
        let th = succ_theory(&mut voc);
        let e = voc.find_pred("E").unwrap();
        let a = voc.constant("a");
        let b = voc.constant("b");
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![a, b]));
        let viols = theory_violations(&inst, &th);
        assert_eq!(viols.len(), 1);
        // The violated frontier is Y = b.
        let y = voc.find_pred("E").map(|_| voc.var("Y")).unwrap();
        assert_eq!(viols[0].binding[&y], b);
    }

    #[test]
    fn violations_deduplicate_on_frontier() {
        let mut voc = Vocabulary::new();
        let th = succ_theory(&mut voc);
        let e = voc.find_pred("E").unwrap();
        let (a, b, c) = (voc.constant("a"), voc.constant("b"), voc.constant("c"));
        let mut inst = Instance::new();
        // Two edges into c: both body homs share frontier Y=c — one repair.
        inst.insert(Fact::new(e, vec![a, c]));
        inst.insert(Fact::new(e, vec![b, c]));
        let viols = rule_violations(&inst, &th.rules[0]);
        assert_eq!(viols.len(), 1);
    }

    #[test]
    fn datalog_violation_detected() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let trans = Rule::single(
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
            Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
        );
        let (a, b, c) = (voc.constant("a"), voc.constant("b"), voc.constant("c"));
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![a, b]));
        inst.insert(Fact::new(e, vec![b, c]));
        assert!(!satisfies_rule(&inst, &trans));
        inst.insert(Fact::new(e, vec![a, c]));
        assert!(satisfies_rule(&inst, &trans));
    }

    #[test]
    fn multi_head_satisfaction_requires_single_witness_for_all_atoms() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let (x, z) = (voc.var("X"), voc.var("Z"));
        // E(x,x) -> exists z. E(x,z) ∧ U(z): the same z must serve both atoms.
        let rule = Rule::new(
            vec![Atom::new(e, vec![Term::Var(x), Term::Var(x)])],
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
                Atom::new(u, vec![Term::Var(z)]),
            ],
        );
        let a = voc.constant("a");
        let b = voc.constant("b");
        let c = voc.constant("c");
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![a, a]));
        inst.insert(Fact::new(e, vec![a, b]));
        inst.insert(Fact::new(u, vec![c]));
        // E(a,b) holds and U(c) holds but no single z works.
        assert!(!satisfies_rule(&inst, &rule));
        inst.insert(Fact::new(u, vec![b]));
        assert!(satisfies_rule(&inst, &rule));
    }
}
