//! [`FactIndex`]: the by-predicate access path behind [`Instance`] lookups.
//!
//! The index keeps one posting list of [`FactIdx`] per predicate, in
//! insertion order, and is kept incrementally up to date on every insert —
//! [`FactIndex::rebuild`] exists only as the from-scratch oracle the unit
//! tests compare against. Position-constrained lookups (*which facts have
//! element `c` at position `i` of predicate `P`?*) are served by the
//! [`crate::columnar::ColumnarStore`] postings instead; a columnar row
//! number of predicate `P` maps to a global [`FactIdx`] through
//! `with_pred(P)`, which lists `P`'s facts in exactly the columnar row
//! order.
//!
//! [`Instance`]: crate::instance::Instance

use crate::fxhash::FxHashMap;
use crate::symbols::PredId;
use crate::term::Fact;

/// Position of a fact in its instance's insertion-ordered fact vector.
pub type FactIdx = usize;

/// Posting-list index over a fact vector, by predicate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FactIndex {
    by_pred: FxHashMap<PredId, Vec<FactIdx>>,
}

impl FactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the fact stored at `idx`. Callers must present facts in
    /// increasing `idx` order (the instance's insertion order) so posting
    /// lists stay sorted.
    pub fn insert(&mut self, idx: FactIdx, fact: &Fact) {
        self.by_pred.entry(fact.pred).or_default().push(idx);
    }

    /// Builds the index of a fact slice from scratch. Semantically equal
    /// to inserting every fact in order into an empty index.
    pub fn rebuild(facts: &[Fact]) -> Self {
        let mut index = FactIndex::new();
        for (idx, fact) in facts.iter().enumerate() {
            index.insert(idx, fact);
        }
        index
    }

    /// Indexes of facts with the given predicate, in insertion order.
    pub fn with_pred(&self, pred: PredId) -> &[FactIdx] {
        self.by_pred.get(&pred).map_or(&[], |v| v.as_slice())
    }

    /// The predicates that index at least one fact.
    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.by_pred.keys().copied()
    }

    /// Number of posting lists (diagnostics).
    pub fn posting_lists(&self) -> usize {
        self.by_pred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;
    use crate::symbols::{ConstId, Vocabulary};

    /// A deterministic pseudo-random fact soup over mixed arities.
    fn soup(voc: &mut Vocabulary, n: usize, seed: u64) -> Vec<Fact> {
        let mut rng = SplitMix64::new(seed);
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let t = voc.pred("T", 3);
        let elems: Vec<ConstId> = (0..8).map(|i| voc.constant(&format!("c{i}"))).collect();
        (0..n)
            .map(|_| match rng.below(3) {
                0 => Fact::new(e, vec![*rng.pick(&elems), *rng.pick(&elems)]),
                1 => Fact::new(u, vec![*rng.pick(&elems)]),
                _ => Fact::new(t, vec![*rng.pick(&elems), *rng.pick(&elems), *rng.pick(&elems)]),
            })
            .collect()
    }

    #[test]
    fn incremental_matches_rebuild() {
        let mut voc = Vocabulary::new();
        let facts = soup(&mut voc, 200, 11);
        let mut incremental = FactIndex::new();
        for (idx, fact) in facts.iter().enumerate() {
            incremental.insert(idx, fact);
            // Invariant holds at *every* prefix, not just the end.
            if idx % 50 == 0 {
                assert_eq!(incremental, FactIndex::rebuild(&facts[..=idx]));
            }
        }
        assert_eq!(incremental, FactIndex::rebuild(&facts));
    }

    #[test]
    fn posting_lists_are_sorted_and_complete() {
        let mut voc = Vocabulary::new();
        let facts = soup(&mut voc, 150, 23);
        let index = FactIndex::rebuild(&facts);
        for p in index.preds() {
            let list = index.with_pred(p);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted list for {p:?}");
            // Every listed idx really has predicate p, and every fact with
            // predicate p is listed.
            let expect: Vec<FactIdx> = facts
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pred == p)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(list, expect.as_slice());
        }
    }

    #[test]
    fn missing_keys_give_empty_slices() {
        let index = FactIndex::new();
        assert!(index.with_pred(PredId(99)).is_empty());
        assert_eq!(index.posting_lists(), 0);
    }
}
