//! Columnar (struct-of-arrays) fact storage: the relation layer behind
//! the batched hash-join kernel ([`crate::join`]).
//!
//! A [`ColumnarStore`] keeps, per predicate, one append-only `Vec<ConstId>`
//! per argument position. Row `i` of predicate `P` is the `i`-th fact of
//! `P` in instance insertion order, so the store is a transposed view of
//! the instance's fact vector: scans walk dense `u32` columns instead of
//! chasing one heap-allocated `Fact` per tuple. Because rows are only
//! ever appended, any *segment* of a relation is a contiguous row range
//! `lo..hi`; the semi-naive chase exploits this by remembering how many
//! facts a round added per predicate — the round's delta is exactly the
//! relation's tail segment, no copying required.
//!
//! Each relation also serves `(position, element) -> sorted row list`
//! posting lists in per-relation row space. The join kernel uses them
//! for its index-probe path when the probing frontier is much smaller
//! than the stored relation; the homomorphism engine uses them for its
//! candidate selection. Postings are *derived* data: they are built
//! lazily from the columns on the first [`Relation::matching`] call
//! after an append and torn down by the next append, so insert-heavy
//! phases that never consult them (the oblivious chase's admission path)
//! pay nothing for their upkeep.
//!
//! The store is maintained incrementally by [`crate::Instance::insert`];
//! [`ColumnarStore::rebuild`] is the from-scratch oracle the unit tests
//! compare against.

use crate::fxhash::FxHashMap;
use crate::symbols::{ConstId, PredId};
use crate::term::Fact;
use std::sync::OnceLock;

/// One predicate's struct-of-arrays relation: `arity` parallel columns of
/// equal length, plus lazily-derived per-`(position, element)` posting
/// lists over rows.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: usize,
    cols: Vec<Vec<ConstId>>,
    postings: OnceLock<FxHashMap<(u8, ConstId), Vec<u32>>>,
}

/// Postings are derived data, so equality is column equality.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.rows == other.rows && self.cols == other.cols
    }
}

impl Eq for Relation {}

impl Relation {
    fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: 0,
            cols: vec![Vec::new(); arity],
            postings: OnceLock::new(),
        }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column of argument position `pos` (length [`Relation::rows`]).
    pub fn col(&self, pos: usize) -> &[ConstId] {
        &self.cols[pos]
    }

    /// The element at `(row, pos)`.
    #[inline]
    pub fn get(&self, row: usize, pos: usize) -> ConstId {
        self.cols[pos][row]
    }

    /// Rows whose position `pos` holds element `c`, sorted ascending.
    /// Served from the lazily-built posting lists (rebuilt on the first
    /// call after an append).
    pub fn matching(&self, pos: usize, c: ConstId) -> &[u32] {
        self.postings().get(&(pos as u8, c)).map_or(&[], |v| v.as_slice())
    }

    /// The posting lists, derived from the columns on first use.
    fn postings(&self) -> &FxHashMap<(u8, ConstId), Vec<u32>> {
        self.postings.get_or_init(|| {
            let mut postings: FxHashMap<(u8, ConstId), Vec<u32>> = FxHashMap::default();
            for (pos, col) in self.cols.iter().enumerate() {
                for (row, &c) in col.iter().enumerate() {
                    postings.entry((pos as u8, c)).or_default().push(row as u32);
                }
            }
            postings
        })
    }

    fn push(&mut self, args: &[ConstId]) {
        debug_assert_eq!(args.len(), self.arity, "arity drift within a relation");
        debug_assert!(self.rows < u32::MAX as usize, "relation row id overflow");
        for (&c, col) in args.iter().zip(self.cols.iter_mut()) {
            col.push(c);
        }
        self.postings.take();
        self.rows += 1;
    }
}

/// Per-predicate columnar relations, addressed by [`PredId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColumnarStore {
    rels: Vec<Relation>,
}

impl ColumnarStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one fact as a new row of its predicate's relation. Callers
    /// must present facts in instance insertion order so row ids mirror
    /// per-predicate insertion order.
    pub fn push(&mut self, fact: &Fact) {
        let idx = fact.pred.index();
        if idx >= self.rels.len() {
            self.rels.resize_with(idx + 1, Relation::default);
        }
        let rel = &mut self.rels[idx];
        if rel.rows == 0 && rel.arity != fact.args.len() {
            *rel = Relation::new(fact.args.len());
        }
        rel.push(&fact.args);
    }

    /// The relation of `pred`, if any row was ever stored for it.
    pub fn relation(&self, pred: PredId) -> Option<&Relation> {
        self.rels.get(pred.index()).filter(|r| r.rows > 0)
    }

    /// Number of rows stored for `pred` (0 for unknown predicates).
    pub fn rows(&self, pred: PredId) -> usize {
        self.rels.get(pred.index()).map_or(0, |r| r.rows)
    }

    /// Builds the store of a fact slice from scratch. Semantically equal
    /// to pushing every fact in order onto an empty store.
    pub fn rebuild(facts: &[Fact]) -> Self {
        let mut store = ColumnarStore::new();
        for fact in facts {
            store.push(fact);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;
    use crate::symbols::Vocabulary;

    fn soup(voc: &mut Vocabulary, n: usize, seed: u64) -> Vec<Fact> {
        let mut rng = SplitMix64::new(seed);
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let t = voc.pred("T", 3);
        let elems: Vec<ConstId> = (0..8).map(|i| voc.constant(&format!("c{i}"))).collect();
        (0..n)
            .map(|_| match rng.below(3) {
                0 => Fact::new(e, vec![*rng.pick(&elems), *rng.pick(&elems)]),
                1 => Fact::new(u, vec![*rng.pick(&elems)]),
                _ => Fact::new(t, vec![*rng.pick(&elems), *rng.pick(&elems), *rng.pick(&elems)]),
            })
            .collect()
    }

    #[test]
    fn incremental_matches_rebuild() {
        let mut voc = Vocabulary::new();
        let facts = soup(&mut voc, 200, 5);
        let mut incremental = ColumnarStore::new();
        for (i, fact) in facts.iter().enumerate() {
            incremental.push(fact);
            if i % 50 == 0 {
                assert_eq!(incremental, ColumnarStore::rebuild(&facts[..=i]));
            }
        }
        assert_eq!(incremental, ColumnarStore::rebuild(&facts));
    }

    #[test]
    fn columns_transpose_the_fact_vector() {
        let mut voc = Vocabulary::new();
        let facts = soup(&mut voc, 120, 17);
        let store = ColumnarStore::rebuild(&facts);
        let e = voc.find_pred("E").unwrap();
        let rel = store.relation(e).unwrap();
        let e_facts: Vec<&Fact> = facts.iter().filter(|f| f.pred == e).collect();
        assert_eq!(rel.rows(), e_facts.len());
        assert_eq!(rel.arity(), 2);
        for (row, fact) in e_facts.iter().enumerate() {
            for pos in 0..2 {
                assert_eq!(rel.get(row, pos), fact.args[pos]);
            }
        }
    }

    #[test]
    fn postings_are_sorted_and_exact() {
        let mut voc = Vocabulary::new();
        let facts = soup(&mut voc, 150, 29);
        let store = ColumnarStore::rebuild(&facts);
        let t = voc.find_pred("T").unwrap();
        let rel = store.relation(t).unwrap();
        for pos in 0..3 {
            for i in 0..8 {
                let c = voc.find_const(&format!("c{i}")).unwrap();
                let rows = rel.matching(pos, c);
                assert!(rows.windows(2).all(|w| w[0] < w[1]), "unsorted postings");
                let expect: Vec<u32> = (0..rel.rows())
                    .filter(|&r| rel.get(r, pos) == c)
                    .map(|r| r as u32)
                    .collect();
                assert_eq!(rows, expect.as_slice());
            }
        }
    }

    #[test]
    fn missing_predicates_are_empty() {
        let store = ColumnarStore::new();
        assert_eq!(store.rows(PredId(3)), 0);
        assert!(store.relation(PredId(3)).is_none());
    }

    #[test]
    fn zero_arity_relations_count_rows() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 0);
        let mut store = ColumnarStore::new();
        store.push(&Fact::new(p, vec![]));
        assert_eq!(store.rows(p), 1);
        assert_eq!(store.relation(p).unwrap().arity(), 0);
    }
}
