//! Terms and atoms: the syntactic building blocks of queries and rules.

use crate::symbols::{ConstId, PredId, VarId, Vocabulary};
use std::fmt;

/// A term appearing in a rule or query atom: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A (possibly existentially quantified) variable.
    Var(VarId),
    /// A named constant from the signature.
    Const(ConstId),
}

impl Term {
    /// The variable inside, if any.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    #[inline]
    pub fn as_const(self) -> Option<ConstId> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Is this term a variable?
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Self {
        Term::Var(v)
    }
}

impl From<ConstId> for Term {
    fn from(c: ConstId) -> Self {
        Term::Const(c)
    }
}

/// An atom `R(t₁, …, tₖ)` over terms; used in rule bodies, rule heads and
/// conjunctive queries.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation symbol.
    pub pred: PredId,
    /// The argument terms, of length equal to the predicate's arity.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom. The caller is responsible for arity correctness;
    /// [`Atom::check_arity`] validates it against a vocabulary.
    pub fn new(pred: PredId, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Validates the atom's arity against the vocabulary.
    pub fn check_arity(&self, voc: &Vocabulary) -> bool {
        voc.arity(self.pred) == self.args.len()
    }

    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// Iterates over the constants of the atom (with repetitions).
    pub fn constants(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.args.iter().filter_map(|t| t.as_const())
    }

    /// Is the atom ground (variable-free)?
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// Converts a ground atom into a [`Fact`]. Returns `None` if any
    /// argument is a variable.
    pub fn to_fact(&self) -> Option<Fact> {
        let mut args = Vec::with_capacity(self.args.len());
        for t in &self.args {
            args.push(t.as_const()?);
        }
        Some(Fact::new(self.pred, args))
    }

    /// Applies a variable substitution, leaving unmapped variables intact.
    pub fn apply(&self, subst: &impl Fn(VarId) -> Option<Term>) -> Atom {
        Atom {
            pred: self.pred,
            args: self
                .args
                .iter()
                .map(|t| match t {
                    Term::Var(v) => subst(*v).unwrap_or(*t),
                    Term::Const(_) => *t,
                })
                .collect(),
        }
    }

    /// Renders the atom using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayAtom<'a> {
        DisplayAtom { atom: self, voc }
    }
}

/// A ground atom `R(c₁, …, cₖ)`: the unit of storage in an [`crate::Instance`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fact {
    /// The relation symbol.
    pub pred: PredId,
    /// The argument elements.
    pub args: Vec<ConstId>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(pred: PredId, args: Vec<ConstId>) -> Self {
        Fact { pred, args }
    }

    /// Views the fact as an [`Atom`] over constant terms.
    pub fn to_atom(&self) -> Atom {
        Atom::new(self.pred, self.args.iter().map(|&c| Term::Const(c)).collect())
    }

    /// Renders the fact using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayFact<'a> {
        DisplayFact { fact: self, voc }
    }
}

/// Helper for [`Atom::display`].
pub struct DisplayAtom<'a> {
    atom: &'a Atom,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayAtom<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.voc.pred_name(self.atom.pred))?;
        for (i, t) in self.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match t {
                Term::Var(v) => write!(f, "{}", self.voc.var_name(*v))?,
                Term::Const(c) => write!(f, "{}", self.voc.const_name(*c))?,
            }
        }
        write!(f, ")")
    }
}

/// Helper for [`Fact::display`].
pub struct DisplayFact<'a> {
    fact: &'a Fact,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayFact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.voc.pred_name(self.fact.pred))?;
        for (i, c) in self.fact.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.voc.const_name(*c))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocabulary, PredId, VarId, ConstId) {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let x = voc.var("X");
        let a = voc.constant("a");
        (voc, e, x, a)
    }

    #[test]
    fn atom_display_uses_names() {
        let (voc, e, x, a) = setup();
        let atom = Atom::new(e, vec![Term::Var(x), Term::Const(a)]);
        assert_eq!(atom.display(&voc).to_string(), "E(X,a)");
    }

    #[test]
    fn ground_atom_converts_to_fact() {
        let (voc, e, _, a) = setup();
        let atom = Atom::new(e, vec![Term::Const(a), Term::Const(a)]);
        let fact = atom.to_fact().unwrap();
        assert_eq!(fact.display(&voc).to_string(), "E(a,a)");
        assert_eq!(fact.to_atom(), atom);
    }

    #[test]
    fn non_ground_atom_has_no_fact() {
        let (_, e, x, a) = setup();
        let atom = Atom::new(e, vec![Term::Var(x), Term::Const(a)]);
        assert!(atom.to_fact().is_none());
        assert!(!atom.is_ground());
    }

    #[test]
    fn apply_substitutes_only_mapped_vars() {
        let (mut voc, e, x, a) = setup();
        let y = voc.var("Y");
        let atom = Atom::new(e, vec![Term::Var(x), Term::Var(y)]);
        let out = atom.apply(&|v| (v == x).then_some(Term::Const(a)));
        assert_eq!(out.args, vec![Term::Const(a), Term::Var(y)]);
    }

    #[test]
    fn arity_check() {
        let (voc, e, x, _) = setup();
        assert!(!Atom::new(e, vec![Term::Var(x)]).check_arity(&voc));
        assert!(Atom::new(e, vec![Term::Var(x), Term::Var(x)]).check_arity(&voc));
    }
}
