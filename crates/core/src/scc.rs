//! Deterministic strongly connected components over small index graphs.
//!
//! One Kosaraju condensation shared by every analysis that walks a
//! dependency graph: the hygiene linter's predicate-dependency
//! reachability (B005), `bddfc-analyze`'s position-graph abstract
//! interpretation and its schema-level reachability and fan-in lints.
//!
//! The input is an adjacency list over node indices `0..n`; the output
//! assigns each node a component id. Two guarantees every caller leans
//! on:
//!
//! * **Determinism** — ids are a pure function of the adjacency list
//!   (DFS orders come from the sorted successor sets), so derived
//!   reports are byte-identical across runs and thread counts.
//! * **Topological numbering** — for every edge `u → v`,
//!   `comp[u] <= comp[v]`, with equality exactly when `u` and `v` are in
//!   the same component. Processing components in increasing id order is
//!   a topological sweep of the condensation DAG; abstract
//!   interpretation passes rely on this to evaluate each component after
//!   all of its predecessors.

use std::collections::BTreeSet;

/// Kosaraju condensation: returns, for each node, its component id.
/// Ids are assigned deterministically from the sorted node order and
/// form a topological numbering of the condensation (see module docs).
pub fn condense(succ: &[BTreeSet<usize>]) -> Vec<usize> {
    let n = succ.len();
    let mut pred: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (u, ss) in succ.iter().enumerate() {
        for &v in ss {
            pred[v].insert(u);
        }
    }
    // Pass 1: finish order on the forward graph (iterative DFS).
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>)> =
            vec![(start, succ[start].iter().copied().collect())];
        visited[start] = true;
        while let Some((u, todo)) = stack.last_mut() {
            match todo.pop() {
                Some(v) if !visited[v] => {
                    visited[v] = true;
                    stack.push((v, succ[v].iter().copied().collect()));
                }
                Some(_) => {}
                None => {
                    order.push(*u);
                    stack.pop();
                }
            }
        }
    }
    // Pass 2: components on the reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next;
        while let Some(u) = stack.pop() {
            for &v in &pred[u] {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// The number of components in a [`condense`] result.
pub fn component_count(comp: &[usize]) -> usize {
    comp.iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> Vec<BTreeSet<usize>> {
        let mut succ = vec![BTreeSet::new(); n];
        for &(u, v) in edges {
            succ[u].insert(v);
        }
        succ
    }

    #[test]
    fn cycle_collapses_and_dag_orders() {
        // 0 -> 1 <-> 2 -> 3: components {0}, {1,2}, {3}.
        let comp = condense(&graph(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]));
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[3]);
        assert_eq!(component_count(&comp), 3);
    }

    #[test]
    fn numbering_is_topological_on_every_edge() {
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (1, 5), (5, 5)];
        let succ = graph(6, &edges);
        let comp = condense(&succ);
        for &(u, v) in &edges {
            assert!(comp[u] <= comp[v], "edge {u}->{v}: comp {} > {}", comp[u], comp[v]);
        }
        // Same component exactly for the two cycles.
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn empty_and_isolated_nodes() {
        assert!(condense(&[]).is_empty());
        let comp = condense(&graph(3, &[]));
        assert_eq!(component_count(&comp), 3);
        // Deterministic: isolated nodes number in node order.
        assert_eq!(comp, condense(&graph(3, &[])));
    }
}
