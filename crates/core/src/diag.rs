//! The diagnostic model: codes, severities, rendered text and JSON.
//!
//! Every analysis in the workspace — the hygiene and class lints of
//! `bddfc-lint`, the static analyzer of `bddfc-analyze` — produces
//! [`Diagnostic`] values with a stable code (`B0xx` hygiene, `B1xx`
//! class membership, `B2xx` performance), a severity, an optional
//! primary [`SrcSpan`] and free-form secondary notes carrying the
//! witness details. Rendering — both the rustc-style text and the
//! `--json` form — is a pure function of the diagnostic, and
//! [`LintReport::sort`] fixes a total order, so output is byte-identical
//! across runs and thread counts.
//!
//! The model lives in `bddfc-core` (rather than the lint crate) so that
//! any crate can emit diagnostics without depending on the linter;
//! `bddfc_lint::diag` re-exports everything here for compatibility.
//!
//! [`CODES`] is the registry of every stable code: its fixed severity,
//! a one-line summary and a rustc-`--explain`-style long explanation.
//! A drift-guard test asserts that the registry, the markdown code
//! tables in module docs, and the set of codes actually emitted by
//! workspace code never diverge.

use crate::obs::json_escape;
use crate::SrcSpan;
use std::fmt;

/// How bad a diagnostic is. The order is `Note < Warning < Error`;
/// `--deny <level>` fails a run containing any diagnostic at or above
/// the level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (e.g. class-membership facts).
    Note,
    /// Probably a defect; the program still means something.
    Warning,
    /// The program is broken (parse error, unsafe rule).
    Error,
}

impl Severity {
    /// Parses a `--deny` level name.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a stable code, severity, message, optional primary span
/// and witness notes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"B101"`. Codes never change meaning.
    pub code: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// One-line primary message.
    pub message: String,
    /// Primary source span (absent for theory-level findings or
    /// programmatically built rules).
    pub span: Option<SrcSpan>,
    /// Secondary lines carrying the witness (missed guard variables,
    /// marking derivations, cycle edges, …).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        span: Option<SrcSpan>,
    ) -> Self {
        Diagnostic { code, severity, message: message.into(), span, notes: Vec::new() }
    }

    /// Appends a secondary note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic rustc-style:
    ///
    /// ```text
    /// warning[B103]: theory is not weakly acyclic: ...
    ///   --> chain.dlg:1:1
    ///    = note: special edge E[1] -> E[1] induced by rule #0
    /// ```
    pub fn render(&self, file: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            out.push_str(&format!("  --> {file}:{span}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("   = note: {note}\n"));
        }
        out
    }

    /// The diagnostic as one JSON object (fixed key order, no
    /// whitespace) — a deterministic function of the diagnostic.
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",",
            self.code,
            self.severity,
            json_escape(&self.message)
        );
        match self.span {
            Some(s) => {
                let _ = write!(
                    out,
                    "\"span\":{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}},",
                    s.line, s.col, s.end_line, s.end_col
                );
            }
            None => out.push_str("\"span\":null,"),
        }
        out.push_str("\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(n));
        }
        out.push_str("]}");
        out
    }
}

/// All diagnostics for one input, under its display name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintReport {
    /// Display name of the input (file path or zoo program name).
    pub file: String,
    /// The findings, in [`LintReport::sort`] order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates a report and puts the diagnostics into canonical order:
    /// by span start (spanless first), then code, then message.
    pub fn new(file: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> Self {
        Self::sort(&mut diagnostics);
        LintReport { file: file.into(), diagnostics }
    }

    /// Canonical diagnostic order (see [`LintReport::new`]).
    pub fn sort(diagnostics: &mut [Diagnostic]) {
        diagnostics.sort_by(|a, b| {
            let key = |d: &Diagnostic| {
                (
                    d.span.map_or((0, 0), |s| (s.line, s.col)),
                    d.code,
                    d.message.clone(),
                )
            };
            key(a).cmp(&key(b))
        });
    }

    /// The worst severity present, if any diagnostic exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Renders every diagnostic rustc-style, separated by blank lines,
    /// followed by a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.file));
            out.push('\n');
        }
        let (e, w, n) = self.counts();
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s)\n",
            self.file, e, w, n
        ));
        out
    }

    /// `(errors, warnings, notes)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warning => c.1 += 1,
                Severity::Note => c.2 += 1,
            }
        }
        c
    }

    /// The report as one JSON object (fixed key order, no whitespace).
    pub fn json(&self) -> String {
        let mut out = format!("{{\"file\":\"{}\",\"diagnostics\":[", json_escape(&self.file));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.json());
        }
        out.push_str("]}");
        out
    }
}

/// Renders several reports as the `bddfc-lint --json` document: one
/// line, fixed key order, reports in input order.
pub fn reports_json(reports: &[LintReport]) -> String {
    let mut out = String::from("{\"schema\":1,\"files\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.json());
    }
    out.push_str("]}");
    out
}

/// Registry metadata for one stable diagnostic code.
#[derive(Clone, Copy, Debug)]
pub struct CodeInfo {
    /// The stable code, e.g. `"B103"`.
    pub code: &'static str,
    /// The severity every diagnostic with this code carries.
    pub severity: Severity,
    /// One-line summary, matching the module-doc code tables.
    pub summary: &'static str,
    /// Long-form explanation (`bddfc-lint --explain`), rustc-style:
    /// what the finding means, why it matters, how to address it.
    pub explain: &'static str,
}

/// The registry of every stable diagnostic code in the workspace, in
/// code order. `bddfc-lint --explain` renders the long explanations;
/// the docs-vs-code drift guard keeps this, the module-doc tables and
/// the emitting code in sync.
pub static CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "B000",
        severity: Severity::Error,
        summary: "source does not parse",
        explain: "\
The input is not a syntactically valid Datalog∃ program, so no analysis
can run. The message carries the parser's error and the span points at
the first offending character.

There is nothing to configure away: fix the syntax. The grammar is
facts `P(a,b).`, rules `P(X,Y), Q(Y,Z) -> exists W . R(X,W).` and
queries `?- P(X,Y).`; see DESIGN.md for the full format.",
    },
    CodeInfo {
        code: "B001",
        severity: Severity::Error,
        summary: "unsafe rule (empty body)",
        explain: "\
A rule with an empty body holds vacuously of everything — the classical
safety violation. Such a rule has no finite semantics under the chase:
there is no binding of body variables to drive it, so engines either
reject it or silently never fire it.

The parser cannot produce an empty-body rule, but programmatically
built theories can. Give the rule at least one body atom, or assert the
intended conclusion as a fact.",
    },
    CodeInfo {
        code: "B002",
        severity: Severity::Warning,
        summary: "singleton variable (dropped, not `_`-prefixed)",
        explain: "\
A variable that occurs exactly once in its rule binds a value and then
drops it. That is either a typo (a join that was meant to connect two
atoms does not) or an intentional projection.

Existential head variables legitimately occur once (the witness
position) and are not flagged. If the drop is intentional, prefix the
name with an underscore (`_X`) to document it and silence the lint.",
    },
    CodeInfo {
        code: "B003",
        severity: Severity::Note,
        summary: "head-only predicate (derived but never used)",
        explain: "\
The predicate appears in rule heads, so the chase spends work deriving
its facts, but no rule body and no query ever reads it. The derived
facts are write-only.

This is harmless but wasteful; it usually indicates a rule that
outlived the query it once fed. Delete the rules deriving it, or add
the query that was meant to consume it.",
    },
    CodeInfo {
        code: "B004",
        severity: Severity::Warning,
        summary: "body-only predicate (can never hold a fact)",
        explain: "\
The predicate appears in rule bodies, but no fact asserts it and no
rule head can derive it. Its extension is empty in every model, so
every rule whose body mentions it is dead code.

Check for a misspelled predicate name first — that is the common cause.
Otherwise add the missing facts or rules, or delete the dead rules.",
    },
    CodeInfo {
        code: "B005",
        severity: Severity::Warning,
        summary: "unreachable rule (body predicate in a dependency component unreachable from any fact)",
        explain: "\
Condensing the predicate-dependency graph (body predicate → head
predicate) into strongly connected components and walking the DAG from
the predicates that hold facts, this rule's body mentions a predicate
in a component no fact can ever reach. The rule can never fire on this
instance.

Reachability over-approximates derivability, so every report is sound.
Unlike B004 the predicate may have rules deriving it — but those rules
are themselves starved. Seed the component with a fact, or remove the
rule cluster. (B203 is the schema-level analogue that ignores the
instance and seeds from EDB predicates instead.)",
    },
    CodeInfo {
        code: "B006",
        severity: Severity::Warning,
        summary: "duplicate rule (equal up to variable renaming)",
        explain: "\
Two rules are identical up to a consistent renaming of variables (atom
order sensitive). The later rule is flagged, with a note pointing back
at the first occurrence. Duplicate rules double the work of every chase
round over their bodies and usually indicate a copy-paste error.

Delete one of the two. If the rules were meant to differ, the
difference was lost — compare the join structure of their bodies.",
    },
    CodeInfo {
        code: "B101",
        severity: Severity::Note,
        summary: "rule has no guard (outside guarded Datalog∃, §5.6)",
        explain: "\
No single body atom of this rule contains every body variable, so the
rule is not guarded. Guarded Datalog∃ (paper §5.6) enjoys decidable
reasoning; an unguarded rule places the theory outside that fragment.

This is a class-membership fact, not a defect. The notes list, per
body atom, a variable it misses — making the missing guard concrete.
If guardedness matters for your use, restructure the rule so one atom
covers all body variables.",
    },
    CodeInfo {
        code: "B102",
        severity: Severity::Note,
        summary: "sticky marking poisons a join variable (Calì–Gottlob–Pieris)",
        explain: "\
The sticky-marking procedure of Calì, Gottlob and Pieris marks the
positions whose values a rule application can drop; stickiness demands
that no variable occurring more than once in a body (a join variable)
sits only in marked positions. Here the marking derivation reaches a
join variable, so the theory is not sticky.

The notes replay the marking derivation step by step — each line names
the rule that propagates the mark. Sticky theories are FC (PAPERS.md,
\"Converging to the Chase\"), so leaving the class costs that guarantee.",
    },
    CodeInfo {
        code: "B103",
        severity: Severity::Warning,
        summary: "special-edge cycle: weak acyclicity unprovable, chase may not terminate",
        explain: "\
The position dependency graph — regular edges copy a frontier variable
from a body position to a head position, special edges connect body
positions to positions where an existential variable invents a fresh
null — has a cycle through a special edge. Fresh nulls can then feed
the positions that create more fresh nulls, and the chase may diverge.

This is the one class lint with an operational consequence, hence the
warning severity: an unbounded chase over this theory is not guaranteed
to terminate, `bddfc-analyze` will refuse to certify a depth bound, and
`bddfc-serve --deny-unbounded` will refuse to load the theory. The
notes list the cycle edge by edge with the inducing rules. Breaking any
special edge on the cycle (e.g. reusing a frontier variable instead of
an existential) restores weak acyclicity.",
    },
    CodeInfo {
        code: "B104",
        severity: Severity::Note,
        summary: "TGD outside the Theorem 3 fragment (> 1 frontier variable)",
        explain: "\
Theorem 3 of the paper proves the BDD/FC equivalence for TGDs whose
frontier (the variables shared between body and head) has at most one
variable. This TGD's frontier is wider, so the theory sits outside
that fragment and the theorem's argument does not apply to it directly.

This is a class-membership fact, not a defect.",
    },
    CodeInfo {
        code: "B105",
        severity: Severity::Note,
        summary: "predicate arity > 2: outside the binary scope of Theorem 1",
        explain: "\
Theorem 1 of the paper is stated for binary signatures. A predicate of
arity three or more places the theory outside that scope; the paper's
own constructions (and this repo's certifier for it) do not cover it.

This is a class-membership fact, not a defect.",
    },
    CodeInfo {
        code: "B201",
        severity: Severity::Warning,
        summary: "cross-product join in a rule body (disconnected atoms)",
        explain: "\
Viewing the rule body as a graph whose vertices are atoms and whose
edges are shared variables, the body is disconnected: some pair of
atoms shares no variable, directly or transitively. Evaluating the
body must then form the full cross product of the disconnected groups'
bindings — cost multiplies instead of filtering.

The join planner orders disconnected atoms last to delay the blow-up,
but cannot avoid it. If the cross product is unintentional, add the
missing join variable. If it is intentional (e.g. a guard atom testing
non-emptiness), consider splitting the rule.",
    },
    CodeInfo {
        code: "B202",
        severity: Severity::Warning,
        summary: "join variable with no selective binding position",
        explain: "\
A variable occurring in two or more body atoms drives a join, and the
join is cheap exactly when at least one of its positions ranges over a
small set of values. The static domain analysis found no bound for any
position this variable occupies — every binding position looks
unbounded (the position sits downstream of an unbounded null-creating
cycle or a saturated domain product).

The join over this variable may degenerate to comparing two large
relations. Restructuring the rule so the variable also occurs at a
position fed only by base constants gives the planner a selective side
to probe from.",
    },
    CodeInfo {
        code: "B203",
        severity: Severity::Warning,
        summary: "rule unreachable from any EDB predicate under the condensation",
        explain: "\
Condensing the predicate-dependency graph and seeding reachability
from the EDB predicates (those appearing in no rule head — the
predicates only an input database can populate), this rule's body
mentions a predicate whose component no EDB predicate feeds. Whatever
instance arrives, the rule can only fire if the input asserts facts
for a derived (IDB) predicate directly.

This is the schema-level analogue of B005: B005 consults the concrete
instance's facts, B203 only the rule structure. A rule flagged by B203
but not B005 is being kept alive by facts asserted on an IDB
predicate — usually a smell in the data, sometimes an intended
override. Introduce a base predicate feeding the component, or accept
the coupling to the instance.

Programs with no EDB predicate at all (every predicate occurs in some
rule head) are exempt: such schemas draw no base/derived line, so the
convention is plainly facts on derived predicates.",
    },
    CodeInfo {
        code: "B204",
        severity: Severity::Note,
        summary: "delta-irrelevant rule (derivations no body or query consumes)",
        explain: "\
Every head predicate of this rule is read by no rule body and no
query. Under semi-naive evaluation the rule still joins its body
against every delta round, and under incremental maintenance
(bddfc-serve) every insert and retract pays to keep its derivations
up to date — work whose results nothing downstream observes.

Per-predicate B003 reports the same situation from the predicate's
side; B204 flags the rule whose evaluation cost is wasted. Delete the
rule or add the consumer it was written for.",
    },
    CodeInfo {
        code: "B205",
        severity: Severity::Note,
        summary: "high fan-in recursive predicate: DRed over-deletion can go quadratic",
        explain: "\
The predicate is recursive (its dependency component contains a cycle)
and is derived by many distinct rule/head-atom pairs. Under
delete-and-rederive (DRed) maintenance, retracting one base fact
over-deletes everything derivable through it and then re-derives what
survives; with heavy fan-in each over-deleted fact has many alternative
derivations to re-check, and the cascade's cost can grow quadratically
in the retracted region.

This is a capacity planning note, not a defect: retract-heavy
workloads over this predicate will be the service's slow path (watch
the slow-query log). Counting-based maintenance, which tracks
derivation multiplicities to skip the cascade, is the standard remedy
(see ROADMAP).",
    },
];

/// Looks up a code (e.g. `"B103"`) in [`CODES`].
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_parse() {
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warning"), Some(Severity::Warning));
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn render_includes_code_span_and_notes() {
        let d = Diagnostic::new(
            "B101",
            Severity::Note,
            "rule has no guard",
            Some(SrcSpan::new(3, 1, 3, 20)),
        )
        .with_note("body atom `E(X,Y)` misses `Z`");
        let s = d.render("t.dlg");
        assert!(s.contains("note[B101]: rule has no guard"), "{s}");
        assert!(s.contains("--> t.dlg:3:1"), "{s}");
        assert!(s.contains("= note: body atom"), "{s}");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let d = Diagnostic::new("B000", Severity::Error, "bad \"quote\"", None);
        assert_eq!(
            d.json(),
            "{\"code\":\"B000\",\"severity\":\"error\",\
             \"message\":\"bad \\\"quote\\\"\",\"span\":null,\"notes\":[]}"
        );
    }

    #[test]
    fn sort_is_total_and_span_first() {
        let a = Diagnostic::new("B002", Severity::Warning, "x", Some(SrcSpan::new(2, 1, 2, 5)));
        let b = Diagnostic::new("B103", Severity::Warning, "y", None);
        let report = LintReport::new("t", vec![a.clone(), b.clone()]);
        assert_eq!(report.diagnostics, vec![b, a]);
    }

    #[test]
    fn registry_is_sorted_unique_and_complete() {
        let codes: Vec<&str> = CODES.iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "registry must be sorted and duplicate-free");
        assert!(code_info("B103").is_some());
        assert!(code_info("B999").is_none());
        for c in CODES {
            assert!(!c.summary.is_empty() && !c.explain.is_empty(), "{}", c.code);
            assert!(
                c.explain.lines().all(|l| l.len() <= 79),
                "{}: explanation lines must fit a terminal",
                c.code
            );
        }
    }
}
