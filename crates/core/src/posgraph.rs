//! The position dependency graph of a theory, with witnesses.
//!
//! Weak acyclicity (Fagin, Kolaitis, Miller & Popa) is the classical
//! chase-termination condition: build a graph over predicate *positions*
//! with a **regular** edge wherever a rule copies a body variable into a
//! head position and a **special** edge from every body variable position
//! into every existentially quantified head position; the theory is
//! weakly acyclic iff no cycle passes through a special edge.
//!
//! `bddfc_classes::recognize::is_weakly_acyclic` answers that question
//! with a bare boolean. This module keeps the whole graph around — every
//! edge remembers the rule that induced it — so a failure can be reported
//! as an explicit special-edge cycle, checkable by anyone without
//! re-running the analysis. It lives in `bddfc_core` (rather than the
//! classes crate) so the chase engine can consult it before an unbounded
//! run without creating a dependency cycle.
//!
//! All derived artefacts (edge order, the chosen cycle) are deterministic
//! functions of the theory: construction sorts edges and the cycle search
//! walks them in that order, so repeated runs — at any thread count —
//! report the identical witness.

use crate::rule::Theory;
use crate::symbols::{PredId, Vocabulary};
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A predicate position: the `arg`-th argument slot of `pred` (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// The predicate.
    pub pred: PredId,
    /// The 0-based argument position.
    pub arg: usize,
}

impl Pos {
    /// Renders the position as `P[i]` using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayPos<'a> {
        DisplayPos { pos: self, voc }
    }
}

/// Helper for [`Pos::display`].
pub struct DisplayPos<'a> {
    pos: &'a Pos,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayPos<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.voc.pred_name(self.pos.pred), self.pos.arg)
    }
}

/// Whether an edge copies a variable (regular) or feeds an existential
/// witness (special).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// A body variable is copied into this head position.
    Regular,
    /// The head position holds an existentially quantified variable.
    Special,
}

/// One labeled edge of the position dependency graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source position (a body occurrence of some variable).
    pub from: Pos,
    /// Target position (a head occurrence).
    pub to: Pos,
    /// Regular (variable copy) or special (existential witness).
    pub kind: EdgeKind,
    /// Index into [`Theory::rules`] of the (first) rule inducing the edge.
    pub rule: usize,
}

/// The position dependency graph of a theory.
///
/// Edges are deduplicated by `(from, to, kind)` — keeping the smallest
/// inducing rule index — and stored sorted, so everything derived from
/// the graph is a deterministic function of the theory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PosGraph {
    edges: Vec<Edge>,
}

impl PosGraph {
    /// Builds the graph of `theory`.
    ///
    /// For every rule, every body position `(p, i)` holding a variable
    /// `v` contributes a regular edge to each head position holding `v`
    /// and a special edge to each head position holding an existential
    /// variable of the rule — the exact edge set walked by
    /// `bddfc_classes::recognize::is_weakly_acyclic`.
    pub fn new(theory: &Theory) -> Self {
        let mut dedup: BTreeMap<(Pos, Pos, EdgeKind), usize> = BTreeMap::new();
        for (ri, rule) in theory.rules.iter().enumerate() {
            let ex = rule.existential_vars();
            for atom in &rule.body {
                for (i, t) in atom.args.iter().enumerate() {
                    let Term::Var(v) = t else { continue };
                    let from = Pos { pred: atom.pred, arg: i };
                    for head in &rule.head {
                        for (j, ht) in head.args.iter().enumerate() {
                            let to = Pos { pred: head.pred, arg: j };
                            match ht {
                                Term::Var(w) if w == v => {
                                    dedup
                                        .entry((from, to, EdgeKind::Regular))
                                        .or_insert(ri);
                                }
                                Term::Var(w) if ex.contains(w) => {
                                    dedup
                                        .entry((from, to, EdgeKind::Special))
                                        .or_insert(ri);
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        let edges = dedup
            .into_iter()
            .map(|((from, to, kind), rule)| Edge { from, to, kind, rule })
            .collect();
        PosGraph { edges }
    }

    /// All edges, sorted by `(from, to, kind)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Is the theory weakly acyclic (no cycle through a special edge)?
    pub fn is_weakly_acyclic(&self) -> bool {
        self.special_cycle().is_none()
    }

    /// A cycle through a special edge, as a chained edge sequence
    /// (`e[k].to == e[k+1].from`, wrapping around), or `None` when the
    /// theory is weakly acyclic.
    ///
    /// The first edge is always special. Among the candidates, the
    /// lexicographically smallest special edge whose target reaches its
    /// source wins, and the return path is a BFS-shortest path — so the
    /// witness is deterministic.
    pub fn special_cycle(&self) -> Option<Vec<Edge>> {
        // Adjacency over the sorted edge list keeps the BFS deterministic.
        let mut adj: BTreeMap<Pos, Vec<usize>> = BTreeMap::new();
        for (idx, e) in self.edges.iter().enumerate() {
            adj.entry(e.from).or_default().push(idx);
        }
        for e in &self.edges {
            if e.kind != EdgeKind::Special {
                continue;
            }
            if let Some(path) = self.bfs_path(&adj, e.to, e.from) {
                let mut cycle = vec![*e];
                cycle.extend(path);
                return Some(cycle);
            }
        }
        None
    }

    /// BFS-shortest edge path `from →* to` (empty when `from == to`).
    fn bfs_path(
        &self,
        adj: &BTreeMap<Pos, Vec<usize>>,
        from: Pos,
        to: Pos,
    ) -> Option<Vec<Edge>> {
        if from == to {
            return Some(Vec::new());
        }
        // parent[pos] = edge index that first reached pos.
        let mut parent: BTreeMap<Pos, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(p) = queue.pop_front() {
            for &idx in adj.get(&p).into_iter().flatten() {
                let e = &self.edges[idx];
                if e.to == from || parent.contains_key(&e.to) {
                    continue;
                }
                parent.insert(e.to, idx);
                if e.to == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let idx = parent[&cur];
                        path.push(self.edges[idx]);
                        cur = self.edges[idx].from;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.to);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_into;

    fn theory(src: &str) -> (Theory, Vocabulary) {
        let mut voc = Vocabulary::new();
        let (t, _, _) = parse_into(src, &mut voc).unwrap();
        (t, voc)
    }

    fn assert_chained(cycle: &[Edge]) {
        assert!(!cycle.is_empty());
        assert_eq!(cycle[0].kind, EdgeKind::Special);
        for k in 0..cycle.len() {
            let next = &cycle[(k + 1) % cycle.len()];
            assert_eq!(cycle[k].to, next.from, "cycle edges must chain");
        }
    }

    #[test]
    fn successor_rule_has_special_self_cycle() {
        let (t, _) = theory("E(X,Y) -> exists Z . E(Y,Z).");
        let g = PosGraph::new(&t);
        assert!(!g.is_weakly_acyclic());
        let cycle = g.special_cycle().unwrap();
        assert_chained(&cycle);
    }

    #[test]
    fn datalog_only_theory_is_weakly_acyclic() {
        let (t, _) = theory("E(X,Y), E(Y,Z) -> E(X,Z).");
        let g = PosGraph::new(&t);
        assert!(g.is_weakly_acyclic());
        // Regular edges still exist and name their inducing rule.
        assert!(!g.edges().is_empty());
        assert!(g.edges().iter().all(|e| e.kind == EdgeKind::Regular && e.rule == 0));
    }

    #[test]
    fn acyclic_generation_is_weakly_acyclic() {
        let (t, _) = theory("P(X) -> exists Z . E(X,Z). E(X,Y) -> U(Y).");
        assert!(PosGraph::new(&t).is_weakly_acyclic());
    }

    #[test]
    fn cycle_through_two_rules_is_found() {
        // Special edge E[1] -> U[1]; regular path U[1] -> E[1] via rule 1.
        let (t, _) = theory("E(X,Y) -> exists Z . U(Y,Z). U(X,Y) -> E(X,Y).");
        let g = PosGraph::new(&t);
        let cycle = g.special_cycle().unwrap();
        assert_chained(&cycle);
        assert!(cycle.len() >= 2);
        assert!(cycle.iter().any(|e| e.rule == 0) && cycle.iter().any(|e| e.rule == 1));
    }

    #[test]
    fn witness_is_deterministic() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).
                   E(X,Y), E(Y,Z) -> E(X,Z).
                   U(X) -> exists Z . E(X,Z).";
        let (t, _) = theory(src);
        let a = PosGraph::new(&t).special_cycle().unwrap();
        let b = PosGraph::new(&t).special_cycle().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pos_display_uses_pred_names() {
        let (t, voc) = theory("E(X,Y) -> exists Z . E(Y,Z).");
        let g = PosGraph::new(&t);
        let e = g.edges()[0];
        let s = format!("{} -> {}", e.from.display(&voc), e.to.display(&voc));
        assert!(s.contains("E["), "{s}");
    }
}
