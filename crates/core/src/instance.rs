//! Database instances: indexed stores of ground facts.
//!
//! An [`Instance`] is the paper's "database instance … a set of facts".
//! By-predicate lookups are served by a [`FactIndex`], position-constrained
//! lookups by a [`ColumnarStore`] mirror (struct-of-arrays per predicate,
//! also the batched join kernel's input), both kept incrementally up to
//! date on insert, alongside the set of all facts for O(1) duplicate
//! detection. The by-element access paths (active domain, element posting
//! lists) live off the chase hot path: they are built lazily on first use
//! and invalidated by the next insert.

use crate::columnar::ColumnarStore;
use crate::fxhash::{FxHashMap, FxHashSet, FxHasher};
use crate::index::FactIndex;
use crate::symbols::{ConstId, PredId, Vocabulary};
use crate::term::Fact;
use std::fmt;
use std::hash::Hasher;
use std::sync::OnceLock;

pub use crate::index::FactIdx;

/// The lazily-built by-element access paths: element posting lists
/// (which double as the active domain, their key set).
#[derive(Clone, Debug, Default)]
struct ElemIndex {
    by_const: FxHashMap<ConstId, Vec<FactIdx>>,
}

impl ElemIndex {
    fn build(facts: &[Fact]) -> Self {
        let mut by_const: FxHashMap<ConstId, Vec<FactIdx>> = FxHashMap::default();
        for (idx, fact) in facts.iter().enumerate() {
            for (pos, &c) in fact.args.iter().enumerate() {
                // Record each fact once per *distinct* element it contains.
                if fact.args[..pos].iter().all(|&p| p != c) {
                    by_const.entry(c).or_default().push(idx);
                }
            }
        }
        ElemIndex { by_const }
    }
}

/// Content hash of a ground fact, computable from `(pred, args)` without
/// materializing a [`Fact`] — the duplicate-detection key.
fn fact_hash(pred: PredId, args: &[ConstId]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(pred.0);
    for &c in args {
        h.write_u32(c.0);
    }
    h.finish()
}

/// An indexed set of ground facts over interned symbols.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    facts: Vec<Fact>,
    /// Content-hash duplicate table: fact hash -> index of the first fact
    /// stored with that hash. True 64-bit collisions between *distinct*
    /// facts spill to `collisions`, which stays empty in practice.
    by_hash: FxHashMap<u64, FactIdx>,
    collisions: Vec<FactIdx>,
    index: FactIndex,
    columnar: ColumnarStore,
    elems: OnceLock<ElemIndex>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        let hash = fact_hash(fact.pred, &fact.args);
        if self.lookup(hash, fact.pred, &fact.args).is_some() {
            return false;
        }
        self.insert_new(hash, fact);
        true
    }

    /// Inserts the ground fact `pred(args)` if new (allocating only in
    /// that case); returns `true` if it was new. The allocation-free
    /// duplicate path is what the chase's repair loop leans on.
    pub fn insert_ground(&mut self, pred: PredId, args: &[ConstId]) -> bool {
        let hash = fact_hash(pred, args);
        if self.lookup(hash, pred, args).is_some() {
            return false;
        }
        self.insert_new(hash, Fact::new(pred, args.to_vec()));
        true
    }

    /// Reserves room for at least `additional` more facts in the fact
    /// list and the duplicate table, so a caller about to apply a known
    /// batch of insertions (the chase repair loop) avoids incremental
    /// rehashing of the content-hash table mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        self.facts.reserve(additional);
        self.by_hash.reserve(additional);
    }

    /// The stored index of `pred(args)` under its content `hash`, if any.
    fn lookup(&self, hash: u64, pred: PredId, args: &[ConstId]) -> Option<FactIdx> {
        if let Some(&idx) = self.by_hash.get(&hash) {
            let f = &self.facts[idx];
            if f.pred == pred && f.args == args {
                return Some(idx);
            }
            // A different fact owns this hash slot: scan the spill list.
            return self
                .collisions
                .iter()
                .copied()
                .find(|&i| self.facts[i].pred == pred && self.facts[i].args == args);
        }
        None
    }

    fn insert_new(&mut self, hash: u64, fact: Fact) {
        let idx = self.facts.len();
        match self.by_hash.entry(hash) {
            // A different fact owns this hash slot (a true 64-bit
            // collision): the newcomer spills, the owner stays.
            std::collections::hash_map::Entry::Occupied(_) => self.collisions.push(idx),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(idx);
            }
        }
        self.index.insert(idx, &fact);
        self.columnar.push(&fact);
        self.elems.take();
        self.facts.push(fact);
    }

    /// The by-element access paths, built on first use after an insert.
    fn elems(&self) -> &ElemIndex {
        self.elems.get_or_init(|| ElemIndex::build(&self.facts))
    }

    /// Inserts every fact from an iterator; returns how many were new.
    pub fn extend<I: IntoIterator<Item = Fact>>(&mut self, facts: I) -> usize {
        facts.into_iter().filter(|f| self.insert(f.clone())).count()
    }

    /// Does the instance contain this exact fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.contains_ground(fact.pred, &fact.args)
    }

    /// Does the instance contain the ground fact `pred(args)`? Probes the
    /// content-hash table directly, so callers (like the chase's head
    /// checks) never materialize a [`Fact`] just to ask.
    pub fn contains_ground(&self, pred: PredId, args: &[ConstId]) -> bool {
        self.lookup(fact_hash(pred, args), pred, args).is_some()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All facts, in insertion order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The fact stored at `idx`.
    pub fn fact(&self, idx: FactIdx) -> &Fact {
        &self.facts[idx]
    }

    /// The access-path index over this instance's facts.
    pub fn index(&self) -> &FactIndex {
        &self.index
    }

    /// The columnar (struct-of-arrays) mirror of this instance's facts,
    /// per predicate in insertion order; the batched join kernel's input.
    pub fn columnar(&self) -> &ColumnarStore {
        &self.columnar
    }

    /// Indexes of facts with the given predicate.
    pub fn facts_with_pred(&self, pred: PredId) -> &[FactIdx] {
        self.index.with_pred(pred)
    }

    /// Indexes of facts with the given predicate and element `c` at
    /// argument position `pos` (computed from the columnar postings;
    /// rows of `pred`'s relation map to global indexes via
    /// [`Instance::facts_with_pred`]).
    pub fn facts_with_pred_pos_const(&self, pred: PredId, pos: usize, c: ConstId) -> Vec<FactIdx> {
        let with_pred = self.index.with_pred(pred);
        match self.columnar.relation(pred) {
            Some(rel) => rel.matching(pos, c).iter().map(|&r| with_pred[r as usize]).collect(),
            None => Vec::new(),
        }
    }

    /// Indexes of all facts containing the element `c` (each fact listed
    /// once, regardless of how many positions `c` fills).
    pub fn facts_with_element(&self, c: ConstId) -> &[FactIdx] {
        self.elems().by_const.get(&c).map_or(&[], |v| v.as_slice())
    }

    /// The active domain: every element occurring in some fact.
    pub fn domain(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.elems().by_const.keys().copied()
    }

    /// Does the element occur in some fact?
    pub fn in_domain(&self, c: ConstId) -> bool {
        self.elems().by_const.contains_key(&c)
    }

    /// Size of the active domain.
    pub fn domain_size(&self) -> usize {
        self.elems().by_const.len()
    }

    /// The active domain as a sorted vector (deterministic order).
    pub fn sorted_domain(&self) -> Vec<ConstId> {
        let mut v: Vec<ConstId> = self.domain().collect();
        v.sort_unstable();
        v
    }

    /// Is `other` a sub-instance of `self` (the paper's `C₁ ⊨ C₂`)?
    pub fn models(&self, other: &Instance) -> bool {
        other.facts.iter().all(|f| self.contains(f))
    }

    /// Restriction `C ↾ A` to the atoms whose arguments all lie in `A`
    /// (Notation, Section 1.1).
    pub fn restrict_to_elements(&self, elements: &FxHashSet<ConstId>) -> Instance {
        let mut out = Instance::new();
        for f in &self.facts {
            if f.args.iter().all(|c| elements.contains(c)) {
                out.insert(f.clone());
            }
        }
        out
    }

    /// Restriction `C ↾ Σ` to the atoms over the given predicates.
    pub fn restrict_to_preds(&self, preds: &FxHashSet<PredId>) -> Instance {
        let mut out = Instance::new();
        for f in &self.facts {
            if preds.contains(&f.pred) {
                out.insert(f.clone());
            }
        }
        out
    }

    /// The set of predicates actually used by some fact.
    pub fn used_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.index.preds()
    }

    /// Applies an element mapping, producing the homomorphic image
    /// (used by quotient constructions; the paper's "projection").
    pub fn map_elements(&self, f: &impl Fn(ConstId) -> ConstId) -> Instance {
        let mut out = Instance::new();
        for fact in &self.facts {
            out.insert(Fact::new(fact.pred, fact.args.iter().map(|&c| f(c)).collect()));
        }
        out
    }

    /// Renders all facts, sorted, one per line.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayInstance<'a> {
        DisplayInstance { inst: self, voc }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        // Both sides are deduplicated sets, so equal size + inclusion
        // one way is set equality.
        self.facts.len() == other.facts.len() && self.facts.iter().all(|f| other.contains(f))
    }
}

impl Eq for Instance {}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut inst = Instance::new();
        inst.extend(iter);
        inst
    }
}

/// Helper for [`Instance::display`].
pub struct DisplayInstance<'a> {
    inst: &'a Instance,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lines: Vec<String> = self
            .inst
            .facts
            .iter()
            .map(|fact| fact.display(self.voc).to_string())
            .collect();
        lines.sort();
        for line in lines {
            writeln!(f, "{line}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(voc: &mut Vocabulary, n: usize) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        for i in 0..n {
            let a = voc.constant(&format!("a{i}"));
            let b = voc.constant(&format!("a{}", i + 1));
            inst.insert(Fact::new(e, vec![a, b]));
        }
        inst
    }

    #[test]
    fn insert_deduplicates() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let a = voc.constant("a");
        let mut inst = Instance::new();
        assert!(inst.insert(Fact::new(e, vec![a, a])));
        assert!(!inst.insert(Fact::new(e, vec![a, a])));
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.domain_size(), 1);
    }

    #[test]
    fn indexes_answer_lookups() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let a1 = voc.find_const("a1").unwrap();
        assert_eq!(inst.facts_with_pred(e).len(), 3);
        // a1 occurs once in position 0 and once in position 1.
        assert_eq!(inst.facts_with_pred_pos_const(e, 0, a1).len(), 1);
        assert_eq!(inst.facts_with_pred_pos_const(e, 1, a1).len(), 1);
    }

    #[test]
    fn restriction_to_elements() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 3);
        let keep: FxHashSet<ConstId> =
            [voc.find_const("a0").unwrap(), voc.find_const("a1").unwrap()]
                .into_iter()
                .collect();
        let small = inst.restrict_to_elements(&keep);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn models_is_subset_check() {
        let mut voc = Vocabulary::new();
        let big = chain(&mut voc, 4);
        let mut voc2 = voc.clone();
        let small = chain(&mut voc2, 2);
        assert!(big.models(&small));
        assert!(!small.models(&big));
    }

    #[test]
    fn map_elements_collapses() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 2); // E(a0,a1), E(a1,a2)
        let a0 = voc.find_const("a0").unwrap();
        let img = inst.map_elements(&|_| a0);
        assert_eq!(img.len(), 1); // both collapse to E(a0,a0)
        assert_eq!(img.domain_size(), 1);
    }

    #[test]
    fn incremental_index_matches_rebuild() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 10);
        assert_eq!(*inst.index(), FactIndex::rebuild(inst.facts()));
        assert_eq!(*inst.columnar(), ColumnarStore::rebuild(inst.facts()));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 2);
        let s = inst.display(&voc).to_string();
        assert_eq!(s, "E(a0,a1).\nE(a1,a2).\n");
    }
}
