//! Database instances: indexed stores of ground facts.
//!
//! An [`Instance`] is the paper's "database instance … a set of facts".
//! Lookup queries are served by a [`FactIndex`] (by predicate and by
//! `(predicate, position, element)`), kept incrementally up to date on
//! insert; the instance additionally maintains a by-element posting list
//! and the set of all facts for O(1) duplicate detection.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::index::FactIndex;
use crate::symbols::{ConstId, PredId, Vocabulary};
use crate::term::Fact;
use std::fmt;

pub use crate::index::FactIdx;

/// An indexed set of ground facts over interned symbols.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    facts: Vec<Fact>,
    fact_set: FxHashSet<Fact>,
    index: FactIndex,
    by_const: FxHashMap<ConstId, Vec<FactIdx>>,
    domain: FxHashSet<ConstId>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact; returns `true` if it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        if self.fact_set.contains(&fact) {
            return false;
        }
        let idx = self.facts.len();
        self.index.insert(idx, &fact);
        for (pos, &c) in fact.args.iter().enumerate() {
            self.domain.insert(c);
            // Record each fact once per *distinct* element it contains.
            if fact.args[..pos].iter().all(|&p| p != c) {
                self.by_const.entry(c).or_default().push(idx);
            }
        }
        self.fact_set.insert(fact.clone());
        self.facts.push(fact);
        true
    }

    /// Inserts every fact from an iterator; returns how many were new.
    pub fn extend<I: IntoIterator<Item = Fact>>(&mut self, facts: I) -> usize {
        facts.into_iter().filter(|f| self.insert(f.clone())).count()
    }

    /// Does the instance contain this exact fact?
    pub fn contains(&self, fact: &Fact) -> bool {
        self.fact_set.contains(fact)
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the instance empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All facts, in insertion order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The fact stored at `idx`.
    pub fn fact(&self, idx: FactIdx) -> &Fact {
        &self.facts[idx]
    }

    /// The access-path index over this instance's facts.
    pub fn index(&self) -> &FactIndex {
        &self.index
    }

    /// Indexes of facts with the given predicate.
    pub fn facts_with_pred(&self, pred: PredId) -> &[FactIdx] {
        self.index.with_pred(pred)
    }

    /// Indexes of facts with the given predicate and element `c` at
    /// argument position `pos`.
    pub fn facts_with_pred_pos_const(&self, pred: PredId, pos: usize, c: ConstId) -> &[FactIdx] {
        self.index.with_pred_pos_const(pred, pos, c)
    }

    /// Indexes of all facts containing the element `c` (each fact listed
    /// once, regardless of how many positions `c` fills).
    pub fn facts_with_element(&self, c: ConstId) -> &[FactIdx] {
        self.by_const.get(&c).map_or(&[], |v| v.as_slice())
    }

    /// The active domain: every element occurring in some fact.
    pub fn domain(&self) -> impl Iterator<Item = ConstId> + '_ {
        self.domain.iter().copied()
    }

    /// Does the element occur in some fact?
    pub fn in_domain(&self, c: ConstId) -> bool {
        self.domain.contains(&c)
    }

    /// Size of the active domain.
    pub fn domain_size(&self) -> usize {
        self.domain.len()
    }

    /// The active domain as a sorted vector (deterministic order).
    pub fn sorted_domain(&self) -> Vec<ConstId> {
        let mut v: Vec<ConstId> = self.domain.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Is `other` a sub-instance of `self` (the paper's `C₁ ⊨ C₂`)?
    pub fn models(&self, other: &Instance) -> bool {
        other.facts.iter().all(|f| self.contains(f))
    }

    /// Restriction `C ↾ A` to the atoms whose arguments all lie in `A`
    /// (Notation, Section 1.1).
    pub fn restrict_to_elements(&self, elements: &FxHashSet<ConstId>) -> Instance {
        let mut out = Instance::new();
        for f in &self.facts {
            if f.args.iter().all(|c| elements.contains(c)) {
                out.insert(f.clone());
            }
        }
        out
    }

    /// Restriction `C ↾ Σ` to the atoms over the given predicates.
    pub fn restrict_to_preds(&self, preds: &FxHashSet<PredId>) -> Instance {
        let mut out = Instance::new();
        for f in &self.facts {
            if preds.contains(&f.pred) {
                out.insert(f.clone());
            }
        }
        out
    }

    /// The set of predicates actually used by some fact.
    pub fn used_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.index.preds()
    }

    /// Applies an element mapping, producing the homomorphic image
    /// (used by quotient constructions; the paper's "projection").
    pub fn map_elements(&self, f: &impl Fn(ConstId) -> ConstId) -> Instance {
        let mut out = Instance::new();
        for fact in &self.facts {
            out.insert(Fact::new(fact.pred, fact.args.iter().map(|&c| f(c)).collect()));
        }
        out
    }

    /// Renders all facts, sorted, one per line.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayInstance<'a> {
        DisplayInstance { inst: self, voc }
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.fact_set == other.fact_set
    }
}

impl Eq for Instance {}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut inst = Instance::new();
        inst.extend(iter);
        inst
    }
}

/// Helper for [`Instance::display`].
pub struct DisplayInstance<'a> {
    inst: &'a Instance,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lines: Vec<String> = self
            .inst
            .facts
            .iter()
            .map(|fact| fact.display(self.voc).to_string())
            .collect();
        lines.sort();
        for line in lines {
            writeln!(f, "{line}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(voc: &mut Vocabulary, n: usize) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        for i in 0..n {
            let a = voc.constant(&format!("a{i}"));
            let b = voc.constant(&format!("a{}", i + 1));
            inst.insert(Fact::new(e, vec![a, b]));
        }
        inst
    }

    #[test]
    fn insert_deduplicates() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let a = voc.constant("a");
        let mut inst = Instance::new();
        assert!(inst.insert(Fact::new(e, vec![a, a])));
        assert!(!inst.insert(Fact::new(e, vec![a, a])));
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.domain_size(), 1);
    }

    #[test]
    fn indexes_answer_lookups() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let a1 = voc.find_const("a1").unwrap();
        assert_eq!(inst.facts_with_pred(e).len(), 3);
        // a1 occurs once in position 0 and once in position 1.
        assert_eq!(inst.facts_with_pred_pos_const(e, 0, a1).len(), 1);
        assert_eq!(inst.facts_with_pred_pos_const(e, 1, a1).len(), 1);
    }

    #[test]
    fn restriction_to_elements() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 3);
        let keep: FxHashSet<ConstId> =
            [voc.find_const("a0").unwrap(), voc.find_const("a1").unwrap()]
                .into_iter()
                .collect();
        let small = inst.restrict_to_elements(&keep);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn models_is_subset_check() {
        let mut voc = Vocabulary::new();
        let big = chain(&mut voc, 4);
        let mut voc2 = voc.clone();
        let small = chain(&mut voc2, 2);
        assert!(big.models(&small));
        assert!(!small.models(&big));
    }

    #[test]
    fn map_elements_collapses() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 2); // E(a0,a1), E(a1,a2)
        let a0 = voc.find_const("a0").unwrap();
        let img = inst.map_elements(&|_| a0);
        assert_eq!(img.len(), 1); // both collapse to E(a0,a0)
        assert_eq!(img.domain_size(), 1);
    }

    #[test]
    fn incremental_index_matches_rebuild() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 10);
        assert_eq!(*inst.index(), FactIndex::rebuild(inst.facts()));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 2);
        let s = inst.display(&voc).to_string();
        assert_eq!(s, "E(a0,a1).\nE(a1,a2).\n");
    }
}
