//! # bddfc-core — the Datalog∃ substrate
//!
//! Core representations and algorithms shared by every crate in the
//! `bddfc` workspace, the executable companion to Gogacz & Marcinkowski,
//! *On the BDD/FC Conjecture*:
//!
//! * interned symbols and the [`Vocabulary`] ([`symbols`]);
//! * terms, atoms and facts ([`term`]);
//! * indexed database instances ([`instance`]) over the access-path
//!   structure of [`index`] and the columnar relations of [`columnar`];
//! * the batched hash-join kernel and planner ([`join`]) evaluating rule
//!   bodies over whole binding frontiers;
//! * the in-tree hasher ([`fxhash`]) and deterministic PRNG ([`prng`])
//!   that keep the workspace free of external dependencies;
//! * a deterministic std-only fork-join layer ([`par`]) used by every
//!   downstream hot loop;
//! * the unified telemetry layer ([`obs`]) — counters, span timers and
//!   a bounded structured event log — that every engine reports into;
//! * the diagnostic model ([`diag`]) — stable codes, severities, the
//!   rustc-style rendering shared by `bddfc-lint` and `bddfc-analyze`,
//!   and the registry of long-form `--explain` texts;
//! * conjunctive queries and UCQs ([`query`]);
//! * TGDs, datalog rules and theories ([`rule`]);
//! * the backtracking homomorphism engine ([`hom`]);
//! * rule/theory satisfaction and violation enumeration ([`satisfaction`]);
//! * a text format parser ([`parser`]).
//!
//! ## Quick start
//!
//! ```
//! use bddfc_core::{parse_program, hom};
//!
//! let prog = bddfc_core::parse_program(
//!     "E(a,b). E(b,c). E(c,a). ?- E(X,Y), E(Y,Z), E(Z,X).",
//! ).unwrap();
//! assert!(hom::satisfies_cq(&prog.instance, &prog.queries[0]));
//! ```

#![warn(missing_docs)]

pub mod columnar;
pub mod diag;
pub mod fxhash;
pub mod hom;
pub mod index;
pub mod join;
pub mod instance;
pub mod obs;
pub mod par;
pub mod parser;
pub mod posgraph;
pub mod prng;
pub mod query;
pub mod rule;
pub mod satisfaction;
pub mod scc;
pub mod span;
pub mod symbols;
pub mod term;

pub use columnar::ColumnarStore;
pub use diag::{Diagnostic, LintReport, Severity};
pub use hom::Binding;
pub use index::{FactIdx, FactIndex};
pub use instance::Instance;
pub use join::{join_mode, with_join_mode, JoinMode, Priors};
pub use parser::{parse_into, parse_program, parse_query, parse_rule, ParseError, Program};
pub use query::{ConjunctiveQuery, Ucq};
pub use rule::{Rule, RuleKind, Theory};
pub use span::{RuleSpans, SrcSpan};
pub use symbols::{ConstId, PredId, VarId, Vocabulary, MAX_ARITY};
pub use term::{Atom, Fact, Term};
