//! Interned symbols and the [`Vocabulary`] that owns their names.
//!
//! Every logical object in this workspace (predicates, constants, variables)
//! is referred to by a small copyable id. The [`Vocabulary`] is the single
//! source of truth mapping ids back to human-readable names, predicate
//! arities, and the constant/null distinction the paper relies on
//! (`C_con` vs `C_non` in Section 1.1).

use crate::fxhash::FxHashMap;
use std::fmt;

/// Identifier of a relation symbol (predicate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredId(pub u32);

/// Identifier of a domain element: either a named constant from the
/// signature or a labelled null invented by the chase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConstId(pub u32);

/// Identifier of a variable (scoped to a rule or query, but interned
/// globally so that renaming-apart is explicit rather than accidental).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl PredId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ConstId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    /// Index usable for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// String interner storing each name exactly once: ids map to names
/// through `names`, and names map back through a content-hash table keyed
/// by the name's 64-bit hash. The (astronomically rare, but handled)
/// case of two distinct names sharing a hash spills into `collisions`.
#[derive(Clone, Debug, Default)]
struct Interner {
    names: Vec<String>,
    by_hash: FxHashMap<u64, u32>,
    collisions: FxHashMap<String, u32>,
}

fn hash_name(name: &str) -> u64 {
    use std::hash::Hasher;
    let mut h = crate::fxhash::FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
}

impl Interner {
    fn intern(&mut self, name: &str) -> (u32, bool) {
        let h = hash_name(name);
        match self.by_hash.get(&h) {
            Some(&id) if self.names[id as usize] == name => (id, false),
            Some(_) => {
                // Hash collision between distinct names.
                if let Some(&id) = self.collisions.get(name) {
                    return (id, false);
                }
                let id = self.names.len() as u32;
                self.names.push(name.to_owned());
                self.collisions.insert(name.to_owned(), id);
                (id, true)
            }
            None => {
                let id = self.names.len() as u32;
                self.names.push(name.to_owned());
                self.by_hash.insert(h, id);
                (id, true)
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        match self.by_hash.get(&hash_name(name)) {
            Some(&id) if self.names[id as usize] == name => Some(id),
            _ => self.collisions.get(name).copied(),
        }
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// Formats `{head}{prefix}{n}` into `buf` without allocating; returns
/// `None` when the pieces don't fit (callers fall back to `format!`).
fn fmt_counter_name<'b>(buf: &'b mut [u8; 48], head: &str, prefix: &str, n: u64) -> Option<&'b str> {
    const DIGITS: usize = 20; // u64::MAX has 20 decimal digits
    let mut len = 0;
    for part in [head.as_bytes(), prefix.as_bytes()] {
        if len + part.len() + DIGITS > buf.len() {
            return None;
        }
        buf[len..len + part.len()].copy_from_slice(part);
        len += part.len();
    }
    let mut digits = [0u8; DIGITS];
    let mut i = DIGITS;
    let mut v = n;
    loop {
        i -= 1;
        digits[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    buf[len..len + DIGITS - i].copy_from_slice(&digits[i..]);
    len += DIGITS - i;
    // Valid UTF-8 by construction: two `str` slices plus ASCII digits.
    std::str::from_utf8(&buf[..len]).ok()
}

/// Largest predicate arity a [`Vocabulary`] accepts. Posting-list keys in
/// [`crate::columnar::Relation`] store argument positions as `u8`;
/// enforcing the bound at registration keeps those narrow keys exact
/// instead of silently truncating.
pub const MAX_ARITY: usize = 255;

/// Symbol table shared by a theory, its instances and its queries.
///
/// A `Vocabulary` interns three separate namespaces (predicates, domain
/// elements, variables), records predicate arities, and distinguishes
/// *named constants* (part of the signature Σ, the paper's `C_con`) from
/// *labelled nulls* created during the chase (`C_non`).
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    preds: Interner,
    arities: Vec<usize>,
    consts: Interner,
    is_null: Vec<bool>,
    vars: Interner,
    fresh_counter: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a predicate with the given arity.
    ///
    /// # Panics
    /// Panics if the predicate was already interned with a different arity —
    /// arity confusion is always a caller bug — or if `arity` exceeds
    /// [`MAX_ARITY`] (positions are stored as `u8` in the index layers).
    pub fn pred(&mut self, name: &str, arity: usize) -> PredId {
        assert!(
            arity <= MAX_ARITY,
            "predicate {name} registered with arity {arity}, exceeding MAX_ARITY {MAX_ARITY}"
        );
        let (id, new) = self.preds.intern(name);
        if new {
            self.arities.push(arity);
        } else {
            assert_eq!(
                self.arities[id as usize], arity,
                "predicate {name} re-interned with arity {arity}, was {}",
                self.arities[id as usize]
            );
        }
        PredId(id)
    }

    /// Looks up a predicate by name without interning.
    pub fn find_pred(&self, name: &str) -> Option<PredId> {
        self.preds.lookup(name).map(PredId)
    }

    /// Interns a named constant (an element of `C_con`).
    pub fn constant(&mut self, name: &str) -> ConstId {
        let (id, new) = self.consts.intern(name);
        if new {
            self.is_null.push(false);
        }
        ConstId(id)
    }

    /// Looks up a constant by name without interning.
    pub fn find_const(&self, name: &str) -> Option<ConstId> {
        self.consts.lookup(name).map(ConstId)
    }

    /// Creates a fresh labelled null (an element of `C_non`), named
    /// `_<prefix><counter>`. Nulls are guaranteed not to collide with any
    /// named constant because user-facing names may not start with `_`.
    ///
    /// This is on the chase's hot path (one call per existential variable
    /// of every fired trigger), so the candidate name is formatted into a
    /// stack buffer; the single heap allocation is the interned copy.
    pub fn fresh_null(&mut self, prefix: &str) -> ConstId {
        let mut buf = [0u8; 48];
        loop {
            let n = self.fresh_counter;
            self.fresh_counter += 1;
            let owned;
            let name: &str = match fmt_counter_name(&mut buf, "_", prefix, n) {
                Some(s) => s,
                None => {
                    owned = format!("_{prefix}{n}");
                    &owned
                }
            };
            let (id, new) = self.consts.intern(name);
            if new {
                self.is_null.push(true);
                return ConstId(id);
            }
        }
    }

    /// Promotes an existing element to "named constant" status.
    ///
    /// Section 3.2 of the paper extends the signature with "a name for each
    /// element of D" so that database elements keep distinct positive types
    /// (Remark 1); this is the operation implementing that extension.
    pub fn name_element(&mut self, c: ConstId) {
        self.is_null[c.index()] = false;
    }

    /// Is this element a labelled null (not the interpretation of any
    /// signature constant)?
    pub fn is_null(&self, c: ConstId) -> bool {
        self.is_null[c.index()]
    }

    /// Interns a variable.
    pub fn var(&mut self, name: &str) -> VarId {
        VarId(self.vars.intern(name).0)
    }

    /// Creates a fresh variable guaranteed distinct from all interned ones.
    pub fn fresh_var(&mut self, prefix: &str) -> VarId {
        loop {
            let name = format!("{prefix}#{}", self.fresh_counter);
            self.fresh_counter += 1;
            let (id, new) = self.vars.intern(&name);
            if new {
                return VarId(id);
            }
        }
    }

    /// Creates a fresh predicate with a generated, non-colliding name.
    pub fn fresh_pred(&mut self, prefix: &str, arity: usize) -> PredId {
        loop {
            let name = format!("{prefix}#{}", self.fresh_counter);
            self.fresh_counter += 1;
            if self.preds.lookup(&name).is_none() {
                return self.pred(&name, arity);
            }
        }
    }

    /// Arity of a predicate.
    pub fn arity(&self, p: PredId) -> usize {
        self.arities[p.index()]
    }

    /// Name of a predicate.
    pub fn pred_name(&self, p: PredId) -> &str {
        self.preds.name(p.0)
    }

    /// Name of a constant or null.
    pub fn const_name(&self, c: ConstId) -> &str {
        self.consts.name(c.0)
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        self.vars.name(v.0)
    }

    /// Number of interned predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Number of interned constants and nulls.
    pub fn const_count(&self) -> usize {
        self.consts.len()
    }

    /// Number of interned variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// All interned predicates with their arities.
    pub fn preds(&self) -> impl Iterator<Item = (PredId, usize)> + '_ {
        (0..self.preds.len() as u32).map(|i| (PredId(i), self.arities[i as usize]))
    }

    /// All named constants (elements of `C_con`).
    pub fn named_constants(&self) -> impl Iterator<Item = ConstId> + '_ {
        (0..self.consts.len() as u32)
            .map(ConstId)
            .filter(|c| !self.is_null(*c))
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut voc = Vocabulary::new();
        let e1 = voc.pred("E", 2);
        let e2 = voc.pred("E", 2);
        assert_eq!(e1, e2);
        assert_eq!(voc.arity(e1), 2);
        assert_eq!(voc.pred_name(e1), "E");
    }

    #[test]
    #[should_panic(expected = "re-interned")]
    fn arity_mismatch_panics() {
        let mut voc = Vocabulary::new();
        voc.pred("E", 2);
        voc.pred("E", 3);
    }

    #[test]
    fn constants_and_nulls_are_distinguished() {
        let mut voc = Vocabulary::new();
        let a = voc.constant("a");
        let n = voc.fresh_null("z");
        assert!(!voc.is_null(a));
        assert!(voc.is_null(n));
        assert_ne!(a, n);
        assert!(voc.const_name(n).starts_with('_'));
    }

    #[test]
    fn fresh_nulls_never_collide() {
        let mut voc = Vocabulary::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(voc.fresh_null("n")));
        }
    }

    #[test]
    fn name_element_promotes_null() {
        let mut voc = Vocabulary::new();
        let n = voc.fresh_null("d");
        assert!(voc.is_null(n));
        voc.name_element(n);
        assert!(!voc.is_null(n));
        assert_eq!(voc.named_constants().filter(|&c| c == n).count(), 1);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("x", 1);
        let c = voc.constant("x");
        let v = voc.var("x");
        assert_eq!(voc.pred_name(p), "x");
        assert_eq!(voc.const_name(c), "x");
        assert_eq!(voc.var_name(v), "x");
    }

    #[test]
    fn fresh_var_distinct_from_existing() {
        let mut voc = Vocabulary::new();
        let x = voc.var("X");
        let f = voc.fresh_var("X");
        assert_ne!(x, f);
    }

    #[test]
    fn max_arity_is_accepted() {
        let mut voc = Vocabulary::new();
        let p = voc.pred("Wide", MAX_ARITY);
        assert_eq!(voc.arity(p), MAX_ARITY);
    }

    #[test]
    #[should_panic(expected = "exceeding MAX_ARITY")]
    fn over_max_arity_panics_at_registration() {
        let mut voc = Vocabulary::new();
        voc.pred("TooWide", MAX_ARITY + 1);
    }
}
