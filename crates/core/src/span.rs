//! Source positions for parsed rules and atoms.
//!
//! The parser has always tracked 1-based line/column positions for its
//! *errors*; this module makes the same positions available on every
//! successfully parsed [`crate::Rule`] (and on each of its atoms), so
//! downstream analyses — most prominently the `bddfc-lint` diagnostics
//! — can point at the offending source text instead of naming bare rule
//! indices.
//!
//! Spans are pure provenance: they never participate in equality,
//! hashing or any engine decision. A [`crate::Rule`] built
//! programmatically simply has none, and every analysis must degrade
//! gracefully to that case.

use std::fmt;

/// A half-open region of source text, in 1-based lines and columns.
///
/// `start` is the first character of the region; `end` is the position
/// *just past* its last character (the start of the following token's
/// trivia). A zero value anywhere marks an unknown position and never
/// comes out of the parser.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SrcSpan {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
    /// 1-based line just past the last character.
    pub end_line: u32,
    /// 1-based column just past the last character.
    pub end_col: u32,
}

impl SrcSpan {
    /// Builds a span from 1-based start/end positions.
    pub fn new(line: u32, col: u32, end_line: u32, end_col: u32) -> Self {
        SrcSpan { line, col, end_line, end_col }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: SrcSpan) -> SrcSpan {
        let (line, col) = if (self.line, self.col) <= (other.line, other.col) {
            (self.line, self.col)
        } else {
            (other.line, other.col)
        };
        let (end_line, end_col) =
            if (self.end_line, self.end_col) >= (other.end_line, other.end_col) {
                (self.end_line, self.end_col)
            } else {
                (other.end_line, other.end_col)
            };
        SrcSpan { line, col, end_line, end_col }
    }
}

impl fmt::Display for SrcSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Source positions of one parsed rule: the whole rule plus each atom,
/// aligned index-for-index with [`crate::Rule::body`] and
/// [`crate::Rule::head`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, from the first body atom to the last head atom.
    pub rule: SrcSpan,
    /// One span per body atom.
    pub body: Vec<SrcSpan>,
    /// One span per head atom.
    pub head: Vec<SrcSpan>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both_spans() {
        let a = SrcSpan::new(1, 5, 1, 11);
        let b = SrcSpan::new(2, 1, 2, 7);
        assert_eq!(a.to(b), SrcSpan::new(1, 5, 2, 7));
        assert_eq!(b.to(a), SrcSpan::new(1, 5, 2, 7));
        assert_eq!(a.to(a), a);
    }

    #[test]
    fn display_is_line_colon_col() {
        assert_eq!(SrcSpan::new(3, 14, 3, 20).to_string(), "3:14");
    }
}
