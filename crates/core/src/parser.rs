//! A small text format for theories, instances and queries.
//!
//! Syntax (Prolog-flavoured; `%` starts a line comment):
//!
//! ```text
//! % facts: ground atoms over lowercase constants
//! E(a,b).
//!
//! % rules: body -> head; existential variables are exactly the head
//! % variables absent from the body (an optional `exists Z .` prefix
//! % documents them); identifiers starting with an uppercase letter or
//! % `_` are variables
//! E(X,Y) -> exists Z . E(Y,Z).
//! E(X,Y), E(Y,Z) -> E(X,Z).
//!
//! % queries: `?-` for Boolean, `?(X)-` for answer variables
//! ?- E(X,Y), E(Y,X).
//! ?(X)- E(X,X).
//! ```

use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::rule::{Rule, Theory};
use crate::symbols::Vocabulary;
use crate::term::{Atom, Term};
use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed program: theory, initial instance and queries, sharing one
/// vocabulary.
#[derive(Clone, Debug)]
pub struct Program {
    /// Symbol table for everything below.
    pub voc: Vocabulary,
    /// The rules.
    pub theory: Theory,
    /// The facts.
    pub instance: Instance,
    /// The queries, in order of appearance.
    pub queries: Vec<ConjunctiveQuery>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    Query, // '?'
    Dash,  // '-' (after '?')
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'?' => {
                self.bump();
                Tok::Query
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Dash
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii slice")
                    .to_owned();
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {:?}", other as char),
                    line,
                    col,
                })
            }
        };
        Ok((tok, line, col))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: (Tok, usize, usize),
    voc: &'a mut Vocabulary,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, voc: &'a mut Vocabulary) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_tok()?;
        Ok(Parser { lexer, lookahead, voc })
    }

    fn peek(&self) -> &Tok {
        &self.lookahead.0
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_tok()?;
        Ok(std::mem::replace(&mut self.lookahead, next).0)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.lookahead.1,
            col: self.lookahead.2,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn is_var_name(name: &str) -> bool {
        name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let name = self.ident("term")?;
        if Self::is_var_name(&name) {
            Ok(Term::Var(self.voc.var(&name)))
        } else {
            Ok(Term::Const(self.voc.constant(&name)))
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        // Predicate names may be any identifier (the paper's relations are
        // uppercase); the following '(' disambiguates them from terms.
        let name = self.ident("predicate name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.term()?);
                if *self.peek() == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        if let Some(existing) = self.voc.find_pred(&name) {
            if self.voc.arity(existing) != args.len() {
                return Err(self.err(format!(
                    "predicate {name} used with arity {} but declared {}",
                    args.len(),
                    self.voc.arity(existing)
                )));
            }
        }
        let pred = self.voc.pred(&name, args.len());
        Ok(Atom::new(pred, args))
    }

    fn atom_list(&mut self) -> Result<Vec<Atom>, ParseError> {
        let mut atoms = vec![self.atom()?];
        while *self.peek() == Tok::Comma {
            self.advance()?;
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    /// Parses one statement, pushing into the program parts. Returns false
    /// at EOF.
    fn statement(
        &mut self,
        theory: &mut Theory,
        instance: &mut Instance,
        queries: &mut Vec<ConjunctiveQuery>,
    ) -> Result<bool, ParseError> {
        match self.peek() {
            Tok::Eof => return Ok(false),
            Tok::Query => {
                self.advance()?;
                let mut free = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.advance()?;
                    loop {
                        let name = self.ident("answer variable")?;
                        if !Self::is_var_name(&name) {
                            return Err(self.err("answer positions must be variables"));
                        }
                        free.push(self.voc.var(&name));
                        if *self.peek() == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                }
                if *self.peek() == Tok::Dash {
                    self.advance()?;
                }
                let atoms = self.atom_list()?;
                self.expect(Tok::Dot, "'.'")?;
                queries.push(ConjunctiveQuery::with_free(atoms, free));
            }
            _ => {
                let atoms = self.atom_list()?;
                match self.peek() {
                    Tok::Dot => {
                        self.advance()?;
                        // Fact list: every atom must be ground.
                        for atom in atoms {
                            match atom.to_fact() {
                                Some(f) => {
                                    instance.insert(f);
                                }
                                None => {
                                    return Err(
                                        self.err("facts must be ground (no variables)")
                                    )
                                }
                            }
                        }
                    }
                    Tok::Arrow => {
                        self.advance()?;
                        // Optional `exists X,Y .` documentation prefix.
                        if let Tok::Ident(kw) = self.peek() {
                            if kw == "exists" {
                                self.advance()?;
                                loop {
                                    let name = self.ident("existential variable")?;
                                    if !Self::is_var_name(&name) {
                                        return Err(
                                            self.err("existential positions must be variables")
                                        );
                                    }
                                    self.voc.var(&name);
                                    if *self.peek() == Tok::Comma {
                                        self.advance()?;
                                    } else {
                                        break;
                                    }
                                }
                                self.expect(Tok::Dot, "'.' after exists clause")?;
                            }
                        }
                        let head = self.atom_list()?;
                        self.expect(Tok::Dot, "'.'")?;
                        theory.push(Rule::new(atoms, head));
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected '.' or '->' after atoms, found {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(true)
    }
}

/// Parses a whole program into a fresh vocabulary.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut voc = Vocabulary::new();
    let (theory, instance, queries) = parse_into(src, &mut voc)?;
    Ok(Program { voc, theory, instance, queries })
}

/// Parses a whole program, interning symbols into an existing vocabulary.
pub fn parse_into(
    src: &str,
    voc: &mut Vocabulary,
) -> Result<(Theory, Instance, Vec<ConjunctiveQuery>), ParseError> {
    let mut parser = Parser::new(src, voc)?;
    let mut theory = Theory::default();
    let mut instance = Instance::new();
    let mut queries = Vec::new();
    while parser.statement(&mut theory, &mut instance, &mut queries)? {}
    Ok((theory, instance, queries))
}

/// Parses a single rule like `E(X,Y) -> exists Z . E(Y,Z)`.
pub fn parse_rule(src: &str, voc: &mut Vocabulary) -> Result<Rule, ParseError> {
    let with_dot = format!("{}.", src.trim().trim_end_matches('.'));
    let (theory, inst, queries) = parse_into(&with_dot, voc)?;
    if theory.len() != 1 || !inst.is_empty() || !queries.is_empty() {
        return Err(ParseError {
            message: "expected exactly one rule".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(theory.rules.into_iter().next().expect("one rule"))
}

/// Parses a single Boolean query body like `E(X,Y), E(Y,X)`.
pub fn parse_query(src: &str, voc: &mut Vocabulary) -> Result<ConjunctiveQuery, ParseError> {
    let with_marker = format!("?- {}.", src.trim().trim_end_matches('.'));
    let (theory, inst, queries) = parse_into(&with_marker, voc)?;
    if queries.len() != 1 || !theory.is_empty() || !inst.is_empty() {
        return Err(ParseError {
            message: "expected exactly one query".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(queries.into_iter().next().expect("one query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleKind;

    #[test]
    fn parses_example1() {
        let src = "
            % Example 1 of the paper
            E(X,Y) -> exists Z . E(Y,Z).
            E(X,Y), E(Y,Z), E(Z,X) -> U(X,T).
            U(X,Y) -> U(Y,Z).
            E(a,b).
            ?- U(X,Y).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.theory.len(), 3);
        assert_eq!(prog.instance.len(), 1);
        assert_eq!(prog.queries.len(), 1);
        assert!(prog.theory.rules.iter().all(|r| r.kind() == RuleKind::ExistentialTgd));
    }

    #[test]
    fn existential_vars_inferred_without_exists() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y) -> E(Y,Z)", &mut voc).unwrap();
        assert_eq!(r.existential_vars().len(), 1);
    }

    #[test]
    fn datalog_rule_parses() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap();
        assert!(r.is_datalog());
    }

    #[test]
    fn multi_head_rule_parses() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y) -> E(Y,Z), U(Z)", &mut voc).unwrap();
        assert_eq!(r.head.len(), 2);
        assert_eq!(r.existential_vars().len(), 1);
    }

    #[test]
    fn constants_in_rules() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,a) -> U(X)", &mut voc).unwrap();
        assert_eq!(r.constants().len(), 1);
    }

    #[test]
    fn query_with_answer_vars() {
        let src = "?(X,Y)- E(X,Y).";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.queries[0].free.len(), 2);
    }

    #[test]
    fn non_ground_fact_rejected() {
        assert!(parse_program("E(a,X).").is_err());
    }

    #[test]
    fn arity_clash_rejected() {
        let err = parse_program("E(a,b). E(a).").unwrap_err();
        assert!(err.message.contains("arity"), "{err}");
    }

    #[test]
    fn error_position_is_reported() {
        let err = parse_program("E(a,b)\nE(c,d).").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn zero_ary_atoms() {
        let prog = parse_program("p(). p() -> q().").unwrap();
        assert_eq!(prog.instance.len(), 1);
        assert_eq!(prog.theory.len(), 1);
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).";
        let prog = parse_program(src).unwrap();
        let printed = prog.theory.display(&prog.voc).to_string();
        let mut voc2 = Vocabulary::new();
        let (theory2, _, _) = parse_into(&printed, &mut voc2).unwrap();
        assert_eq!(theory2.len(), 1);
        assert_eq!(
            theory2.rules[0].display(&voc2).to_string(),
            prog.theory.rules[0].display(&prog.voc).to_string()
        );
    }

    #[test]
    fn unexpected_char_reports_error() {
        assert!(parse_program("E(a;b).").is_err());
    }
}
