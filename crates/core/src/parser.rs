//! A small text format for theories, instances and queries.
//!
//! Syntax (Prolog-flavoured; `%` starts a line comment):
//!
//! ```text
//! % facts: ground atoms over lowercase constants
//! E(a,b).
//!
//! % rules: body -> head; existential variables are exactly the head
//! % variables absent from the body (an optional `exists Z .` prefix
//! % documents them); identifiers starting with an uppercase letter or
//! % `_` are variables
//! E(X,Y) -> exists Z . E(Y,Z).
//! E(X,Y), E(Y,Z) -> E(X,Z).
//!
//! % queries: `?-` for Boolean, `?(X)-` for answer variables
//! ?- E(X,Y), E(Y,X).
//! ?(X)- E(X,X).
//! ```

use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::rule::{Rule, Theory};
use crate::span::{RuleSpans, SrcSpan};
use crate::symbols::Vocabulary;
use crate::term::{Atom, Term};
use std::fmt;

/// A parse error with 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A parsed program: theory, initial instance and queries, sharing one
/// vocabulary.
#[derive(Clone, Debug)]
pub struct Program {
    /// Symbol table for everything below.
    pub voc: Vocabulary,
    /// The rules.
    pub theory: Theory,
    /// The facts.
    pub instance: Instance,
    /// The queries, in order of appearance.
    pub queries: Vec<ConjunctiveQuery>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    Query, // '?'
    Dash,  // '-' (after '?')
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    /// Lexes the next token, returning it with the 1-based start
    /// position of its first character and the position just past its
    /// last character (the spans of [`crate::span::SrcSpan`]).
    fn next_tok(&mut self) -> Result<Lexed, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(Lexed { tok: Tok::Eof, line, col, end_line: line, end_col: col });
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'?' => {
                self.bump();
                Tok::Query
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Dash
                }
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii slice")
                    .to_owned();
                Tok::Ident(s)
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {:?}", other as char),
                    line,
                    col,
                })
            }
        };
        Ok(Lexed { tok, line, col, end_line: self.line, end_col: self.col })
    }
}

/// One lexed token with its source extent (start and one-past-end
/// positions, both 1-based).
struct Lexed {
    tok: Tok,
    line: usize,
    col: usize,
    end_line: usize,
    end_col: usize,
}

impl Lexed {
    fn start(&self) -> (usize, usize) {
        (self.line, self.col)
    }

    fn end(&self) -> (usize, usize) {
        (self.end_line, self.end_col)
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Lexed,
    /// One-past-end position of the last consumed token; with the
    /// lookahead's start this brackets whatever was just parsed.
    last_end: (usize, usize),
    voc: &'a mut Vocabulary,
}

/// Builds a [`SrcSpan`] from 1-based `(line, col)` start/end pairs.
fn span(start: (usize, usize), end: (usize, usize)) -> SrcSpan {
    let clamp = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);
    SrcSpan::new(clamp(start.0), clamp(start.1), clamp(end.0), clamp(end.1))
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, voc: &'a mut Vocabulary) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let lookahead = lexer.next_tok()?;
        Ok(Parser { lexer, lookahead, last_end: (1, 1), voc })
    }

    fn peek(&self) -> &Tok {
        &self.lookahead.tok
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_tok()?;
        self.last_end = self.lookahead.end();
        Ok(std::mem::replace(&mut self.lookahead, next).tok)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.lookahead.line,
            col: self.lookahead.col,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn is_var_name(name: &str) -> bool {
        name.starts_with(|c: char| c.is_ascii_uppercase() || c == '_')
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let name = self.ident("term")?;
        if Self::is_var_name(&name) {
            Ok(Term::Var(self.voc.var(&name)))
        } else {
            Ok(Term::Const(self.voc.constant(&name)))
        }
    }

    fn atom(&mut self) -> Result<(Atom, SrcSpan), ParseError> {
        // Predicate names may be any identifier (the paper's relations are
        // uppercase); the following '(' disambiguates them from terms.
        let start = self.lookahead.start();
        let name = self.ident("predicate name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.term()?);
                if *self.peek() == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        let atom_span = span(start, self.last_end);
        if args.len() > crate::symbols::MAX_ARITY {
            return Err(ParseError {
                message: format!(
                    "predicate {name} has arity {}, exceeding the maximum {}",
                    args.len(),
                    crate::symbols::MAX_ARITY
                ),
                line: atom_span.line as usize,
                col: atom_span.col as usize,
            });
        }
        if let Some(existing) = self.voc.find_pred(&name) {
            if self.voc.arity(existing) != args.len() {
                return Err(ParseError {
                    message: format!(
                        "predicate {name} used with arity {} but declared {}",
                        args.len(),
                        self.voc.arity(existing)
                    ),
                    line: atom_span.line as usize,
                    col: atom_span.col as usize,
                });
            }
        }
        let pred = self.voc.pred(&name, args.len());
        Ok((Atom::new(pred, args), atom_span))
    }

    fn atom_list(&mut self) -> Result<(Vec<Atom>, Vec<SrcSpan>), ParseError> {
        let (first, first_span) = self.atom()?;
        let (mut atoms, mut spans) = (vec![first], vec![first_span]);
        while *self.peek() == Tok::Comma {
            self.advance()?;
            let (atom, span) = self.atom()?;
            atoms.push(atom);
            spans.push(span);
        }
        Ok((atoms, spans))
    }

    /// Parses one statement, pushing into the program parts. Returns false
    /// at EOF.
    fn statement(
        &mut self,
        theory: &mut Theory,
        instance: &mut Instance,
        queries: &mut Vec<ConjunctiveQuery>,
    ) -> Result<bool, ParseError> {
        match self.peek() {
            Tok::Eof => return Ok(false),
            Tok::Query => {
                self.advance()?;
                let mut free = Vec::new();
                if *self.peek() == Tok::LParen {
                    self.advance()?;
                    loop {
                        let name = self.ident("answer variable")?;
                        if !Self::is_var_name(&name) {
                            return Err(self.err("answer positions must be variables"));
                        }
                        free.push(self.voc.var(&name));
                        if *self.peek() == Tok::Comma {
                            self.advance()?;
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                }
                if *self.peek() == Tok::Dash {
                    self.advance()?;
                }
                let (atoms, _) = self.atom_list()?;
                self.expect(Tok::Dot, "'.'")?;
                queries.push(ConjunctiveQuery::with_free(atoms, free));
            }
            Tok::Arrow => {
                return Err(
                    self.err("rule has an empty body: expected at least one body atom before '->'")
                )
            }
            _ => {
                let (atoms, body_spans) = self.atom_list()?;
                match self.peek() {
                    Tok::Dot => {
                        self.advance()?;
                        // Fact list: every atom must be ground.
                        for atom in atoms {
                            match atom.to_fact() {
                                Some(f) => {
                                    instance.insert(f);
                                }
                                None => {
                                    return Err(
                                        self.err("facts must be ground (no variables)")
                                    )
                                }
                            }
                        }
                    }
                    Tok::Arrow => {
                        self.advance()?;
                        // Optional `exists X,Y .` documentation prefix. The
                        // declared names must be distinct, must not occur in
                        // the body (they would not be existential), and must
                        // all be used in the head.
                        let mut declared: Vec<(String, usize, usize)> = Vec::new();
                        if let Tok::Ident(kw) = self.peek() {
                            if kw == "exists" {
                                self.advance()?;
                                loop {
                                    let (line, col) = self.lookahead.start();
                                    let name = self.ident("existential variable")?;
                                    if !Self::is_var_name(&name) {
                                        return Err(
                                            self.err("existential positions must be variables")
                                        );
                                    }
                                    if declared.iter().any(|(n, _, _)| *n == name) {
                                        return Err(ParseError {
                                            message: format!(
                                                "duplicate existential variable {name} in exists clause"
                                            ),
                                            line,
                                            col,
                                        });
                                    }
                                    let var = self.voc.var(&name);
                                    let in_body = atoms.iter().any(|a| {
                                        a.args.iter().any(|t| *t == Term::Var(var))
                                    });
                                    if in_body {
                                        return Err(ParseError {
                                            message: format!(
                                                "existential variable {name} already occurs in the rule body"
                                            ),
                                            line,
                                            col,
                                        });
                                    }
                                    declared.push((name, line, col));
                                    if *self.peek() == Tok::Comma {
                                        self.advance()?;
                                    } else {
                                        break;
                                    }
                                }
                                self.expect(Tok::Dot, "'.' after exists clause")?;
                            }
                        }
                        if *self.peek() == Tok::Dot {
                            return Err(self.err(
                                "rule has an empty head: expected at least one head atom after '->'",
                            ));
                        }
                        let (head, head_spans) = self.atom_list()?;
                        self.expect(Tok::Dot, "'.'")?;
                        for (name, line, col) in &declared {
                            let var = self.voc.var(name);
                            let used = head
                                .iter()
                                .any(|a| a.args.iter().any(|t| *t == Term::Var(var)));
                            if !used {
                                return Err(ParseError {
                                    message: format!(
                                        "existential variable {name} declared in the exists clause but not used in the head"
                                    ),
                                    line: *line,
                                    col: *col,
                                });
                            }
                        }
                        let first = body_spans.first().expect("nonempty body");
                        let last = head_spans.last().expect("nonempty head");
                        let spans = RuleSpans {
                            rule: first.to(*last),
                            body: body_spans,
                            head: head_spans,
                        };
                        theory.push(Rule::new(atoms, head).with_spans(spans));
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected '.' or '->' after atoms, found {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(true)
    }
}

/// Parses a whole program into a fresh vocabulary.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut voc = Vocabulary::new();
    let (theory, instance, queries) = parse_into(src, &mut voc)?;
    Ok(Program { voc, theory, instance, queries })
}

/// Parses a whole program, interning symbols into an existing vocabulary.
pub fn parse_into(
    src: &str,
    voc: &mut Vocabulary,
) -> Result<(Theory, Instance, Vec<ConjunctiveQuery>), ParseError> {
    let mut parser = Parser::new(src, voc)?;
    let mut theory = Theory::default();
    let mut instance = Instance::new();
    let mut queries = Vec::new();
    while parser.statement(&mut theory, &mut instance, &mut queries)? {}
    Ok((theory, instance, queries))
}

/// Parses a single rule like `E(X,Y) -> exists Z . E(Y,Z)`.
pub fn parse_rule(src: &str, voc: &mut Vocabulary) -> Result<Rule, ParseError> {
    let with_dot = format!("{}.", src.trim().trim_end_matches('.'));
    let (theory, inst, queries) = parse_into(&with_dot, voc)?;
    if theory.len() != 1 || !inst.is_empty() || !queries.is_empty() {
        return Err(ParseError {
            message: "expected exactly one rule".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(theory.rules.into_iter().next().expect("one rule"))
}

/// Parses a single Boolean query body like `E(X,Y), E(Y,X)`.
pub fn parse_query(src: &str, voc: &mut Vocabulary) -> Result<ConjunctiveQuery, ParseError> {
    let with_marker = format!("?- {}.", src.trim().trim_end_matches('.'));
    let (theory, inst, queries) = parse_into(&with_marker, voc)?;
    if queries.len() != 1 || !theory.is_empty() || !inst.is_empty() {
        return Err(ParseError {
            message: "expected exactly one query".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(queries.into_iter().next().expect("one query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleKind;

    #[test]
    fn parses_example1() {
        let src = "
            % Example 1 of the paper
            E(X,Y) -> exists Z . E(Y,Z).
            E(X,Y), E(Y,Z), E(Z,X) -> U(X,T).
            U(X,Y) -> U(Y,Z).
            E(a,b).
            ?- U(X,Y).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.theory.len(), 3);
        assert_eq!(prog.instance.len(), 1);
        assert_eq!(prog.queries.len(), 1);
        assert!(prog.theory.rules.iter().all(|r| r.kind() == RuleKind::ExistentialTgd));
    }

    #[test]
    fn existential_vars_inferred_without_exists() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y) -> E(Y,Z)", &mut voc).unwrap();
        assert_eq!(r.existential_vars().len(), 1);
    }

    #[test]
    fn datalog_rule_parses() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap();
        assert!(r.is_datalog());
    }

    #[test]
    fn multi_head_rule_parses() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y) -> E(Y,Z), U(Z)", &mut voc).unwrap();
        assert_eq!(r.head.len(), 2);
        assert_eq!(r.existential_vars().len(), 1);
    }

    #[test]
    fn constants_in_rules() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,a) -> U(X)", &mut voc).unwrap();
        assert_eq!(r.constants().len(), 1);
    }

    #[test]
    fn query_with_answer_vars() {
        let src = "?(X,Y)- E(X,Y).";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.queries[0].free.len(), 2);
    }

    #[test]
    fn non_ground_fact_rejected() {
        assert!(parse_program("E(a,X).").is_err());
    }

    #[test]
    fn arity_clash_rejected() {
        let err = parse_program("E(a,b). E(a).").unwrap_err();
        assert!(err.message.contains("arity"), "{err}");
    }

    #[test]
    fn error_position_is_reported() {
        let err = parse_program("E(a,b)\nE(c,d).").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn over_wide_atom_rejected_with_span() {
        // 256 arguments exceeds MAX_ARITY = 255; the error is spanned to
        // the offending atom, not a panic out of the vocabulary.
        let args = vec!["a"; crate::symbols::MAX_ARITY + 1].join(",");
        let err = parse_program(&format!("E(a,b).\nWide({args}).")).unwrap_err();
        assert!(err.message.contains("arity 256"), "{err}");
        assert!(err.message.contains("maximum 255"), "{err}");
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 1);
        // Exactly MAX_ARITY arguments still parses.
        let ok = vec!["a"; crate::symbols::MAX_ARITY].join(",");
        assert!(parse_program(&format!("Wide({ok}).")).is_ok());
    }

    #[test]
    fn zero_ary_atoms() {
        let prog = parse_program("p(). p() -> q().").unwrap();
        assert_eq!(prog.instance.len(), 1);
        assert_eq!(prog.theory.len(), 1);
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "E(X,Y) -> exists Z . E(Y,Z).";
        let prog = parse_program(src).unwrap();
        let printed = prog.theory.display(&prog.voc).to_string();
        let mut voc2 = Vocabulary::new();
        let (theory2, _, _) = parse_into(&printed, &mut voc2).unwrap();
        assert_eq!(theory2.len(), 1);
        assert_eq!(
            theory2.rules[0].display(&voc2).to_string(),
            prog.theory.rules[0].display(&prog.voc).to_string()
        );
    }

    #[test]
    fn unexpected_char_reports_error() {
        assert!(parse_program("E(a;b).").is_err());
    }

    #[test]
    fn empty_body_reports_spanned_error() {
        let err = parse_program("E(a,b).\n -> P(X).").unwrap_err();
        assert!(err.message.contains("empty body"), "{err}");
        assert_eq!((err.line, err.col), (2, 2));
    }

    #[test]
    fn empty_head_reports_spanned_error() {
        let err = parse_program("P(X) -> .").unwrap_err();
        assert!(err.message.contains("empty head"), "{err}");
        assert_eq!((err.line, err.col), (1, 9));
        // Also after an exists clause: the head is still missing.
        let err = parse_program("P(X) -> exists Y . .").unwrap_err();
        assert!(err.message.contains("empty head"), "{err}");
    }

    #[test]
    fn duplicate_existential_variable_rejected() {
        let err = parse_program("P(X) -> exists Y, Y . Q(X,Y).").unwrap_err();
        assert!(err.message.contains("duplicate existential variable Y"), "{err}");
        assert_eq!((err.line, err.col), (1, 19));
    }

    #[test]
    fn existential_variable_shadowing_body_rejected() {
        let err = parse_program("P(X) -> exists X . Q(X).").unwrap_err();
        assert!(
            err.message.contains("existential variable X already occurs in the rule body"),
            "{err}"
        );
        assert_eq!((err.line, err.col), (1, 16));
    }

    #[test]
    fn unused_existential_variable_rejected() {
        let err = parse_program("P(X) -> exists Z . Q(X).").unwrap_err();
        assert!(err.message.contains("not used in the head"), "{err}");
        assert_eq!((err.line, err.col), (1, 16));
    }

    #[test]
    fn wellformed_exists_clause_still_parses() {
        let prog = parse_program("P(X) -> exists Y, Z . Q(X,Y), Q(Y,Z).").unwrap();
        assert_eq!(prog.theory.len(), 1);
        assert_eq!(prog.theory.rules[0].kind(), RuleKind::ExistentialTgd);
    }

    #[test]
    fn rules_carry_spans() {
        let src = "% comment\nE(X,Y) -> exists Z . E(Y,Z).\nE(X,Y), E(Y,Z) -> E(X,Z).\n";
        let prog = parse_program(src).unwrap();
        let r0 = &prog.theory.rules[0];
        // `E(X,Y) -> exists Z . E(Y,Z).` on line 2: body atom at col 1,
        // head atom ending just past `E(Y,Z)` (col 28 one-past-end).
        assert_eq!(r0.span().unwrap(), SrcSpan::new(2, 1, 2, 28));
        assert_eq!(r0.body_span(0).unwrap(), SrcSpan::new(2, 1, 2, 7));
        assert_eq!(r0.head_span(0).unwrap(), SrcSpan::new(2, 22, 2, 28));
        let r1 = &prog.theory.rules[1];
        assert_eq!(r1.span().unwrap().line, 3);
        assert_eq!(r1.body_span(1).unwrap(), SrcSpan::new(3, 9, 3, 15));
    }

    #[test]
    fn spans_align_with_atom_counts() {
        let mut voc = Vocabulary::new();
        let r = parse_rule("E(X,Y), E(Y,Z) -> E(X,Z), U(Z)", &mut voc).unwrap();
        let spans = r.spans.as_ref().unwrap();
        assert_eq!(spans.body.len(), r.body.len());
        assert_eq!(spans.head.len(), r.head.len());
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let mut voc = Vocabulary::new();
        let parsed = parse_rule("E(X,Y) -> E(Y,X)", &mut voc).unwrap();
        let programmatic = Rule::new(parsed.body.clone(), parsed.head.clone());
        assert!(programmatic.spans.is_none());
        assert_eq!(parsed, programmatic);
    }
}
