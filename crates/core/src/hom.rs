//! The homomorphism engine: backtracking evaluation of conjunctive queries
//! over indexed instances.
//!
//! This is the computational workhorse of the whole workspace — rule
//! applicability in the chase, query answering, subsumption in the
//! rewriting engine and model checking all reduce to "find (all / one / no)
//! homomorphisms of this atom set into this instance extending this partial
//! binding".
//!
//! The search picks, at every step, the *most constrained* remaining atom
//! (fewest candidate facts under the current binding, estimated through the
//! columnar `(position, element)` postings of the atom's predicate), which
//! keeps the join tree narrow without any query planning machinery.

use crate::columnar::Relation;
use crate::fxhash::FxHashMap;
use crate::instance::Instance;
use crate::query::{ConjunctiveQuery, Ucq};
use crate::symbols::{ConstId, PredId, VarId};
use crate::term::{Atom, Term};
use std::ops::ControlFlow;

/// A partial assignment of variables to domain elements.
pub type Binding = FxHashMap<VarId, ConstId>;

/// Per-predicate candidate-scan statistics, collected by
/// [`for_each_hom_scanned`] for telemetry attribution: every time the
/// search commits to an atom and walks its candidate posting list, the
/// atom's predicate is charged one *scan* and `len(candidates)`
/// *candidates*. Both counts are deterministic (the search order does
/// not depend on thread count), so they obey the fields side of the
/// `bddfc_core::obs` determinism contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// `pred -> (scans, candidate facts examined)`.
    per_pred: FxHashMap<PredId, (u64, u64)>,
}

impl ScanStats {
    /// Charges one scan over `candidates` facts to `pred`.
    pub fn note(&mut self, pred: PredId, candidates: u64) {
        let e = self.per_pred.entry(pred).or_insert((0, 0));
        e.0 += 1;
        e.1 += candidates;
    }

    /// Folds another stats block into this one (for shard merging).
    pub fn merge(&mut self, other: &ScanStats) {
        for (&pred, &(scans, cands)) in &other.per_pred {
            let e = self.per_pred.entry(pred).or_insert((0, 0));
            e.0 += scans;
            e.1 += cands;
        }
    }

    /// `(pred, scans, candidates)` rows sorted by predicate id.
    pub fn sorted(&self) -> Vec<(PredId, u64, u64)> {
        let mut rows: Vec<(PredId, u64, u64)> =
            self.per_pred.iter().map(|(&p, &(s, c))| (p, s, c)).collect();
        rows.sort_unstable_by_key(|&(p, _, _)| p);
        rows
    }

    /// Whether no scan was ever charged.
    pub fn is_empty(&self) -> bool {
        self.per_pred.is_empty()
    }
}

/// The candidate rows of an atom's relation under a partial binding:
/// either a posting list of row numbers, or the full row range.
enum Cand<'i> {
    /// Row numbers from the tightest `(position, element)` posting list.
    Rows(&'i [u32]),
    /// No position is bound: every row of the relation, in order.
    All(usize),
}

impl Cand<'_> {
    fn len(&self) -> usize {
        match self {
            Cand::Rows(rows) => rows.len(),
            Cand::All(n) => *n,
        }
    }

    fn for_each(&self, mut f: impl FnMut(usize) -> ControlFlow<()>) -> ControlFlow<()> {
        match self {
            Cand::Rows(rows) => {
                for &r in *rows {
                    f(r as usize)?;
                }
            }
            Cand::All(n) => {
                for r in 0..*n {
                    f(r)?;
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Estimates the candidate rows for `atom` under `binding`, returning the
/// tightest available columnar posting list: the shortest `(position,
/// element)` list over the bound positions, falling back to the whole
/// relation. Row order is insertion order either way.
fn candidates<'i>(inst: &'i Instance, atom: &Atom, binding: &Binding) -> Cand<'i> {
    let Some(rel) = inst.columnar().relation(atom.pred) else {
        return Cand::Rows(&[]);
    };
    if rel.arity() != atom.args.len() {
        return Cand::Rows(&[]);
    }
    let mut best: Option<&[u32]> = None;
    for (pos, term) in atom.args.iter().enumerate() {
        let bound = match term {
            Term::Const(c) => Some(*c),
            Term::Var(v) => binding.get(v).copied(),
        };
        if let Some(c) = bound {
            let slice = rel.matching(pos, c);
            if best.is_none_or(|b| slice.len() < b.len()) {
                best = Some(slice);
            }
        }
    }
    match best {
        Some(rows) => Cand::Rows(rows),
        None => Cand::All(rel.rows()),
    }
}

/// Attempts to extend `binding` so that `atom` matches row `row` of its
/// predicate's relation. Returns the list of variables newly bound (for
/// backtracking), or `None` on mismatch.
fn try_match(rel: &Relation, atom: &Atom, row: usize, binding: &mut Binding) -> Option<Vec<VarId>> {
    let mut newly = Vec::new();
    for (pos, term) in atom.args.iter().enumerate() {
        let c = rel.get(row, pos);
        match term {
            Term::Const(k) => {
                if *k != c {
                    undo(binding, &newly);
                    return None;
                }
            }
            Term::Var(v) => match binding.get(v) {
                Some(&b) if b == c => {}
                Some(_) => {
                    undo(binding, &newly);
                    return None;
                }
                None => {
                    binding.insert(*v, c);
                    newly.push(*v);
                }
            },
        }
    }
    Some(newly)
}

fn undo(binding: &mut Binding, newly: &[VarId]) {
    for v in newly {
        binding.remove(v);
    }
}

/// Recursive backtracking over the remaining atoms. `remaining` holds
/// indices into `atoms` still to be matched.
fn search<F>(
    inst: &Instance,
    atoms: &[Atom],
    remaining: &mut Vec<usize>,
    binding: &mut Binding,
    stats: &mut Option<&mut ScanStats>,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    if remaining.is_empty() {
        return visit(binding);
    }
    // Most-constrained-atom heuristic.
    let (slot, _) = remaining
        .iter()
        .enumerate()
        .map(|(slot, &ai)| (slot, candidates(inst, &atoms[ai], binding).len()))
        .min_by_key(|&(_, n)| n)
        .expect("remaining non-empty");
    let ai = remaining.swap_remove(slot);
    let atom = &atoms[ai];
    let cand = candidates(inst, atom, binding);
    if let Some(s) = stats {
        s.note(atom.pred, cand.len() as u64);
    }
    let flow = match inst.columnar().relation(atom.pred) {
        Some(rel) => cand.for_each(|row| {
            if let Some(newly) = try_match(rel, atom, row, binding) {
                let flow = search(inst, atoms, remaining, binding, stats, visit);
                undo(binding, &newly);
                flow
            } else {
                ControlFlow::Continue(())
            }
        }),
        None => ControlFlow::Continue(()),
    };
    // Restore `remaining` before unwinding (on Break) or backtracking.
    remaining.push(ai);
    flow
}

/// Visits every homomorphism of `atoms` into `inst` extending `init`.
/// The callback may stop the enumeration by returning
/// [`ControlFlow::Break`]. Returns `Break` iff the callback broke.
pub fn for_each_hom<F>(
    inst: &Instance,
    atoms: &[Atom],
    init: &Binding,
    mut visit: F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let mut binding = init.clone();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    search(inst, atoms, &mut remaining, &mut binding, &mut None, &mut visit)
}

/// [`for_each_hom`] that additionally charges every candidate-list walk
/// to its predicate in `stats` — the attribution hook behind the
/// `hom/scan` telemetry events. Collection cost is only paid when a
/// recording sink is installed; the plain entry points pass no stats.
pub fn for_each_hom_scanned<F>(
    inst: &Instance,
    atoms: &[Atom],
    init: &Binding,
    stats: &mut ScanStats,
    mut visit: F,
) -> ControlFlow<()>
where
    F: FnMut(&Binding) -> ControlFlow<()>,
{
    let mut binding = init.clone();
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    search(inst, atoms, &mut remaining, &mut binding, &mut Some(stats), &mut visit)
}

/// Finds one homomorphism of `atoms` into `inst` extending `init`.
pub fn find_hom(inst: &Instance, atoms: &[Atom], init: &Binding) -> Option<Binding> {
    let mut found = None;
    let _ = for_each_hom(inst, atoms, init, |b| {
        found = Some(b.clone());
        ControlFlow::Break(())
    });
    found
}

/// Does a homomorphism of `atoms` into `inst` extending `init` exist?
pub fn hom_exists(inst: &Instance, atoms: &[Atom], init: &Binding) -> bool {
    find_hom(inst, atoms, init).is_some()
}

/// Does the instance satisfy the (Boolean reading of the) conjunctive
/// query? Free variables are treated as existential, per the paper's
/// convention.
pub fn satisfies_cq(inst: &Instance, cq: &ConjunctiveQuery) -> bool {
    hom_exists(inst, &cq.atoms, &Binding::default())
}

/// Does the instance satisfy the UCQ (some disjunct holds)?
pub fn satisfies_ucq(inst: &Instance, ucq: &Ucq) -> bool {
    ucq.disjuncts.iter().any(|d| satisfies_cq(inst, d))
}

/// All distinct answer tuples of a conjunctive query (projection of the
/// homomorphisms onto the free variables), sorted for determinism.
pub fn answers(inst: &Instance, cq: &ConjunctiveQuery) -> Vec<Vec<ConstId>> {
    let mut out: Vec<Vec<ConstId>> = Vec::new();
    let mut seen = crate::fxhash::FxHashSet::default();
    let _ = for_each_hom(inst, &cq.atoms, &Binding::default(), |b| {
        let tuple: Vec<ConstId> = cq.free.iter().map(|v| b[v]).collect();
        if seen.insert(tuple.clone()) {
            out.push(tuple);
        }
        ControlFlow::Continue(())
    });
    out.sort_unstable();
    out
}

/// All distinct answer tuples of a UCQ.
pub fn ucq_answers(inst: &Instance, ucq: &Ucq) -> Vec<Vec<ConstId>> {
    let mut seen = crate::fxhash::FxHashSet::default();
    let mut out = Vec::new();
    for d in &ucq.disjuncts {
        for t in answers(inst, d) {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Counts the homomorphisms of `atoms` into `inst` (all of them — use with
/// care on large joins; intended for tests and diagnostics).
pub fn count_homs(inst: &Instance, atoms: &[Atom]) -> usize {
    let mut n = 0usize;
    let _ = for_each_hom(inst, atoms, &Binding::default(), |_| {
        n += 1;
        ControlFlow::Continue(())
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Vocabulary;
    use crate::term::Fact;

    fn cycle(voc: &mut Vocabulary, n: usize) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        for i in 0..n {
            let a = voc.constant(&format!("c{i}"));
            let b = voc.constant(&format!("c{}", (i + 1) % n));
            inst.insert(Fact::new(e, vec![a, b]));
        }
        inst
    }

    #[test]
    fn triangle_query_on_triangle() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let tri = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(e, vec![Term::Var(z), Term::Var(x)]),
        ];
        assert!(hom_exists(&inst, &tri, &Binding::default()));
        // Three rotations.
        assert_eq!(count_homs(&inst, &tri), 3);
    }

    #[test]
    fn triangle_query_on_square_fails() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 4);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let tri = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(e, vec![Term::Var(z), Term::Var(x)]),
        ];
        assert!(!hom_exists(&inst, &tri, &Binding::default()));
    }

    #[test]
    fn initial_binding_restricts_matches() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let (x, y) = (voc.var("X"), voc.var("Y"));
        let atoms = vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])];
        let c0 = voc.find_const("c0").unwrap();
        let c1 = voc.find_const("c1").unwrap();
        let mut init = Binding::default();
        init.insert(x, c0);
        let hom = find_hom(&inst, &atoms, &init).unwrap();
        assert_eq!(hom[&y], c1);
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let c0 = voc.find_const("c0").unwrap();
        let c2 = voc.find_const("c2").unwrap();
        let y = voc.var("Y");
        // E(c0, Y) matches only Y=c1.
        let atoms = vec![Atom::new(e, vec![Term::Const(c0), Term::Var(y)])];
        assert_eq!(count_homs(&inst, &atoms), 1);
        // E(c0, c2) does not hold in a 3-cycle.
        let atoms = vec![Atom::new(e, vec![Term::Const(c0), Term::Const(c2)])];
        assert!(!hom_exists(&inst, &atoms, &Binding::default()));
    }

    #[test]
    fn repeated_variable_needs_loop() {
        let mut voc = Vocabulary::new();
        let mut inst = cycle(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let x = voc.var("X");
        let atoms = vec![Atom::new(e, vec![Term::Var(x), Term::Var(x)])];
        assert!(!hom_exists(&inst, &atoms, &Binding::default()));
        let c0 = voc.find_const("c0").unwrap();
        inst.insert(Fact::new(e, vec![c0, c0]));
        assert!(hom_exists(&inst, &atoms, &Binding::default()));
    }

    #[test]
    fn answers_are_sorted_and_distinct() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 3);
        let e = voc.find_pred("E").unwrap();
        let (x, y) = (voc.var("X"), voc.var("Y"));
        let cq = ConjunctiveQuery::with_free(
            vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])],
            vec![x],
        );
        let ans = answers(&inst, &cq);
        assert_eq!(ans.len(), 3);
        assert!(ans.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_query_is_true() {
        let inst = Instance::new();
        assert!(satisfies_cq(&inst, &ConjunctiveQuery::boolean(vec![])));
    }

    #[test]
    fn ucq_any_disjunct() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 4);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let tri = ConjunctiveQuery::boolean(vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            Atom::new(e, vec![Term::Var(z), Term::Var(x)]),
        ]);
        let edge = ConjunctiveQuery::boolean(vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])]);
        assert!(!satisfies_ucq(&inst, &Ucq::new(vec![tri.clone()])));
        assert!(satisfies_ucq(&inst, &Ucq::new(vec![tri, edge])));
    }

    /// Index-free oracle for [`candidates`]: every fact compatible with
    /// `atom` under `binding` by linear scan.
    fn candidates_scan(inst: &Instance, atom: &Atom, binding: &Binding) -> Vec<usize> {
        (0..inst.len())
            .filter(|&idx| {
                let fact = inst.fact(idx);
                fact.pred == atom.pred
                    && fact.args.len() == atom.args.len()
                    && atom.args.iter().zip(fact.args.iter()).all(|(t, &c)| match t {
                        Term::Const(k) => *k == c,
                        Term::Var(v) => binding.get(v).is_none_or(|&b| b == c),
                    })
            })
            .collect()
    }

    #[test]
    fn indexed_candidates_cover_exactly_the_scan_matches() {
        use crate::prng::SplitMix64;
        let mut rng = SplitMix64::new(99);
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let elems: Vec<_> = (0..6).map(|i| voc.constant(&format!("c{i}"))).collect();
        let mut inst = Instance::new();
        for _ in 0..60 {
            if rng.flip() {
                inst.insert(Fact::new(e, vec![*rng.pick(&elems), *rng.pick(&elems)]));
            } else {
                inst.insert(Fact::new(u, vec![*rng.pick(&elems)]));
            }
        }
        let (x, y) = (voc.var("X"), voc.var("Y"));
        // Atoms of every binding shape: unbound, half-bound, constant.
        let shapes = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Const(elems[0]), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(x), Term::Const(elems[1])]),
            Atom::new(u, vec![Term::Var(x)]),
            Atom::new(u, vec![Term::Const(elems[2])]),
        ];
        for atom in &shapes {
            for bound_x in [None, Some(elems[3])] {
                let mut binding = Binding::default();
                if let Some(c) = bound_x {
                    binding.insert(x, c);
                }
                // Candidates are per-relation row numbers; map them to
                // global fact indexes through the by-predicate list.
                let with_pred = inst.facts_with_pred(atom.pred);
                let cand = candidates(&inst, atom, &binding);
                let mut rows: Vec<usize> = Vec::new();
                let _ = cand.for_each(|r| {
                    rows.push(r);
                    ControlFlow::Continue(())
                });
                let by_index: Vec<usize> = rows.iter().map(|&r| with_pred[r]).collect();
                let by_scan = candidates_scan(&inst, atom, &binding);
                // The index may over-approximate (it prunes on one bound
                // position), but must contain every scan match, and
                // try_match must accept exactly the scan matches.
                for idx in &by_scan {
                    assert!(by_index.contains(idx), "index missed fact {idx} for {atom:?}");
                }
                let rel = inst.columnar().relation(atom.pred).unwrap();
                let accepted: Vec<usize> = rows
                    .into_iter()
                    .filter(|&row| {
                        let mut b = binding.clone();
                        try_match(rel, atom, row, &mut b).is_some()
                    })
                    .map(|row| with_pred[row])
                    .collect();
                assert_eq!(accepted, by_scan, "atom {atom:?}, bound_x {bound_x:?}");
            }
        }
    }

    #[test]
    fn scanned_hom_matches_plain_and_charges_predicates() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 5);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let path = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let mut plain = 0usize;
        let _ = for_each_hom(&inst, &path, &Binding::default(), |_| {
            plain += 1;
            ControlFlow::Continue(())
        });
        let mut stats = ScanStats::default();
        let mut scanned = 0usize;
        let _ = for_each_hom_scanned(&inst, &path, &Binding::default(), &mut stats, |_| {
            scanned += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(plain, scanned);
        let rows = stats.sorted();
        assert_eq!(rows.len(), 1, "only E is ever scanned");
        let (pred, scans, cands) = rows[0];
        assert_eq!(pred, e);
        // One root scan over all 5 edges plus one indexed scan per match.
        assert!(scans >= 2 && cands >= 5, "scans={scans} cands={cands}");

        let mut merged = ScanStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.sorted(), vec![(e, scans * 2, cands * 2)]);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let mut voc = Vocabulary::new();
        let inst = cycle(&mut voc, 50);
        let e = voc.find_pred("E").unwrap();
        let (x, y) = (voc.var("X"), voc.var("Y"));
        let atoms = vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])];
        let mut count = 0;
        let flow = for_each_hom(&inst, &atoms, &Binding::default(), |_| {
            count += 1;
            ControlFlow::Break(())
        });
        assert!(flow.is_break());
        assert_eq!(count, 1);
    }
}
