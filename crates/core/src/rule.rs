//! Rules (TGDs and plain datalog rules) and theories.
//!
//! The paper works with *theories*: finite sets of existential single-head
//! TGDs `∀x̄ (Φ(x̄) ⇒ ∃y Q(y, ȳ))` and plain datalog rules. We represent
//! both with one [`Rule`] type — a rule is existential iff some head
//! variable does not occur in the body. Multi-head rules are also allowed
//! structurally (Section 5.3 discusses them); engines that require
//! single-head rules validate this explicitly.

use crate::query::ConjunctiveQuery;
use crate::span::{RuleSpans, SrcSpan};
use crate::symbols::{ConstId, PredId, VarId, Vocabulary};
use crate::term::{Atom, Term};
use crate::fxhash::FxHashSet;
use std::fmt;

/// A rule `body ⇒ ∃(head-only vars) head₁ ∧ … ∧ headₖ`.
///
/// Equality compares the logical content (`body`, `head`) only; the
/// source [`RuleSpans`] are provenance and two rules differing only in
/// where they were parsed from compare equal.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The body conjunction (must be non-empty for a safe rule).
    pub body: Vec<Atom>,
    /// The head conjunction (singleton for the paper's TGDs).
    pub head: Vec<Atom>,
    /// Source positions, when the rule came out of the parser. Boxed so
    /// the common programmatic (span-free) rule stays small.
    pub spans: Option<Box<RuleSpans>>,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.body == other.body && self.head == other.head
    }
}

impl Eq for Rule {}

/// The kind of a rule, derived from its variable usage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleKind {
    /// Every head variable occurs in the body: a plain datalog rule.
    Datalog,
    /// Some head variable is existentially quantified: an existential TGD.
    ExistentialTgd,
}

impl Rule {
    /// Creates a rule (without source positions).
    pub fn new(body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Rule { body, head, spans: None }
    }

    /// Creates a single-head rule (without source positions).
    pub fn single(body: Vec<Atom>, head: Atom) -> Self {
        Rule { body, head: vec![head], spans: None }
    }

    /// Attaches source positions (used by the parser).
    pub fn with_spans(mut self, spans: RuleSpans) -> Self {
        debug_assert_eq!(spans.body.len(), self.body.len());
        debug_assert_eq!(spans.head.len(), self.head.len());
        self.spans = Some(Box::new(spans));
        self
    }

    /// The source span of the whole rule, if it was parsed from text.
    pub fn span(&self) -> Option<SrcSpan> {
        self.spans.as_ref().map(|s| s.rule)
    }

    /// The source span of the `i`-th body atom, if known.
    pub fn body_span(&self, i: usize) -> Option<SrcSpan> {
        self.spans.as_ref().and_then(|s| s.body.get(i).copied())
    }

    /// The source span of the `i`-th head atom, if known.
    pub fn head_span(&self, i: usize) -> Option<SrcSpan> {
        self.spans.as_ref().and_then(|s| s.head.get(i).copied())
    }

    /// Variables occurring in the body.
    pub fn body_vars(&self) -> FxHashSet<VarId> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// Variables occurring in the head.
    pub fn head_vars(&self) -> FxHashSet<VarId> {
        self.head.iter().flat_map(|a| a.vars()).collect()
    }

    /// The existential variables: head variables absent from the body.
    pub fn existential_vars(&self) -> FxHashSet<VarId> {
        let body = self.body_vars();
        self.head_vars().into_iter().filter(|v| !body.contains(v)).collect()
    }

    /// The frontier: variables shared between body and head.
    pub fn frontier(&self) -> FxHashSet<VarId> {
        let body = self.body_vars();
        self.head_vars().into_iter().filter(|v| body.contains(v)).collect()
    }

    /// Classifies the rule as datalog or existential TGD.
    pub fn kind(&self) -> RuleKind {
        if self.existential_vars().is_empty() {
            RuleKind::Datalog
        } else {
            RuleKind::ExistentialTgd
        }
    }

    /// Is this a plain datalog rule?
    pub fn is_datalog(&self) -> bool {
        self.kind() == RuleKind::Datalog
    }

    /// Is this rule single-head (the paper's standing assumption)?
    pub fn is_single_head(&self) -> bool {
        self.head.len() == 1
    }

    /// The single head atom.
    ///
    /// # Panics
    /// Panics if the rule is multi-head.
    pub fn head_atom(&self) -> &Atom {
        assert!(self.is_single_head(), "rule is multi-head");
        &self.head[0]
    }

    /// The body viewed as a Boolean conjunctive query.
    pub fn body_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(self.body.clone())
    }

    /// Is the rule *safe*: every frontier variable of the head occurs in the
    /// body, and the body is non-empty? (Existential variables are allowed.)
    /// For datalog rules this is the classical safety condition.
    pub fn is_safe(&self) -> bool {
        !self.body.is_empty()
    }

    /// All predicates mentioned by the rule, body then head.
    pub fn preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.body.iter().chain(self.head.iter()).map(|a| a.pred)
    }

    /// All constants mentioned by the rule.
    pub fn constants(&self) -> FxHashSet<ConstId> {
        self.body
            .iter()
            .chain(self.head.iter())
            .flat_map(|a| a.constants())
            .collect()
    }

    /// Renames all variables apart from anything already interned.
    pub fn rename_apart(&self, voc: &mut Vocabulary) -> Rule {
        let mut map = crate::fxhash::FxHashMap::default();
        let mut all: Vec<VarId> = self.body_vars().into_iter().collect();
        all.extend(self.head_vars());
        for v in all {
            map.entry(v).or_insert_with(|| {
                let name = voc.var_name(v).to_owned();
                voc.fresh_var(&name)
            });
        }
        let subst = |v: VarId| map.get(&v).map(|&w| Term::Var(w));
        Rule {
            body: self.body.iter().map(|a| a.apply(&subst)).collect(),
            head: self.head.iter().map(|a| a.apply(&subst)).collect(),
            spans: self.spans.clone(),
        }
    }

    /// A one-line human label: the pretty-printed rule, with its source
    /// position appended when known — `` `E(X,Y) -> E(Y,Z)` at 3:1 ``.
    /// The canonical way to name a rule in a diagnostic or error.
    pub fn describe(&self, voc: &Vocabulary) -> String {
        match self.span() {
            Some(span) => format!("`{}` at {span}", self.display(voc)),
            None => format!("`{}`", self.display(voc)),
        }
    }

    /// Renders the rule using names from `voc`.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayRule<'a> {
        DisplayRule { rule: self, voc }
    }
}

/// A finite set of rules — the paper's *theory* (Datalog∃ program).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Theory {
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
}

impl Theory {
    /// Creates a theory from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Theory { rules }
    }

    /// Adds a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the theory empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The existential TGDs of the theory.
    pub fn tgds(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| !r.is_datalog())
    }

    /// The plain datalog rules of the theory.
    pub fn datalog_rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| r.is_datalog())
    }

    /// Are all rules single-head (the paper's standing assumption)?
    pub fn is_single_head(&self) -> bool {
        self.rules.iter().all(|r| r.is_single_head())
    }

    /// All predicates mentioned by some rule.
    pub fn preds(&self) -> FxHashSet<PredId> {
        self.rules.iter().flat_map(|r| r.preds()).collect()
    }

    /// The *tuple-generating predicates* (TGPs, condition (♠5)): predicates
    /// occurring in the head of some existential TGD.
    pub fn tgps(&self) -> FxHashSet<PredId> {
        self.tgds().flat_map(|r| r.head.iter().map(|a| a.pred)).collect()
    }

    /// Does the theory satisfy condition (♠5) of Section 3.1?
    ///
    /// 1. every existential TGD has a single head atom of the form
    ///    `∃z R(y, z)` — binary, the frontier variable first and the unique
    ///    existential witness second;
    /// 2. no TGP occurs in the head of a datalog rule.
    pub fn satisfies_spade5(&self) -> bool {
        let tgps = self.tgps();
        for rule in &self.rules {
            match rule.kind() {
                RuleKind::ExistentialTgd => {
                    if !rule.is_single_head() {
                        return false;
                    }
                    let head = &rule.head[0];
                    if head.args.len() != 2 {
                        return false;
                    }
                    let ex = rule.existential_vars();
                    let first_is_frontier = matches!(
                        head.args[0],
                        Term::Var(v) if !ex.contains(&v)
                    ) || head.args[0].as_const().is_some();
                    let second_is_witness =
                        matches!(head.args[1], Term::Var(v) if ex.contains(&v));
                    if !first_is_frontier || !second_is_witness || ex.len() != 1 {
                        return false;
                    }
                }
                RuleKind::Datalog => {
                    if rule.head.iter().any(|a| tgps.contains(&a.pred)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The maximal number of variables in any rule body (used to size the
    /// type parameter `m` in conservativity arguments, cf. Remark 4).
    pub fn max_body_vars(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.body_query().var_count())
            .max()
            .unwrap_or(0)
    }

    /// Renders the theory, one rule per line.
    pub fn display<'a>(&'a self, voc: &'a Vocabulary) -> DisplayTheory<'a> {
        DisplayTheory { theory: self, voc }
    }
}

impl FromIterator<Rule> for Theory {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Theory::new(iter.into_iter().collect())
    }
}

/// Helper for [`Rule::display`].
pub struct DisplayRule<'a> {
    rule: &'a Rule,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayRule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.rule.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(self.voc))?;
        }
        write!(f, " -> ")?;
        let ex = self.rule.existential_vars();
        if !ex.is_empty() {
            let mut names: Vec<&str> = ex.iter().map(|&v| self.voc.var_name(v)).collect();
            names.sort_unstable();
            write!(f, "exists {} . ", names.join(","))?;
        }
        for (i, a) in self.rule.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(self.voc))?;
        }
        Ok(())
    }
}

/// Helper for [`Theory::display`].
pub struct DisplayTheory<'a> {
    theory: &'a Theory,
    voc: &'a Vocabulary,
}

impl fmt::Display for DisplayTheory<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.theory.rules {
            writeln!(f, "{}.", rule.display(self.voc))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper.
    fn example1(voc: &mut Vocabulary) -> Theory {
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 2);
        let (x, y, z, t) = (voc.var("X"), voc.var("Y"), voc.var("Z"), voc.var("T"));
        let va = |v: VarId| Term::Var(v);
        Theory::new(vec![
            Rule::single(
                vec![Atom::new(e, vec![va(x), va(y)])],
                Atom::new(e, vec![va(y), va(z)]),
            ),
            Rule::single(
                vec![
                    Atom::new(e, vec![va(x), va(y)]),
                    Atom::new(e, vec![va(y), va(z)]),
                    Atom::new(e, vec![va(z), va(x)]),
                ],
                Atom::new(u, vec![va(x), va(t)]),
            ),
            Rule::single(
                vec![Atom::new(u, vec![va(x), va(y)])],
                Atom::new(u, vec![va(y), va(z)]),
            ),
        ])
    }

    #[test]
    fn kinds_are_detected() {
        let mut voc = Vocabulary::new();
        let th = example1(&mut voc);
        assert_eq!(th.tgds().count(), 3);
        assert_eq!(th.datalog_rules().count(), 0);
        assert!(th.is_single_head());
    }

    #[test]
    fn datalog_rule_detected() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let r = Rule::single(
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
            Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
        );
        assert!(r.is_datalog());
        assert!(r.existential_vars().is_empty());
        assert_eq!(r.frontier().len(), 2);
    }

    #[test]
    fn tgps_and_spade5() {
        let mut voc = Vocabulary::new();
        let th = example1(&mut voc);
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        let tgps = th.tgps();
        assert!(tgps.contains(&e) && tgps.contains(&u));
        // Example 1 already satisfies (♠5): all TGD heads are R(y,z) with z new.
        assert!(th.satisfies_spade5());
    }

    #[test]
    fn spade5_rejects_tgp_in_datalog_head() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let tgd = Rule::single(
            vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])],
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        );
        let dl = Rule::single(
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
            ],
            Atom::new(e, vec![Term::Var(x), Term::Var(z)]),
        );
        let th = Theory::new(vec![tgd, dl]);
        assert!(!th.satisfies_spade5());
    }

    #[test]
    fn spade5_rejects_witness_first() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        // E(x,y) -> exists z. E(z,y): witness in the *first* position.
        let tgd = Rule::single(
            vec![Atom::new(e, vec![Term::Var(x), Term::Var(y)])],
            Atom::new(e, vec![Term::Var(z), Term::Var(y)]),
        );
        assert!(!Theory::new(vec![tgd]).satisfies_spade5());
    }

    #[test]
    fn rename_apart_preserves_shape() {
        let mut voc = Vocabulary::new();
        let th = example1(&mut voc);
        let r = &th.rules[1];
        let r2 = r.rename_apart(&mut voc);
        assert_eq!(r2.body.len(), 3);
        assert!(r.body_vars().is_disjoint(&r2.body_vars()));
        assert_eq!(r2.kind(), RuleKind::ExistentialTgd);
    }

    #[test]
    fn max_body_vars() {
        let mut voc = Vocabulary::new();
        let th = example1(&mut voc);
        assert_eq!(th.max_body_vars(), 3);
    }

    #[test]
    fn display_shows_existentials() {
        let mut voc = Vocabulary::new();
        let th = example1(&mut voc);
        let s = th.rules[0].display(&voc).to_string();
        assert_eq!(s, "E(X,Y) -> exists Z . E(Y,Z)");
    }
}
