//! The batched hash-join kernel over [`crate::columnar`] relations.
//!
//! The tuple-at-a-time homomorphism engine ([`crate::hom`]) re-probes
//! index hash maps once per candidate fact per partial binding. This
//! module evaluates a whole *frontier* of bindings per probe instead: a
//! [`BindingBatch`] is itself columnar (one `Vec<ConstId>` per variable),
//! and [`join_atom`] extends every row of the batch against one body atom
//! in a single pass, choosing between
//!
//! * a **hash join** that builds a table on the smaller side (the live
//!   relation segment or the frontier) and probes the other,
//! * an **index probe** through the relation's posting lists when the
//!   frontier is much smaller than the relation, and
//! * a **cross product** when the atom shares no variable with the
//!   frontier.
//!
//! All three paths emit output rows in the canonical `(frontier row,
//! relation row)` lexicographic order, so downstream consumers observe
//! the same batch whatever side the table was built on — and, because
//! work items are fixed before any parallel fan-out, the same batch at
//! any `BDDFC_THREADS` value.
//!
//! [`plan`] orders a rule body by live predicate cardinalities (smallest
//! first, pinned delta atom first in semi-naive rounds, connected atoms
//! before cross products, ties broken by atom index), and [`eval_body`]
//! folds [`join_atom`] over that order.
//!
//! The engine switch lives here too: [`join_mode`] reads `BDDFC_JOIN`
//! (`tuple` or `batch`, default batch) with a [`with_join_mode`]
//! thread-local override mirroring [`crate::par::with_thread_count`] —
//! the tuple engine is retained as the differential oracle.

use crate::columnar::{ColumnarStore, Relation};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::symbols::{ConstId, PredId, VarId};
use crate::term::{Atom, Term};
use std::cell::Cell;
use std::ops::Range;

/// Which join engine the chase and saturation enumerators use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JoinMode {
    /// The backtracking tuple-at-a-time engine ([`crate::hom`]); the
    /// differential oracle.
    Tuple,
    /// The batched columnar hash-join kernel (this module).
    #[default]
    Batch,
}

thread_local! {
    /// Per-thread override installed by [`with_join_mode`].
    static JOIN_OVERRIDE: Cell<Option<JoinMode>> = const { Cell::new(None) };
}

impl JoinMode {
    /// Parses a `BDDFC_JOIN` value: `tuple` or `batch`, case-insensitive,
    /// surrounding whitespace ignored. Anything else is an error carrying
    /// the offending value — misconfiguration must not silently select an
    /// engine (a differential run believing it crossed tuple-vs-batch
    /// would otherwise test batch-vs-batch).
    pub fn parse(raw: &str) -> Result<JoinMode, String> {
        let s = raw.trim();
        if s.eq_ignore_ascii_case("tuple") {
            Ok(JoinMode::Tuple)
        } else if s.eq_ignore_ascii_case("batch") {
            Ok(JoinMode::Batch)
        } else {
            Err(format!("BDDFC_JOIN must be `tuple` or `batch` (case-insensitive), got `{raw}`"))
        }
    }
}

/// The join engine calls on this thread will use: the innermost
/// [`with_join_mode`] override if one is active, else `BDDFC_JOIN`
/// (`tuple` selects the oracle, `batch` the kernel, case-insensitive;
/// unset or empty means batch). Resolve this *before* entering a
/// `par_*` region: worker threads do not inherit the caller's override.
///
/// # Panics
///
/// Panics on any other `BDDFC_JOIN` value, naming it — a typo like
/// `tupel` must fail loudly rather than silently select the default.
pub fn join_mode() -> JoinMode {
    if let Some(m) = JOIN_OVERRIDE.with(Cell::get) {
        return m;
    }
    match std::env::var("BDDFC_JOIN") {
        Ok(s) if s.trim().is_empty() => JoinMode::Batch,
        Ok(s) => JoinMode::parse(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => JoinMode::Batch,
    }
}

/// Runs `f` with the join mode pinned to `mode` on the current thread
/// (restored afterwards, even on panic). The differential suites use it
/// to cross-check both engines in-process.
pub fn with_join_mode<R>(mode: JoinMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<JoinMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOIN_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(JOIN_OVERRIDE.with(|c| c.replace(Some(mode))));
    f()
}

/// A columnar frontier of variable bindings: one column per schema
/// variable, all of length [`BindingBatch::rows`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BindingBatch {
    schema: Vec<VarId>,
    cols: Vec<Vec<ConstId>>,
    rows: usize,
}

impl BindingBatch {
    /// The unit frontier: one row binding nothing (the join identity).
    pub fn unit() -> Self {
        BindingBatch { schema: Vec::new(), cols: Vec::new(), rows: 1 }
    }

    /// An empty frontier (no rows) over the given schema.
    pub fn empty(schema: Vec<VarId>) -> Self {
        let cols = vec![Vec::new(); schema.len()];
        BindingBatch { schema, cols, rows: 0 }
    }

    /// Number of binding rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The bound variables, in binding order.
    pub fn schema(&self) -> &[VarId] {
        &self.schema
    }

    /// The schema slot of `v`, if bound.
    pub fn col_of(&self, v: VarId) -> Option<usize> {
        self.schema.iter().position(|&s| s == v)
    }

    /// The column of schema slot `slot`.
    pub fn col(&self, slot: usize) -> &[ConstId] {
        &self.cols[slot]
    }

    /// The element bound at `(row, slot)`.
    #[inline]
    pub fn get(&self, row: usize, slot: usize) -> ConstId {
        self.cols[slot][row]
    }
}

/// Per-predicate counters for one kernel invocation, aggregated into the
/// `join`/`build` and `join`/`probe` telemetry events. The count fields
/// are pure functions of the input (deterministic at any thread count);
/// the `*_ns` wall times are gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredJoinCounters {
    /// Hash tables built over this predicate's rows or against them.
    pub builds: u64,
    /// Rows hashed while building.
    pub build_rows: u64,
    /// Wall time spent building (a gauge).
    pub build_ns: u64,
    /// Probe passes against this predicate.
    pub probes: u64,
    /// Rows examined while probing (frontier rows, relation rows or
    /// posting-list entries, whichever side was probed).
    pub probe_rows: u64,
    /// Output rows the probe emitted.
    pub matches: u64,
    /// Wall time spent probing (a gauge).
    pub probe_ns: u64,
}

/// Per-predicate join attribution, the `join`-engine analogue of
/// [`crate::hom::ScanStats`]: accumulated shard-locally, merged
/// sequentially, emitted sorted by predicate id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    per_pred: FxHashMap<PredId, PredJoinCounters>,
}

impl JoinStats {
    fn entry(&mut self, pred: PredId) -> &mut PredJoinCounters {
        self.per_pred.entry(pred).or_default()
    }

    /// Charges one table build of `rows` hashed rows to `pred`.
    pub fn note_build(&mut self, pred: PredId, rows: u64, ns: u64) {
        let e = self.entry(pred);
        e.builds += 1;
        e.build_rows += rows;
        e.build_ns += ns;
    }

    /// Charges one probe pass over `rows` examined rows emitting
    /// `matches` output rows to `pred`.
    pub fn note_probe(&mut self, pred: PredId, rows: u64, matches: u64, ns: u64) {
        let e = self.entry(pred);
        e.probes += 1;
        e.probe_rows += rows;
        e.matches += matches;
        e.probe_ns += ns;
    }

    /// Folds another stats block into this one (for shard merging).
    pub fn merge(&mut self, other: &JoinStats) {
        for (&pred, c) in &other.per_pred {
            let e = self.entry(pred);
            e.builds += c.builds;
            e.build_rows += c.build_rows;
            e.build_ns += c.build_ns;
            e.probes += c.probes;
            e.probe_rows += c.probe_rows;
            e.matches += c.matches;
            e.probe_ns += c.probe_ns;
        }
    }

    /// `(pred, counters)` rows sorted by predicate id.
    pub fn sorted(&self) -> Vec<(PredId, PredJoinCounters)> {
        let mut rows: Vec<(PredId, PredJoinCounters)> =
            self.per_pred.iter().map(|(&p, &c)| (p, c)).collect();
        rows.sort_unstable_by_key(|&(p, _)| p);
        rows
    }

    /// Whether no work was ever charged.
    pub fn is_empty(&self) -> bool {
        self.per_pred.is_empty()
    }
}

/// Static per-predicate cardinality priors, produced by the
/// `bddfc-analyze` domain abstraction and consulted by
/// [`plan_with_priors`] when runtime cardinalities do not decide an
/// order on their own. A missing entry means "no static information"
/// and sorts last among otherwise-tied atoms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Priors {
    map: FxHashMap<PredId, u64>,
}

impl Priors {
    /// Builds priors from `(predicate, static cardinality bound)` pairs.
    pub fn new(entries: impl IntoIterator<Item = (PredId, u64)>) -> Self {
        Priors { map: entries.into_iter().collect() }
    }

    /// The static cardinality bound for `p`, if the analysis produced one.
    pub fn get(&self, p: PredId) -> Option<u64> {
        self.map.get(&p).copied()
    }

    /// Whether no predicate carries a prior.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Orders the body atoms of a rule for left-deep join evaluation.
///
/// The heuristic: the pinned (delta) atom, if any, always comes first;
/// afterwards, repeatedly pick the atom with the smallest live predicate
/// cardinality among those sharing a variable with the already-bound set
/// (falling back to all remaining atoms when none is connected), breaking
/// cardinality ties by original atom index. Returns the atom indices in
/// execution order.
pub fn plan(body: &[Atom], pinned: Option<usize>, card: impl Fn(PredId) -> usize) -> Vec<usize> {
    plan_with_priors(body, pinned, card, None)
}

/// [`plan`] with optional static cardinality priors wedged between the
/// live cardinality and the atom-index tie-break: the selection key per
/// atom is `(disconnected, live cardinality, static prior, index)`.
///
/// Live postings always dominate — priors only decide among atoms whose
/// runtime cardinalities are equal, which is exactly the state before
/// runtime postings exist (every derived predicate at 0 rows on the
/// first round, or any genuine tie later). Because the key refines the
/// [`plan`] key rather than replacing any component, passing `None` (or
/// priors that never break a tie) reproduces [`plan`]'s order bit for
/// bit — and the chase result is invariant either way, since repair
/// candidates are deduplicated by frontier key and applied in canonical
/// order whatever join order produced them.
pub fn plan_with_priors(
    body: &[Atom],
    pinned: Option<usize>,
    card: impl Fn(PredId) -> usize,
    priors: Option<&Priors>,
) -> Vec<usize> {
    let n = body.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: FxHashSet<VarId> = FxHashSet::default();
    if let Some(p) = pinned {
        order.push(p);
        used[p] = true;
        bound.extend(body[p].vars());
    }
    let prior = |p: PredId| -> u64 {
        priors.and_then(|pr| pr.get(p)).unwrap_or(u64::MAX)
    };
    while order.len() < n {
        // Minimize (disconnected, cardinality, prior, index): connected
        // atoms beat cross products, then smaller relations, then smaller
        // static bounds, then source order.
        let next = (0..n)
            .filter(|&i| !used[i])
            .map(|i| {
                let connected = body[i].vars().any(|v| bound.contains(&v));
                (!connected, card(body[i].pred), prior(body[i].pred), i)
            })
            .min()
            .expect("unused atom remains")
            .3;
        order.push(next);
        used[next] = true;
        bound.extend(body[next].vars());
    }
    order
}

/// How each argument position of the probe atom relates to the incoming
/// frontier.
struct AtomShape {
    /// `(position, required element)` — constant arguments.
    consts: Vec<(usize, ConstId)>,
    /// `(position, frontier slot)` — variables the frontier already binds.
    keys: Vec<(usize, usize)>,
    /// `(position, variable)` — first occurrence of a new variable.
    news: Vec<(usize, VarId)>,
    /// `(position, earlier position)` — repeated new variable.
    dups: Vec<(usize, usize)>,
}

fn shape(atom: &Atom, batch: &BindingBatch) -> AtomShape {
    let mut s = AtomShape { consts: Vec::new(), keys: Vec::new(), news: Vec::new(), dups: Vec::new() };
    for (pos, term) in atom.args.iter().enumerate() {
        match term {
            Term::Const(c) => s.consts.push((pos, *c)),
            Term::Var(v) => {
                if let Some(slot) = batch.col_of(*v) {
                    s.keys.push((pos, slot));
                } else if let Some(&(first, _)) = s.news.iter().find(|&&(_, nv)| nv == *v) {
                    s.dups.push((pos, first));
                } else {
                    s.news.push((pos, *v));
                }
            }
        }
    }
    s
}

/// Does relation row `t` satisfy the atom's constant and repeated-variable
/// constraints (everything except the join key)?
#[inline]
fn row_passes(rel: &Relation, t: usize, s: &AtomShape) -> bool {
    s.consts.iter().all(|&(pos, c)| rel.get(t, pos) == c)
        && s.dups.iter().all(|&(pos, first)| rel.get(t, pos) == rel.get(t, first))
}

/// Join keys over at most two columns pack into one `u64`; wider keys
/// fall back to allocated vectors.
enum Table {
    Packed(FxHashMap<u64, Vec<u32>>),
    Wide(FxHashMap<Vec<ConstId>, Vec<u32>>),
}

#[inline]
fn pack2(a: ConstId, b: ConstId) -> u64 {
    (u64::from(a.0) << 32) | u64::from(b.0)
}

#[inline]
fn rel_key_packed(rel: &Relation, t: usize, keys: &[(usize, usize)]) -> u64 {
    match keys {
        [(p, _)] => u64::from(rel.get(t, *p).0),
        [(p0, _), (p1, _)] => pack2(rel.get(t, *p0), rel.get(t, *p1)),
        _ => unreachable!("packed keys have 1 or 2 columns"),
    }
}

#[inline]
fn batch_key_packed(batch: &BindingBatch, r: usize, keys: &[(usize, usize)]) -> u64 {
    match keys {
        [(_, s)] => u64::from(batch.get(r, *s).0),
        [(_, s0), (_, s1)] => pack2(batch.get(r, *s0), batch.get(r, *s1)),
        _ => unreachable!("packed keys have 1 or 2 columns"),
    }
}

/// Gathers the output batch from canonical `(frontier row, relation row)`
/// pairs: the frontier columns come along unchanged, the atom's new
/// variables are appended from the relation's columns.
fn gather(batch: &BindingBatch, rel: &Relation, s: &AtomShape, pairs: &[(u32, u32)]) -> BindingBatch {
    let mut schema = batch.schema.clone();
    schema.extend(s.news.iter().map(|&(_, v)| v));
    let mut cols = Vec::with_capacity(schema.len());
    for slot in 0..batch.schema.len() {
        let src = batch.col(slot);
        cols.push(pairs.iter().map(|&(r, _)| src[r as usize]).collect());
    }
    for &(pos, _) in &s.news {
        let src = rel.col(pos);
        cols.push(pairs.iter().map(|&(_, t)| src[t as usize]).collect());
    }
    BindingBatch { schema, cols, rows: pairs.len() }
}

/// When the live relation segment has at least this many rows per
/// frontier row, probe the relation's posting lists instead of hashing a
/// side — the batched analogue of the tuple engine's index lookups.
const INDEX_PROBE_FACTOR: usize = 8;

/// Extends every row of `batch` against `atom`, restricted to the
/// relation rows in `range` (the live segment: the full relation, or the
/// delta tail in semi-naive rounds). Output rows appear in canonical
/// `(frontier row, relation row)` order; the output schema is the input
/// schema plus the atom's new variables in first-occurrence order.
pub fn join_atom(
    store: &ColumnarStore,
    batch: &BindingBatch,
    atom: &Atom,
    range: Range<usize>,
    stats: Option<&mut JoinStats>,
) -> BindingBatch {
    let s = shape(atom, batch);
    let mut out_schema: Vec<VarId> = batch.schema.clone();
    out_schema.extend(s.news.iter().map(|&(_, v)| v));
    let Some(rel) = store.relation(atom.pred) else {
        return BindingBatch::empty(out_schema);
    };
    if batch.rows == 0 || range.is_empty() || rel.arity() != atom.args.len() {
        return BindingBatch::empty(out_schema);
    }
    let timed = stats.is_some();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    if s.keys.is_empty() {
        // Cross product: filter the segment once, pair with every
        // frontier row in order.
        let timer = timed.then(crate::obs::SpanTimer::start);
        let matched: Vec<u32> =
            range.clone().filter(|&t| row_passes(rel, t, &s)).map(|t| t as u32).collect();
        for r in 0..batch.rows as u32 {
            pairs.extend(matched.iter().map(|&t| (r, t)));
        }
        if let Some(stats) = stats {
            let ns = timer.map_or(0, |t| t.elapsed_ns());
            stats.note_probe(atom.pred, range.len() as u64, pairs.len() as u64, ns);
        }
        return gather(batch, rel, &s, &pairs);
    }
    if range.len() >= INDEX_PROBE_FACTOR.saturating_mul(batch.rows) {
        // Index probe: per frontier row, walk the shortest posting list
        // among the key positions and verify the rest by column lookups.
        let timer = timed.then(crate::obs::SpanTimer::start);
        let mut probed = 0u64;
        for r in 0..batch.rows {
            let list = s
                .keys
                .iter()
                .map(|&(pos, slot)| rel.matching(pos, batch.get(r, slot)))
                .min_by_key(|l| l.len())
                .expect("at least one key position");
            let lo = list.partition_point(|&t| (t as usize) < range.start);
            let hi = list.partition_point(|&t| (t as usize) < range.end);
            for &t in &list[lo..hi] {
                probed += 1;
                let t_us = t as usize;
                if row_passes(rel, t_us, &s)
                    && s.keys.iter().all(|&(pos, slot)| rel.get(t_us, pos) == batch.get(r, slot))
                {
                    pairs.push((r as u32, t));
                }
            }
        }
        if let Some(stats) = stats {
            let ns = timer.map_or(0, |t| t.elapsed_ns());
            stats.note_probe(atom.pred, probed, pairs.len() as u64, ns);
        }
        return gather(batch, rel, &s, &pairs);
    }
    // Hash join, table on the smaller side.
    let packed = s.keys.len() <= 2;
    if range.len() <= batch.rows {
        // Build on the relation segment, probe frontier rows in order.
        let build_timer = timed.then(crate::obs::SpanTimer::start);
        let table = if packed {
            let mut t: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for row in range.clone().filter(|&t| row_passes(rel, t, &s)) {
                t.entry(rel_key_packed(rel, row, &s.keys)).or_default().push(row as u32);
            }
            Table::Packed(t)
        } else {
            let mut t: FxHashMap<Vec<ConstId>, Vec<u32>> = FxHashMap::default();
            for row in range.clone().filter(|&t| row_passes(rel, t, &s)) {
                let key: Vec<ConstId> = s.keys.iter().map(|&(pos, _)| rel.get(row, pos)).collect();
                t.entry(key).or_default().push(row as u32);
            }
            Table::Wide(t)
        };
        let build_ns = build_timer.map_or(0, |t| t.elapsed_ns());
        let probe_timer = timed.then(crate::obs::SpanTimer::start);
        for r in 0..batch.rows {
            let hits = match &table {
                Table::Packed(t) => t.get(&batch_key_packed(batch, r, &s.keys)),
                Table::Wide(t) => {
                    let key: Vec<ConstId> =
                        s.keys.iter().map(|&(_, slot)| batch.get(r, slot)).collect();
                    t.get(&key)
                }
            };
            if let Some(hits) = hits {
                pairs.extend(hits.iter().map(|&t| (r as u32, t)));
            }
        }
        if let Some(stats) = stats {
            stats.note_build(atom.pred, range.len() as u64, build_ns);
            let ns = probe_timer.map_or(0, |t| t.elapsed_ns());
            stats.note_probe(atom.pred, batch.rows as u64, pairs.len() as u64, ns);
        }
    } else {
        // Build on the frontier, probe the relation segment, then restore
        // canonical order (probing ascends in relation rows, so sorting
        // by the pair is a cheap near-sorted pass).
        let build_timer = timed.then(crate::obs::SpanTimer::start);
        let table = if packed {
            let mut t: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for r in 0..batch.rows {
                t.entry(batch_key_packed(batch, r, &s.keys)).or_default().push(r as u32);
            }
            Table::Packed(t)
        } else {
            let mut t: FxHashMap<Vec<ConstId>, Vec<u32>> = FxHashMap::default();
            for r in 0..batch.rows {
                let key: Vec<ConstId> =
                    s.keys.iter().map(|&(_, slot)| batch.get(r, slot)).collect();
                t.entry(key).or_default().push(r as u32);
            }
            Table::Wide(t)
        };
        let build_ns = build_timer.map_or(0, |t| t.elapsed_ns());
        let probe_timer = timed.then(crate::obs::SpanTimer::start);
        for row in range.clone().filter(|&t| row_passes(rel, t, &s)) {
            let hits = match &table {
                Table::Packed(t) => t.get(&rel_key_packed(rel, row, &s.keys)),
                Table::Wide(t) => {
                    let key: Vec<ConstId> =
                        s.keys.iter().map(|&(pos, _)| rel.get(row, pos)).collect();
                    t.get(&key)
                }
            };
            if let Some(hits) = hits {
                pairs.extend(hits.iter().map(|&r| (r, row as u32)));
            }
        }
        pairs.sort_unstable();
        if let Some(stats) = stats {
            stats.note_build(atom.pred, batch.rows as u64, build_ns);
            let ns = probe_timer.map_or(0, |t| t.elapsed_ns());
            stats.note_probe(atom.pred, range.len() as u64, pairs.len() as u64, ns);
        }
    }
    gather(batch, rel, &s, &pairs)
}

/// Evaluates a whole rule body over the store: plans the atom order (the
/// pinned atom, if any, restricted to its `range` segment and evaluated
/// first) and folds [`join_atom`] left-deep over the frontier. The
/// result's rows are exactly the body's homomorphisms (one row per
/// distinct fact combination); an empty body yields the unit batch.
/// Returns early — with a possibly partial schema — once the frontier
/// empties.
pub fn eval_body(
    store: &ColumnarStore,
    body: &[Atom],
    pinned: Option<(usize, Range<usize>)>,
    stats: Option<&mut JoinStats>,
) -> BindingBatch {
    eval_body_with_priors(store, body, pinned, stats, None)
}

/// [`eval_body`] planning with the static cardinality priors of
/// [`plan_with_priors`]. The *set* of result rows is identical for any
/// priors (only the join order, and hence the row order within the
/// canonical contract, may differ among runtime-cardinality ties).
pub fn eval_body_with_priors(
    store: &ColumnarStore,
    body: &[Atom],
    pinned: Option<(usize, Range<usize>)>,
    mut stats: Option<&mut JoinStats>,
    priors: Option<&Priors>,
) -> BindingBatch {
    let order =
        plan_with_priors(body, pinned.as_ref().map(|&(i, _)| i), |p| store.rows(p), priors);
    let mut batch = BindingBatch::unit();
    for &ai in &order {
        let range = match &pinned {
            Some((pi, r)) if *pi == ai => r.clone(),
            _ => 0..store.rows(body[ai].pred),
        };
        batch = join_atom(store, &batch, &body[ai], range, stats.as_deref_mut());
        if batch.rows == 0 {
            return batch;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::{self, Binding};
    use crate::instance::Instance;
    use crate::symbols::Vocabulary;
    use crate::term::Fact;
    use std::ops::ControlFlow;

    /// All homomorphisms of `body` into `inst` by the tuple oracle, as a
    /// sorted multiset of full bindings projected on `vars`.
    fn oracle_homs(inst: &Instance, body: &[Atom], vars: &[VarId]) -> Vec<Vec<ConstId>> {
        let mut out = Vec::new();
        let _ = hom::for_each_hom(inst, body, &Binding::default(), |b| {
            out.push(vars.iter().map(|v| b[v]).collect());
            ControlFlow::Continue(())
        });
        out.sort_unstable();
        out
    }

    /// Same projection from a batch.
    fn batch_homs(batch: &BindingBatch, vars: &[VarId]) -> Vec<Vec<ConstId>> {
        let slots: Vec<usize> = vars.iter().map(|&v| batch.col_of(v).unwrap()).collect();
        let mut out: Vec<Vec<ConstId>> = (0..batch.rows())
            .map(|r| slots.iter().map(|&s| batch.get(r, s)).collect())
            .collect();
        out.sort_unstable();
        out
    }

    fn graph(voc: &mut Vocabulary, edges: &[(usize, usize)]) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        for &(a, b) in edges {
            let ca = voc.constant(&format!("c{a}"));
            let cb = voc.constant(&format!("c{b}"));
            inst.insert(Fact::new(e, vec![ca, cb]));
        }
        inst
    }

    #[test]
    fn join_mode_parse_accepts_both_engines_case_insensitively() {
        for raw in ["tuple", "TUPLE", "Tuple", " tuple ", "\ttUpLe"] {
            assert_eq!(JoinMode::parse(raw), Ok(JoinMode::Tuple), "raw = {raw:?}");
        }
        for raw in ["batch", "BATCH", "Batch", " batch "] {
            assert_eq!(JoinMode::parse(raw), Ok(JoinMode::Batch), "raw = {raw:?}");
        }
    }

    #[test]
    fn join_mode_parse_rejects_garbage_naming_the_value() {
        // The motivating typo: `tupel` must not silently mean batch.
        let err = JoinMode::parse("tupel").unwrap_err();
        assert_eq!(err, "BDDFC_JOIN must be `tuple` or `batch` (case-insensitive), got `tupel`");
        for raw in ["bogus", "tuple,batch", "1", "tuples"] {
            let err = JoinMode::parse(raw).unwrap_err();
            assert!(err.contains(raw), "error {err:?} must name the value {raw:?}");
        }
    }

    #[test]
    fn join_mode_default_and_override() {
        // Whatever the ambient environment says, the override wins and is
        // restored afterwards (even across panics).
        with_join_mode(JoinMode::Tuple, || {
            assert_eq!(join_mode(), JoinMode::Tuple);
            with_join_mode(JoinMode::Batch, || assert_eq!(join_mode(), JoinMode::Batch));
            assert_eq!(join_mode(), JoinMode::Tuple);
        });
        let ambient = join_mode();
        let _ = std::panic::catch_unwind(|| {
            with_join_mode(JoinMode::Tuple, || panic!("unwind through the guard"))
        });
        assert_eq!(join_mode(), ambient);
    }

    #[test]
    fn planner_orders_by_cardinality_with_index_tie_break() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let (x, y) = (voc.var("X"), voc.var("Y"));
        // Body: E(X,Y), U(X), E(Y,X) with |E| = 10, |U| = 3.
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(u, vec![Term::Var(x)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(x)]),
        ];
        let card = |p: PredId| if p == e { 10 } else { 3 };
        // Smallest first (U), then connected E atoms in index order — the
        // cardinality tie between atoms 0 and 2 breaks by atom index.
        assert_eq!(plan(&body, None, card), vec![1, 0, 2]);
        // A pinned atom always leads, whatever its cardinality.
        assert_eq!(plan(&body, Some(2), card), vec![2, 1, 0]);
        // Equal cardinalities everywhere: pure source order.
        assert_eq!(plan(&body, None, |_| 5), vec![0, 1, 2]);
    }

    #[test]
    fn planner_prefers_connected_atoms_over_smaller_cross_products() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        // U(Z) is smallest but disconnected from the pinned atom.
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(u, vec![Term::Var(z)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let card = |p: PredId| if p == e { 10 } else { 1 };
        assert_eq!(plan(&body, Some(0), card), vec![0, 2, 1]);
    }

    #[test]
    fn path_join_matches_tuple_oracle() {
        let mut voc = Vocabulary::new();
        let inst = graph(&mut voc, &[(0, 1), (1, 2), (2, 3), (1, 3), (3, 0), (2, 2)]);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let batch = eval_body(inst.columnar(), &body, None, None);
        assert_eq!(batch_homs(&batch, &[x, y, z]), oracle_homs(&inst, &body, &[x, y, z]));
    }

    #[test]
    fn all_probe_strategies_agree_with_the_oracle() {
        // A frontier of every size from 0 up, against segments of every
        // size, drives the cross-product, index-probe and both hash-join
        // paths through the same query.
        let mut voc = Vocabulary::new();
        let edges: Vec<(usize, usize)> = (0..40).map(|i| (i % 7, (i * 3 + 1) % 7)).collect();
        let inst = graph(&mut voc, &edges);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let first = Atom::new(e, vec![Term::Var(x), Term::Var(y)]);
        let second = Atom::new(e, vec![Term::Var(y), Term::Var(z)]);
        let rows = inst.columnar().rows(e);
        for seed_hi in [0, 1, 3, rows] {
            // Seed the frontier from a segment prefix of E.
            let seed = join_atom(inst.columnar(), &BindingBatch::unit(), &first, 0..seed_hi, None);
            for probe_hi in [0, 1, 5, rows] {
                let got = join_atom(inst.columnar(), &seed, &second, 0..probe_hi, None);
                // Oracle: nested loop over the two segments.
                let rel = inst.columnar().relation(e).unwrap();
                let mut expect = Vec::new();
                for r in 0..seed.rows() {
                    for t in 0..probe_hi {
                        if rel.get(t, 0) == seed.get(r, seed.col_of(y).unwrap()) {
                            expect.push(vec![
                                seed.get(r, seed.col_of(x).unwrap()),
                                rel.get(t, 0),
                                rel.get(t, 1),
                            ]);
                        }
                    }
                }
                expect.sort_unstable();
                assert_eq!(batch_homs(&got, &[x, y, z]), expect, "seed {seed_hi} probe {probe_hi}");
            }
        }
    }

    #[test]
    fn canonical_order_is_frontier_major() {
        // Output rows come in (frontier row, relation row) order on every
        // strategy; with the frontier seeded in relation order this means
        // the first output column is non-decreasing.
        let mut voc = Vocabulary::new();
        let inst = graph(&mut voc, &[(0, 1), (0, 2), (1, 2), (2, 0), (2, 1), (1, 0)]);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let batch = eval_body(inst.columnar(), &body, None, None);
        let xs = batch.col(batch.col_of(x).unwrap());
        let ys = batch.col(batch.col_of(y).unwrap());
        let pairs: Vec<(ConstId, ConstId)> =
            xs.iter().copied().zip(ys.iter().copied()).collect();
        let mut sorted_by_seed = pairs.clone();
        // The frontier enumerated E rows in order; the output must keep
        // that outer order (stably).
        let rel = inst.columnar().relation(e).unwrap();
        let seed_order: Vec<(ConstId, ConstId)> =
            (0..rel.rows()).map(|t| (rel.get(t, 0), rel.get(t, 1))).collect();
        sorted_by_seed.sort_by_key(|p| seed_order.iter().position(|q| q == p).unwrap());
        assert_eq!(pairs, sorted_by_seed);
    }

    #[test]
    fn constants_and_repeated_variables_constrain_matches() {
        let mut voc = Vocabulary::new();
        let mut inst = graph(&mut voc, &[(0, 1), (1, 1), (2, 2), (2, 1)]);
        let e = voc.find_pred("E").unwrap();
        let x = voc.var("X");
        let c1 = voc.find_const("c1").unwrap();
        // E(X,X): only the self-loops.
        let diag = vec![Atom::new(e, vec![Term::Var(x), Term::Var(x)])];
        let batch = eval_body(inst.columnar(), &diag, None, None);
        assert_eq!(batch_homs(&batch, &[x]), oracle_homs(&inst, &diag, &[x]));
        assert_eq!(batch.rows(), 2);
        // E(X,c1): constant in the second position.
        let to1 = vec![Atom::new(e, vec![Term::Var(x), Term::Const(c1)])];
        let batch = eval_body(inst.columnar(), &to1, None, None);
        assert_eq!(batch_homs(&batch, &[x]), oracle_homs(&inst, &to1, &[x]));
        // Bound repeated variable: frontier binds X, then E(X,X) keys on
        // both positions.
        let u = voc.pred("U", 1);
        let c2 = voc.find_const("c2").unwrap();
        inst.insert(Fact::new(u, vec![c1]));
        inst.insert(Fact::new(u, vec![c2]));
        let body = vec![
            Atom::new(u, vec![Term::Var(x)]),
            Atom::new(e, vec![Term::Var(x), Term::Var(x)]),
        ];
        let batch = eval_body(inst.columnar(), &body, None, None);
        assert_eq!(batch_homs(&batch, &[x]), oracle_homs(&inst, &body, &[x]));
    }

    #[test]
    fn empty_cases_produce_empty_batches() {
        let mut voc = Vocabulary::new();
        let inst = graph(&mut voc, &[(0, 1)]);
        let e = voc.find_pred("E").unwrap();
        let missing = voc.pred("Missing", 1);
        let (x, y) = (voc.var("X"), voc.var("Y"));
        // Unknown predicate: no rows, schema still extends.
        let body = vec![Atom::new(missing, vec![Term::Var(x)])];
        let batch = eval_body(inst.columnar(), &body, None, None);
        assert_eq!(batch.rows(), 0);
        assert_eq!(batch.schema(), &[x]);
        // Empty segment of a known predicate.
        let edge = Atom::new(e, vec![Term::Var(x), Term::Var(y)]);
        let batch = join_atom(inst.columnar(), &BindingBatch::unit(), &edge, 0..0, None);
        assert_eq!(batch.rows(), 0);
        // Empty frontier in, empty batch out.
        let empty = BindingBatch::empty(vec![x]);
        let batch = join_atom(inst.columnar(), &empty, &edge, 0..1, None);
        assert_eq!(batch.rows(), 0);
        assert_eq!(batch.schema(), &[x, y]);
        // Empty body: the unit frontier.
        assert_eq!(eval_body(inst.columnar(), &[], None, None).rows(), 1);
    }

    #[test]
    fn cross_products_enumerate_all_combinations() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let u = voc.pred("U", 1);
        let mut inst = Instance::new();
        let cs: Vec<ConstId> = (0..4).map(|i| voc.constant(&format!("c{i}"))).collect();
        inst.insert(Fact::new(e, vec![cs[0], cs[1]]));
        inst.insert(Fact::new(e, vec![cs[2], cs[3]]));
        for &c in &cs[..3] {
            inst.insert(Fact::new(u, vec![c]));
        }
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(u, vec![Term::Var(z)]),
        ];
        let batch = eval_body(inst.columnar(), &body, None, None);
        assert_eq!(batch.rows(), 6);
        assert_eq!(batch_homs(&batch, &[x, y, z]), oracle_homs(&inst, &body, &[x, y, z]));
    }

    #[test]
    fn pinned_segments_partition_the_join() {
        // Semi-naive contract: summing rows over (pin, delta-segment)
        // work items with the complementary "old" segments equals... at
        // minimum, pinning the full range equals the unpinned join.
        let mut voc = Vocabulary::new();
        let inst = graph(&mut voc, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let rows = inst.columnar().rows(e);
        let full = eval_body(inst.columnar(), &body, None, None);
        for pin in 0..2 {
            let pinned = eval_body(inst.columnar(), &body, Some((pin, 0..rows)), None);
            assert_eq!(batch_homs(&pinned, &[x, y, z]), batch_homs(&full, &[x, y, z]));
            // A strict tail segment yields a subset.
            let tail = eval_body(inst.columnar(), &body, Some((pin, rows - 2..rows)), None);
            let all = batch_homs(&full, &[x, y, z]);
            assert!(batch_homs(&tail, &[x, y, z]).iter().all(|h| all.contains(h)));
        }
    }

    #[test]
    fn wide_keys_fall_back_to_vector_tables() {
        // A 3-column join key exercises the Wide table path.
        let mut voc = Vocabulary::new();
        let t = voc.pred("T", 3);
        let mut inst = Instance::new();
        let cs: Vec<ConstId> = (0..3).map(|i| voc.constant(&format!("c{i}"))).collect();
        for a in 0..3 {
            for b in 0..3 {
                inst.insert(Fact::new(t, vec![cs[a], cs[b], cs[(a + b) % 3]]));
            }
        }
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(t, vec![Term::Var(x), Term::Var(y), Term::Var(z)]),
            Atom::new(t, vec![Term::Var(y), Term::Var(z), Term::Var(x)]),
        ];
        let batch = eval_body(inst.columnar(), &body, None, None);
        assert_eq!(batch_homs(&batch, &[x, y, z]), oracle_homs(&inst, &body, &[x, y, z]));
    }

    #[test]
    fn stats_charge_builds_and_probes_deterministically() {
        let mut voc = Vocabulary::new();
        let inst = graph(&mut voc, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let e = voc.find_pred("E").unwrap();
        let (x, y, z) = (voc.var("X"), voc.var("Y"), voc.var("Z"));
        let body = vec![
            Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(e, vec![Term::Var(y), Term::Var(z)]),
        ];
        let run = || {
            let mut stats = JoinStats::default();
            let batch = eval_body(inst.columnar(), &body, None, Some(&mut stats));
            (batch, stats)
        };
        let (b1, s1) = run();
        let (b2, s2) = run();
        assert_eq!(b1, b2);
        // Counts are pure functions of the input; only the ns gauges may
        // differ between runs.
        let strip = |s: &JoinStats| {
            s.sorted()
                .into_iter()
                .map(|(p, c)| (p, c.builds, c.build_rows, c.probes, c.probe_rows, c.matches))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&s1), strip(&s2));
        let rows = s1.sorted();
        assert_eq!(rows.len(), 1);
        let (pred, c) = rows[0];
        assert_eq!(pred, e);
        // Matches accumulate across both E probes: the seed scan emits one
        // row per E fact, the join emits the final frontier.
        assert_eq!(c.matches as usize, inst.columnar().rows(e) + b1.rows());
        assert!(c.probes >= 2);
        // Merging doubles every count.
        let mut merged = JoinStats::default();
        merged.merge(&s1);
        merged.merge(&s1);
        let doubled = merged.sorted()[0].1;
        assert_eq!(doubled.matches, 2 * c.matches);
        assert_eq!(doubled.probe_rows, 2 * c.probe_rows);
    }
}
