//! A live metrics registry: monotonic counters, gauges and latency
//! histograms, std-only, with deterministic exposition.
//!
//! This is the *operational* face of the telemetry layer: where
//! [`super::Event`]s describe what an engine did once, the registry
//! holds the **current** state of a long-running process — request
//! counts, resident-fact gauges, per-command latency histograms (the
//! 65-bucket [`LogHistogram`] of [`super`]) — and renders it on demand
//! as a one-line JSON snapshot or as Prometheus text exposition format.
//!
//! ## Determinism contract
//!
//! The registry inherits the fields-vs-gauges split of the event layer:
//! every metric is either **deterministic** (request counts, fact
//! totals, DRed cascade sizes — identical at any `BDDFC_THREADS`
//! setting for the same command sequence, because the engines underneath
//! are) or **timing-derived** (lock-wait nanoseconds, latency histogram
//! *bucket contents*; histogram *counts* are deterministic, where a
//! value lands is not). Both renderings segregate the two:
//!
//! * [`MetricsSnapshot::to_json`] puts every timing-derived datum under
//!   one trailing `"timing"` object, so the deterministic prefix of the
//!   line (everything before `,"timing":`) is byte-identical across
//!   thread counts — [`MetricsSnapshot::to_json_deterministic`] renders
//!   exactly that prefix as a complete object;
//! * in [`MetricsSnapshot::to_prometheus`], every timing-derived series
//!   has `_ns` in its metric name (a naming rule this module's users
//!   follow, pinned in the serve determinism tests), so a scrape with
//!   `_ns` lines filtered out is byte-identical across thread counts.
//!
//! All maps are `BTreeMap`s, so iteration — and therefore both
//! expositions — is deterministically ordered.
//!
//! ## Shard-local accumulation
//!
//! The registry itself is a mutex; hot paths do not take it per
//! increment. Instead they accumulate into a stack-local
//! [`LocalMetrics`] (plain maps, no locks) and fold it in with one
//! [`MetricsRegistry::merge`] from the sequential phase — the same
//! shard-then-merge contract as the span layer, which is what keeps
//! snapshots deterministic and the hot path cheap.

use super::{json_escape, LogHistogram, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A metric key: a name plus at most one `label="value"` pair (all
/// `'static`, so hot paths never allocate to name a metric).
pub type Key = (&'static str, Option<(&'static str, &'static str)>);

/// Renders a key in Prometheus sample notation:
/// `name` or `name{label="value"}`.
pub fn key_string(key: &Key) -> String {
    match key.1 {
        None => key.0.to_string(),
        Some((l, v)) => format!("{}{{{}=\"{}\"}}", key.0, l, json_escape(v)),
    }
}

/// One scalar cell: the value plus whether it is timing-derived
/// (`env`), which decides where exposition puts it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Cell {
    value: u64,
    env: bool,
}

/// One histogram: bucket counts plus the sum of observed values. The
/// count is deterministic; bucket placement and sum are timing-derived.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Histo {
    hist: LogHistogram,
    sum: u64,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Cell>,
    gauges: BTreeMap<Key, Cell>,
    histograms: BTreeMap<Key, Histo>,
    help: BTreeMap<&'static str, &'static str>,
}

/// The process-wide metrics registry (see the module docs).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// A lock-free shard-local accumulator, folded into the registry with
/// [`MetricsRegistry::merge`] from a sequential phase.
///
/// Backed by flat vectors, not maps: one request touches a handful of
/// keys, where linear scans beat tree nodes, and observations are kept
/// raw (key + value) instead of materialising a 65-bucket histogram
/// per request — the serve request path's 5% overhead budget is the
/// reason this type exists.
#[derive(Default)]
pub struct LocalMetrics {
    counters: Vec<(Key, Cell)>,
    gauges: Vec<(Key, Cell)>,
    observations: Vec<(Key, u64)>,
}

fn flat_cell(cells: &mut Vec<(Key, Cell)>, key: Key) -> &mut Cell {
    match cells.iter().position(|(k, _)| *k == key) {
        Some(i) => &mut cells[i].1,
        None => {
            cells.push((key, Cell::default()));
            &mut cells.last_mut().expect("just pushed").1
        }
    }
}

impl LocalMetrics {
    /// An empty accumulator.
    pub fn new() -> Self {
        LocalMetrics::default()
    }

    /// Adds `delta` to a deterministic monotonic counter.
    pub fn counter_add(&mut self, name: &'static str, label: Option<(&'static str, &'static str)>, delta: u64) {
        flat_cell(&mut self.counters, (name, label)).value += delta;
    }

    /// Adds `delta` to a timing-derived counter (name should carry
    /// `_ns`; exposition files it under `"timing"`).
    pub fn counter_add_ns(&mut self, name: &'static str, label: Option<(&'static str, &'static str)>, delta: u64) {
        let cell = flat_cell(&mut self.counters, (name, label));
        cell.value += delta;
        cell.env = true;
    }

    /// Sets a deterministic gauge (last write wins at merge).
    pub fn gauge_set(&mut self, name: &'static str, label: Option<(&'static str, &'static str)>, value: u64) {
        *flat_cell(&mut self.gauges, (name, label)) = Cell { value, env: false };
    }

    /// Records one observation into a latency histogram.
    pub fn observe(&mut self, name: &'static str, label: Option<(&'static str, &'static str)>, value: u64) {
        self.observations.push(((name, label), value));
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Attaches `# HELP` text to a metric name (idempotent; shown in
    /// Prometheus exposition).
    pub fn describe(&self, name: &'static str, help: &'static str) {
        self.inner.lock().unwrap().help.insert(name, help);
    }

    /// Adds `delta` to a deterministic monotonic counter.
    pub fn counter_add(&self, name: &'static str, label: Option<(&'static str, &'static str)>, delta: u64) {
        self.inner.lock().unwrap().counters.entry((name, label)).or_default().value += delta;
    }

    /// Adds `delta` to a timing-derived counter.
    pub fn counter_add_ns(&self, name: &'static str, label: Option<(&'static str, &'static str)>, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let cell = inner.counters.entry((name, label)).or_default();
        cell.value += delta;
        cell.env = true;
    }

    /// Sets a deterministic gauge.
    pub fn gauge_set(&self, name: &'static str, label: Option<(&'static str, &'static str)>, value: u64) {
        self.inner.lock().unwrap().gauges.insert((name, label), Cell { value, env: false });
    }

    /// Sets a timing-derived gauge.
    pub fn gauge_set_ns(&self, name: &'static str, label: Option<(&'static str, &'static str)>, value: u64) {
        self.inner.lock().unwrap().gauges.insert((name, label), Cell { value, env: true });
    }

    /// Records one observation into a latency histogram.
    pub fn observe(&self, name: &'static str, label: Option<(&'static str, &'static str)>, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.histograms.entry((name, label)).or_default();
        h.hist.record(value);
        h.sum = h.sum.saturating_add(value);
    }

    /// Folds a shard-local accumulator in: counters and histogram
    /// buckets add, gauges overwrite. One lock acquisition for the
    /// whole batch; call from a sequential phase only (the merge order
    /// is the caller's responsibility, as everywhere in
    /// [`crate::par`]'s contract).
    pub fn merge(&self, local: &LocalMetrics) {
        let mut inner = self.inner.lock().unwrap();
        for (k, c) in &local.counters {
            let cell = inner.counters.entry(*k).or_default();
            cell.value += c.value;
            cell.env |= c.env;
        }
        for (k, g) in &local.gauges {
            inner.gauges.insert(*k, *g);
        }
        for (k, v) in &local.observations {
            let cell = inner.histograms.entry(*k).or_default();
            cell.hist.record(*v);
            cell.sum = cell.sum.saturating_add(*v);
        }
    }

    /// The current value of one counter (0 if never touched).
    pub fn counter(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .find(|((n, l), _)| *n == name && l.map(|(a, b)| (a, b)) == label)
            .map_or(0, |(_, c)| c.value)
    }

    /// An owned, immutable snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, c)| (*k, *c)).collect(),
            gauges: inner.gauges.iter().map(|(k, c)| (*k, *c)).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (*k, h.clone())).collect(),
            help: inner.help.clone(),
        }
    }
}

/// An immutable snapshot of a [`MetricsRegistry`], with the two
/// exposition renderings. Field order inside is the registry's
/// `BTreeMap` order, so renderings are deterministic.
pub struct MetricsSnapshot {
    counters: Vec<(Key, Cell)>,
    gauges: Vec<(Key, Cell)>,
    histograms: Vec<(Key, Histo)>,
    help: BTreeMap<&'static str, &'static str>,
}

impl MetricsSnapshot {
    /// The value of one counter in this snapshot (0 if absent).
    pub fn counter(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        self.counters
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map_or(0, |(_, c)| c.value)
    }

    /// The value of one gauge in this snapshot (`None` if absent).
    pub fn gauge(&self, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
        self.gauges.iter().find(|((n, l), _)| *n == name && *l == label).map(|(_, c)| c.value)
    }

    /// Total observation count of one histogram (0 if absent).
    pub fn histogram_count(&self, name: &str, label: Option<(&str, &str)>) -> u64 {
        self.histograms
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map_or(0, |(_, h)| h.hist.count())
    }

    /// Renders the deterministic core: schema, deterministic counters
    /// and gauges, and histogram *counts*. Byte-identical across
    /// `BDDFC_THREADS` for the same command sequence.
    pub fn to_json_deterministic(&self) -> String {
        let mut out = self.json_core();
        out.push('}');
        out
    }

    /// Renders the full one-line JSON snapshot: the deterministic core
    /// plus one trailing `"timing"` object holding every timing-derived
    /// datum (env counters/gauges, histogram sums and bucket vectors).
    /// Truncating the line before `,"timing":` and closing the brace
    /// recovers [`MetricsSnapshot::to_json_deterministic`] exactly.
    pub fn to_json(&self) -> String {
        let mut out = self.json_core();
        out.push_str(",\"timing\":{");
        let mut first = true;
        let mut obj = |out: &mut String, name: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":");
        };
        obj(&mut out, "counters");
        out.push('{');
        let mut sep = "";
        for (k, c) in self.counters.iter().filter(|(_, c)| c.env) {
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(&key_string(k)), c.value);
            sep = ",";
        }
        out.push('}');
        obj(&mut out, "gauges");
        out.push('{');
        let mut sep = "";
        for (k, c) in self.gauges.iter().filter(|(_, c)| c.env) {
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(&key_string(k)), c.value);
            sep = ",";
        }
        out.push('}');
        obj(&mut out, "histograms");
        out.push('{');
        let mut sep = "";
        for (k, h) in &self.histograms {
            let _ = write!(out, "{sep}\"{}\":{{\"sum\":{},\"buckets\":[", json_escape(&key_string(k)), h.sum);
            let mut bsep = "";
            for (i, c) in h.hist.nonzero() {
                let _ = write!(out, "{bsep}[{i},{c}]");
                bsep = ",";
            }
            out.push_str("]}");
            sep = ",";
        }
        out.push_str("}}}");
        out
    }

    /// The shared `{"schema":1,...` prefix, without the final `}`.
    fn json_core(&self) -> String {
        let mut out = format!("{{\"schema\":{SCHEMA_VERSION},\"counters\":{{");
        let mut sep = "";
        for (k, c) in self.counters.iter().filter(|(_, c)| !c.env) {
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(&key_string(k)), c.value);
            sep = ",";
        }
        out.push_str("},\"gauges\":{");
        let mut sep = "";
        for (k, c) in self.gauges.iter().filter(|(_, c)| !c.env) {
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(&key_string(k)), c.value);
            sep = ",";
        }
        out.push_str("},\"histogram_counts\":{");
        let mut sep = "";
        for (k, h) in &self.histograms {
            let _ = write!(out, "{sep}\"{}\":{}", json_escape(&key_string(k)), h.hist.count());
            sep = ",";
        }
        out.push('}');
        out
    }

    /// Renders Prometheus text exposition format (`# HELP` / `# TYPE`
    /// comments, one sample per line, histograms as cumulative
    /// `_bucket{le=...}` / `_sum` / `_count` series). Timing-derived
    /// series carry `_ns` in their names by this module's naming rule,
    /// so a consumer can deterministically filter them.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        let header = |out: &mut String, last: &mut &'static str, name: &'static str, kind: &str, help: &BTreeMap<&str, &str>| {
            if *last == name {
                return;
            }
            *last = name;
            if let Some(h) = help.get(name) {
                let _ = writeln!(out, "# HELP {name} {h}");
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        for (k, c) in &self.counters {
            header(&mut out, &mut last_name, k.0, "counter", &self.help);
            let _ = writeln!(out, "{} {}", key_string(k), c.value);
        }
        for (k, c) in &self.gauges {
            header(&mut out, &mut last_name, k.0, "gauge", &self.help);
            let _ = writeln!(out, "{} {}", key_string(k), c.value);
        }
        for (k, h) in &self.histograms {
            header(&mut out, &mut last_name, k.0, "histogram", &self.help);
            let labels = |le: &str| match k.1 {
                None => format!("{{le=\"{le}\"}}"),
                Some((l, v)) => format!("{{{}=\"{}\",le=\"{le}\"}}", l, json_escape(v)),
            };
            let mut cum = 0u64;
            for (i, c) in h.hist.nonzero() {
                cum += c;
                let (_, hi) = LogHistogram::bucket_bounds(i);
                let _ = writeln!(out, "{}_bucket{} {}", k.0, labels(&hi.to_string()), cum);
            }
            let _ = writeln!(out, "{}_bucket{} {}", k.0, labels("+Inf"), h.hist.count());
            let suffix = match k.1 {
                None => String::new(),
                Some((l, v)) => format!("{{{}=\"{}\"}}", l, json_escape(v)),
            };
            let _ = writeln!(out, "{}_sum{} {}", k.0, suffix, h.sum);
            let _ = writeln!(out, "{}_count{} {}", k.0, suffix, h.hist.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("requests_total", Some(("command", "query")), 2);
        reg.counter_add("requests_total", Some(("command", "insert")), 1);
        reg.gauge_set("facts_resident", None, 42);
        reg.observe("request_latency_ns", Some(("command", "query")), 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests_total", Some(("command", "query"))), 2);
        assert_eq!(snap.gauge("facts_resident", None), Some(42));
        assert_eq!(snap.histogram_count("request_latency_ns", Some(("command", "query"))), 1);
        assert_eq!(snap.counter("requests_total", None), 0);
    }

    #[test]
    fn local_metrics_merge_adds_counters_and_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter_add("requests_total", None, 1);
        let mut local = LocalMetrics::new();
        local.counter_add("requests_total", None, 2);
        local.gauge_set("epoch", None, 7);
        local.observe("request_latency_ns", None, 5);
        local.observe("request_latency_ns", None, 9);
        reg.merge(&local);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests_total", None), 3);
        assert_eq!(snap.gauge("epoch", None), Some(7));
        assert_eq!(snap.histogram_count("request_latency_ns", None), 2);
    }

    #[test]
    fn json_timing_split_is_exact() {
        let reg = MetricsRegistry::new();
        reg.counter_add("requests_total", Some(("command", "query")), 3);
        reg.counter_add_ns("writer_lock_wait_ns_total", None, 12345);
        reg.gauge_set("facts_resident", None, 6);
        reg.gauge_set_ns("uptime_ns", None, 999);
        reg.observe("request_latency_ns", Some(("command", "query")), 100);
        let snap = reg.snapshot();
        let full = snap.to_json();
        let det = snap.to_json_deterministic();
        // The deterministic rendering is exactly the full line truncated
        // before the timing object.
        let prefix = full.split(",\"timing\":").next().unwrap();
        assert_eq!(det, format!("{prefix}}}"));
        // Deterministic side: counts only, no ns values.
        assert!(det.contains("\"requests_total{command=\\\"query\\\"}\":3"), "{det}");
        assert!(det.contains("\"request_latency_ns{command=\\\"query\\\"}\":1"), "{det}");
        assert!(!det.contains("12345") && !det.contains("999"), "{det}");
        // Timing side holds the env metrics and the bucket vector.
        assert!(full.contains("\"writer_lock_wait_ns_total\":12345"), "{full}");
        assert!(full.contains("\"uptime_ns\":999"), "{full}");
        assert!(full.contains("\"sum\":100"), "{full}");
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.describe("requests_total", "Requests handled, by command.");
        reg.counter_add("requests_total", Some(("command", "insert")), 1);
        reg.counter_add("requests_total", Some(("command", "query")), 2);
        reg.gauge_set("facts_resident", None, 10);
        reg.observe("request_latency_ns", Some(("command", "query")), 3);
        reg.observe("request_latency_ns", Some(("command", "query")), 1000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# HELP requests_total Requests handled, by command.\n"), "{text}");
        assert!(text.contains("# TYPE requests_total counter\n"), "{text}");
        assert!(text.contains("requests_total{command=\"insert\"} 1\n"), "{text}");
        assert!(text.contains("requests_total{command=\"query\"} 2\n"), "{text}");
        assert!(text.contains("# TYPE facts_resident gauge\n"), "{text}");
        assert!(text.contains("facts_resident 10\n"), "{text}");
        assert!(text.contains("# TYPE request_latency_ns histogram\n"), "{text}");
        // Cumulative buckets end at +Inf == count.
        assert!(text.contains("request_latency_ns_bucket{command=\"query\",le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("request_latency_ns_sum{command=\"query\"} 1003\n"), "{text}");
        assert!(text.contains("request_latency_ns_count{command=\"query\"} 2\n"), "{text}");
        // The TYPE header appears once per family even with two labels.
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1, "{text}");
    }

    #[test]
    fn key_strings_render_label_pairs() {
        assert_eq!(key_string(&("up", None)), "up");
        assert_eq!(key_string(&("req", Some(("command", "query")))), "req{command=\"query\"}");
    }
}
