//! An in-tree Fx-style hasher, so the workspace builds with **zero
//! external dependencies** (the hermetic-build policy of DESIGN.md).
//!
//! The construction is the classic "multiply by a large odd constant,
//! rotate, xor" word hasher popularized by Firefox and the Rust compiler:
//! not cryptographic, not DoS-resistant, but extremely fast on the small
//! fixed-width keys this workspace hashes everywhere (`PredId`, `ConstId`,
//! `VarId`, small tuples and id vectors). All hashing in the workspace
//! goes through the [`FxHashMap`] / [`FxHashSet`] aliases below.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: 2^64 / φ, forced odd — the usual Fibonacci-hashing constant.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, non-cryptographic [`Hasher`] for small keys.
///
/// State is a single `u64`; every ingested word is folded in with a
/// rotate-xor-multiply step. Integer writes take the one-word fast path;
/// byte slices are consumed in `u64` chunks with a length-tagged tail so
/// that `"ab" + "c"` and `"a" + "bc"` hash differently.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low output bits depend on high state bits
        // (HashMap only uses the low bits for bucket selection).
        let h = self.hash;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
        self.add_word(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed through [`FxHasher`] — drop-in for the std map.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] keyed through [`FxHasher`] — drop-in for the std set.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn byte_boundaries_matter() {
        // Length tagging: splitting the same bytes differently must not
        // collide via the Hash impl for (str, str)-style composites.
        assert_ne!(hash_of(&("ab", "c")), hash_of(&("a", "bc")));
    }

    #[test]
    fn small_keys_spread() {
        // 10_000 consecutive u32 keys should produce (nearly) distinct
        // hashes — the map would still work with collisions, but the
        // avalanche step should keep them rare.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            seen.insert(hash_of(&i));
        }
        assert!(seen.len() > 9_990, "only {} distinct hashes", seen.len());
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut map: FxHashMap<(u32, u8, u32), Vec<usize>> = FxHashMap::default();
        map.entry((1, 0, 2)).or_default().push(7);
        map.entry((1, 0, 2)).or_default().push(8);
        assert_eq!(map[&(1, 0, 2)], vec![7, 8]);

        let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
        assert!(set.contains(&vec![1, 2]));
    }

    #[test]
    fn hashes_are_deterministic_across_hashers() {
        // No per-instance randomness: two hasher instances agree.
        let a = hash_of(&0xdead_beefu64);
        let b = hash_of(&0xdead_beefu64);
        assert_eq!(a, b);
    }
}
