//! A deterministic fork-join layer over `std::thread::scope`.
//!
//! Every hot loop in the workspace — trigger enumeration in the chase,
//! canonical-query evaluation in the type analyzer, piece-unification
//! fan-out in the rewriter, branch exploration in the model finder — is
//! embarrassingly parallel over independent work items, but the paper's
//! semantics (canonical repair order, reproducible null names) demand
//! *observational determinism*: a caller's output must be bit-identical
//! at any thread count. The hermetic-build policy (DESIGN.md) rules out
//! rayon, so this module provides the minimal fork-join vocabulary on
//! the standard library alone.
//!
//! ## The shard-then-merge contract
//!
//! Work is split into *contiguous index shards*, one scoped thread per
//! shard; each shard's results are collected separately and merged in
//! input order. Provided the per-item computation is a pure function of
//! the item (no observable side effects across items), the merged output
//! is independent of the shard boundaries and therefore of the thread
//! count. Anything order- or identity-sensitive — applying chase
//! repairs, interning fresh nulls, mutating a dedup set — stays on the
//! calling thread, *after* the merge.
//!
//! ## Thread count
//!
//! [`num_threads`] reads `BDDFC_THREADS` (clamped to ≥ 1), defaulting to
//! the machine's available parallelism capped at [`MAX_DEFAULT_THREADS`].
//! [`with_thread_count`] overrides it for the current thread's dynamic
//! extent — tests use it to pin 1/2/7-thread runs in-process. At one
//! thread every entry point takes a guaranteed sequential path on the
//! calling thread: no spawns, no channels, byte-for-byte the reference
//! semantics.
//!
//! Worker threads run their closures with the thread count pinned to 1,
//! so nested `par_*` calls inside a parallel region degrade to the
//! sequential path instead of oversubscribing the machine.
//!
//! Panics in workers are propagated: the first shard's panic payload (in
//! shard order, for determinism) is resumed on the calling thread after
//! all workers have been joined.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the default thread count when `BDDFC_THREADS` is not
/// set. Explicit settings may exceed it.
pub const MAX_DEFAULT_THREADS: usize = 16;

thread_local! {
    /// Per-thread override installed by [`with_thread_count`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Parses a `BDDFC_THREADS` value: a positive integer, surrounding
/// whitespace ignored. Non-numeric or zero values are errors carrying
/// the offending value — garbage input must not silently degrade the
/// machine to one thread.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("BDDFC_THREADS must be a positive integer, got `{raw}`")),
    }
}

/// The number of worker threads `par_*` calls on this thread will use:
/// the innermost [`with_thread_count`] override if one is active, else
/// `BDDFC_THREADS` if set to a positive integer (unset or empty means
/// auto), else the machine's available parallelism capped at
/// [`MAX_DEFAULT_THREADS`].
///
/// # Panics
///
/// Panics on a non-numeric or zero `BDDFC_THREADS` value, naming it —
/// mirroring the strict `BDDFC_JOIN` parse in [`crate::join::join_mode`].
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    match std::env::var("BDDFC_THREADS") {
        Ok(s) if s.trim().is_empty() => auto_threads(),
        Ok(s) => parse_threads(&s).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => auto_threads(),
    }
}

/// The default thread count when `BDDFC_THREADS` is unset: available
/// parallelism capped at [`MAX_DEFAULT_THREADS`].
fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_DEFAULT_THREADS))
}

/// Runs `f` with the thread count pinned to `n` on the current thread
/// (restored afterwards, even on panic). This is how the determinism
/// suites re-run themselves at 1, 2 and 7 threads in-process.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Splits `0..len` into at most `shards` non-empty contiguous ranges of
/// near-equal size.
fn split(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.min(len).max(1);
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let end = start + base + usize::from(i < extra);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `f` on each shard range, one scoped thread per shard, and
/// returns the per-shard results in shard order. The sequential path
/// (one thread, or fewer than two items) calls `f(0..len)` directly.
///
/// Determinism contract: the caller must combine the returned values in
/// a *boundary-insensitive* way — `f(a..b)` then `f(b..c)`, combined,
/// must equal `f(a..c)`. Concatenating per-index output vectors and
/// summing per-index counters both qualify; anything keyed on the shard
/// itself does not.
pub fn par_chunks<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = num_threads();
    if threads <= 1 || len <= 1 {
        return vec![f(0..len)];
    }
    let ranges = split(len, threads);
    run_sharded(ranges, &f)
}

/// Applies `f` to every item of `items` and returns the results in input
/// order, computed on up to [`num_threads`] scoped threads.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let shards = par_chunks(items.len(), |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for shard in shards {
        out.extend(shard);
    }
    out
}

/// A cooperative early-exit handle for [`par_map_cancel`]: records the
/// lowest item index that has produced a "winning" result, so workers on
/// strictly later items can abandon work whose result is guaranteed to
/// be discarded.
pub struct Cancel {
    min_won: AtomicUsize,
}

impl Cancel {
    fn new() -> Self {
        Cancel { min_won: AtomicUsize::new(usize::MAX) }
    }

    /// Declares that the item at `idx` produced a winning result.
    pub fn win(&self, idx: usize) {
        self.min_won.fetch_min(idx, Ordering::Relaxed);
    }

    /// May the item at `idx` stop early? True iff a *strictly earlier*
    /// item has already won — the later item's result can never be the
    /// canonical winner, so abandoning it cannot change any output
    /// derived through the lowest-winner rule.
    pub fn superseded(&self, idx: usize) -> bool {
        self.min_won.load(Ordering::Relaxed) < idx
    }
}

/// Like [`par_map`], but `f` additionally receives the item's index and
/// a shared [`Cancel`] handle. Callers that select the lowest-index
/// winning result get sequential-equivalent output at any thread count:
/// a worker may only bail out once an earlier item has won, and such a
/// worker's result is discarded by the lowest-winner rule anyway.
pub fn par_map_cancel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T, &Cancel) -> R + Sync,
{
    let cancel = Cancel::new();
    let shards = par_chunks(items.len(), |range| {
        range
            .map(|i| f(i, &items[i], &cancel))
            .collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for shard in shards {
        out.extend(shard);
    }
    out
}

/// Spawns one scoped thread per range, pins workers to one thread (so
/// nested `par_*` calls run sequentially), joins them all, and resumes
/// the first panic (in shard order) if any worker panicked.
fn run_sharded<R, F>(ranges: Vec<Range<usize>>, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let mut results: Vec<Result<R, Box<dyn std::any::Any + Send>>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    scope.spawn(move || {
                        with_thread_count(1, || {
                            catch_unwind(AssertUnwindSafe(|| f(range)))
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panics are caught inside"))
                .collect()
        });
    if let Some(first) = results.iter().position(Result::is_err) {
        // Re-raise the earliest shard's payload — deterministic
        // regardless of worker timing.
        match results.swap_remove(first) {
            Err(payload) => {
                drop(results);
                resume_unwind(payload);
            }
            Ok(_) => unreachable!("position(is_err) found an Err"),
        }
    }
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(_) => unreachable!("errors handled above"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 7 "), Ok(7));
        assert_eq!(parse_threads("16"), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_garbage_naming_the_value() {
        let err = parse_threads("abc").unwrap_err();
        assert_eq!(err, "BDDFC_THREADS must be a positive integer, got `abc`");
        for raw in ["0", "-3", "1.5", "two"] {
            let err = parse_threads(raw).unwrap_err();
            assert!(err.contains(raw), "error {err:?} must name the value {raw:?}");
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 7] {
            let out = with_thread_count(threads, || par_map(&items, |&x| x * 2));
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        for threads in [1, 4] {
            with_thread_count(threads, || {
                assert!(par_map(&empty, |&x: &u32| x).is_empty());
                let shards = par_chunks(0, |r| r.len());
                assert_eq!(shards.iter().sum::<usize>(), 0);
                assert!(par_map_cancel(&empty, |_, &x: &u32, _| x).is_empty());
            });
        }
    }

    #[test]
    fn single_item_stays_sequential() {
        // One item never spawns: the closure runs on the calling thread.
        let caller = std::thread::current().id();
        let out = with_thread_count(8, || {
            par_map(&[41], |&x| {
                assert_eq!(std::thread::current().id(), caller);
                x + 1
            })
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn par_chunks_covers_the_range_exactly_once() {
        for threads in [1, 2, 3, 7, 64] {
            let shards = with_thread_count(threads, || par_chunks(10, |r| r.collect::<Vec<_>>()));
            let flat: Vec<usize> = shards.into_iter().flatten().collect();
            assert_eq!(flat, (0..10).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_thread_count(4, || {
                par_map(&(0..100).collect::<Vec<u32>>(), |&x| {
                    if x == 57 {
                        panic!("boom at {x}");
                    }
                    x
                })
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 57"));
    }

    #[test]
    fn nested_calls_run_sequentially_inside_workers() {
        // Inside a parallel region the thread count is pinned to 1, so a
        // nested par_map must not spawn; outside it is restored.
        let items: Vec<u32> = (0..64).collect();
        let out = with_thread_count(4, || {
            par_map(&items, |&x| {
                let inner: u32 = par_map(&items, |&y| y).iter().sum();
                // At 4 threads the outer call runs shards on workers,
                // where num_threads() reads 1 (except the degenerate
                // single-shard case, which stays on the caller).
                inner + x
            })
        });
        let base: u32 = items.iter().sum();
        assert_eq!(out, items.iter().map(|&x| base + x).collect::<Vec<_>>());
        assert_eq!(num_threads(), num_threads()); // override fully restored
    }

    #[test]
    fn with_thread_count_restores_on_panic() {
        let before = num_threads();
        let _ = std::panic::catch_unwind(|| {
            with_thread_count(3, || panic!("unwind through the guard"))
        });
        assert_eq!(num_threads(), before);
    }

    #[test]
    fn cancel_only_discardable_work_is_skipped() {
        // Item 2 wins; items > 2 may observe supersession, items ≤ 2
        // never do. The lowest winner is stable at any thread count.
        for threads in [1, 2, 7] {
            let skipped = AtomicU64::new(0);
            let items: Vec<usize> = (0..50).collect();
            let out = with_thread_count(threads, || {
                par_map_cancel(&items, |i, _, cancel| {
                    if cancel.superseded(i) {
                        assert!(i > 2, "items at or before the winner never bail");
                        skipped.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                    if i == 2 || i == 30 {
                        cancel.win(i);
                        return Some(i);
                    }
                    None
                })
            });
            let winner = out
                .iter()
                .enumerate()
                .find_map(|(i, r)| r.map(|v| (i, v)))
                .expect("a winner exists");
            assert_eq!(winner, (2, 2), "threads = {threads}");
        }
    }

    #[test]
    fn env_parsing_is_tolerant() {
        // num_threads never returns 0 whatever the environment says.
        assert!(num_threads() >= 1);
        with_thread_count(0, || assert_eq!(num_threads(), 1));
    }
}
