//! Unified engine telemetry: counters, span timers and a bounded
//! structured event log, std-only and dependency-free.
//!
//! Every engine in the workspace (chase, datalog saturation, UCQ
//! rewriter, type analyzer, model finder) reports its work as
//! [`Event`]s pushed into an [`EventSink`]. The sink is a **generic**
//! parameter on the hot paths — never a `dyn` object — so that the
//! default [`Null`] sink compiles away entirely: `EventSink::ENABLED`
//! is an associated `const`, and every call site is guarded by
//! `if S::ENABLED { ... }`, which the compiler eliminates statically
//! for `Null`. With the `Null` sink the engines are byte-for-byte the
//! pre-telemetry engines; `tests/overhead.rs` pins this with a wall
//! clock and `tests/determinism.rs` with output comparison.
//!
//! ## Determinism contract: fields vs gauges
//!
//! An event carries two kinds of payload:
//!
//! * **fields** — algorithmic counts (body matches, triggers fired,
//!   nulls created, …). These are *thread-count invariant*: the
//!   deterministic shard-then-merge contract of [`crate::par`]
//!   guarantees identical values at any `BDDFC_THREADS` setting.
//!   [`Memory`] aggregates them into counters, and the determinism
//!   suite asserts they are identical across thread counts.
//! * **gauges** — environmental measurements (`wall_ns`, `threads`).
//!   These legitimately vary run to run and are **excluded** from
//!   counter aggregation and from determinism assertions.
//!
//! ## Sinks
//!
//! * [`Null`] — discards everything, statically free (the default);
//! * [`Memory`] — aggregates fields into counters and keeps a bounded
//!   log of owned events, for tests and interactive inspection;
//! * [`JsonLines`] — writes one JSON object per event to any
//!   [`std::io::Write`], matching the `BENCH_<target>.json` row
//!   discipline (`{"schema":1,...}`); I/O errors panic rather than
//!   being swallowed.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The schema version stamped on every JSON-lines event (and on every
/// `BENCH_<target>.json` row emitted by `bddfc_bench::timing`).
pub const SCHEMA_VERSION: u32 = 1;

/// One structured telemetry event, borrowed from the emitting engine's
/// stack frame (no allocation on the hot path).
///
/// `engine` and `name` identify the event kind (e.g. `chase`/`round`,
/// `rewrite`/`generation`); `fields` are deterministic counts, `gauges`
/// are environmental measurements — see the module docs for the
/// determinism contract separating the two.
#[derive(Clone, Copy, Debug)]
pub struct Event<'a> {
    /// Emitting engine: `"chase"`, `"saturate"`, `"rewrite"`,
    /// `"analyzer"` or `"finder"`.
    pub engine: &'static str,
    /// Event kind within the engine, e.g. `"round"` or `"generation"`.
    pub name: &'static str,
    /// Deterministic, thread-count-invariant counts.
    pub fields: &'a [(&'static str, u64)],
    /// Environmental measurements (wall times, thread counts); excluded
    /// from counter aggregation and determinism assertions.
    pub gauges: &'a [(&'static str, u64)],
}

/// A destination for telemetry events.
///
/// Implementations must be cheap and callable from the sequential merge
/// phase of any engine (sinks are only ever invoked outside the
/// fork-join worker closures, so `&self` methods need not be lock-free
/// — but they must be `Sync`, since engine entry points may be driven
/// from scoped worker threads).
pub trait EventSink: Sync {
    /// Whether this sink observes anything at all. Call sites guard
    /// event construction with `if S::ENABLED { ... }`, so a `false`
    /// here erases telemetry from the generated code entirely.
    const ENABLED: bool = true;

    /// Records one event. With `ENABLED == false` this is never called.
    fn record(&self, event: Event<'_>);
}

/// The no-op sink: statically disabled, zero cost, the default for
/// every engine entry point that does not take an explicit sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct Null;

/// A shared [`Null`] sink for default entry points to borrow.
pub static NULL: Null = Null;

impl EventSink for Null {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _event: Event<'_>) {}
}

/// An owned copy of an [`Event`], as stored by the [`Memory`] sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Emitting engine.
    pub engine: &'static str,
    /// Event kind.
    pub name: &'static str,
    /// Deterministic counts.
    pub fields: Vec<(&'static str, u64)>,
    /// Environmental measurements.
    pub gauges: Vec<(&'static str, u64)>,
}

#[derive(Default)]
struct MemoryInner {
    /// `(engine, name, field) -> summed value`; BTreeMap so snapshots
    /// iterate in a deterministic order.
    counters: BTreeMap<(&'static str, &'static str, &'static str), u64>,
    /// `(engine, name) -> number of events recorded`.
    event_counts: BTreeMap<(&'static str, &'static str), u64>,
    /// Bounded log of owned events (oldest first).
    events: Vec<OwnedEvent>,
    /// Events not logged because the bound was hit (still counted).
    dropped: u64,
}

/// An in-memory sink: aggregates event *fields* into counters keyed by
/// `(engine, event, field)` and keeps a bounded log of owned events.
///
/// Counter aggregation is unbounded (it is a small fixed-size map);
/// only the event *log* is bounded by `cap` — once full, further events
/// still update counters and event counts but are not stored, and
/// [`Memory::dropped`] reports how many were elided.
pub struct Memory {
    cap: usize,
    inner: Mutex<MemoryInner>,
}

impl Memory {
    /// Creates a memory sink whose event log holds at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Memory { cap, inner: Mutex::new(MemoryInner::default()) }
    }

    /// Snapshot of all counters, sorted by `(engine, event, field)`.
    pub fn counters(&self) -> Vec<((&'static str, &'static str, &'static str), u64)> {
        let inner = self.inner.lock().unwrap();
        inner.counters.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// The summed value of one counter (0 if never recorded).
    pub fn counter(&self, engine: &str, name: &str, field: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .find(|((e, n, f), _)| *e == engine && *n == name && *f == field)
            .map_or(0, |(_, v)| *v)
    }

    /// Snapshot of per-kind event counts, sorted by `(engine, event)`.
    pub fn event_counts(&self) -> Vec<((&'static str, &'static str), u64)> {
        let inner = self.inner.lock().unwrap();
        inner.event_counts.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Snapshot of the bounded event log, oldest first.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// How many events were recorded in total (logged or dropped).
    pub fn len(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.events.len() as u64 + inner.dropped
    }

    /// Whether no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events the bounded log elided.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }
}

impl EventSink for Memory {
    fn record(&self, event: Event<'_>) {
        let mut inner = self.inner.lock().unwrap();
        for &(field, value) in event.fields {
            *inner.counters.entry((event.engine, event.name, field)).or_insert(0) += value;
        }
        *inner.event_counts.entry((event.engine, event.name)).or_insert(0) += 1;
        if inner.events.len() < self.cap {
            inner.events.push(OwnedEvent {
                engine: event.engine,
                name: event.name,
                fields: event.fields.to_vec(),
                gauges: event.gauges.to_vec(),
            });
        } else {
            inner.dropped += 1;
        }
    }
}

/// A sink writing one JSON object per event — the same JSON-lines
/// discipline as `BENCH_<target>.json`:
///
/// ```json
/// {"schema":1,"engine":"chase","event":"round","round":3,"body_matches":17,...,"wall_ns":12345}
/// ```
///
/// Fields come first, then gauges; keys are engine-chosen `static`
/// identifiers, so no escaping is needed. I/O errors **panic**: a
/// telemetry stream that silently drops lines is worse than none.
pub struct JsonLines<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wraps a writer; each recorded event becomes one `\n`-terminated
    /// JSON line.
    pub fn new(writer: W) -> Self {
        JsonLines { writer: Mutex::new(writer) }
    }

    /// Unwraps the inner writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap()
    }
}

/// Formats one event as a single JSON line (without the trailing
/// newline). Exposed so tests and the bench harness can share the
/// exact encoding.
pub fn event_json(event: &Event<'_>) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"engine\":\"{}\",\"event\":\"{}\"",
        event.engine, event.name
    );
    for &(key, value) in event.fields.iter().chain(event.gauges) {
        let _ = write!(line, ",\"{key}\":{value}");
    }
    line.push('}');
    line
}

impl<W: Write + Send> EventSink for JsonLines<W> {
    fn record(&self, event: Event<'_>) {
        let line = event_json(&event);
        let mut w = self.writer.lock().unwrap();
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .expect("obs::JsonLines: failed to write telemetry event");
    }
}

/// A wall-clock span timer for per-round / per-generation gauges.
#[derive(Clone, Copy, Debug)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Starts the span now.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Elapsed wall time since [`SpanTimer::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed wall time in nanoseconds, saturated into a `u64` gauge.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev<'a>(
        engine: &'static str,
        name: &'static str,
        fields: &'a [(&'static str, u64)],
        gauges: &'a [(&'static str, u64)],
    ) -> Event<'a> {
        Event { engine, name, fields, gauges }
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        assert!(!Null::ENABLED);
        // And records nothing, trivially.
        NULL.record(ev("chase", "round", &[("x", 1)], &[]));
    }

    #[test]
    fn memory_aggregates_fields_not_gauges() {
        let sink = Memory::new(16);
        sink.record(ev("chase", "round", &[("body_matches", 3)], &[("wall_ns", 999)]));
        sink.record(ev("chase", "round", &[("body_matches", 4)], &[("wall_ns", 1)]));
        assert_eq!(sink.counter("chase", "round", "body_matches"), 7);
        // Gauges never become counters.
        assert_eq!(sink.counter("chase", "round", "wall_ns"), 0);
        assert_eq!(sink.event_counts(), vec![(("chase", "round"), 2)]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn memory_log_is_bounded_but_counters_are_not() {
        let sink = Memory::new(2);
        for i in 0..5 {
            sink.record(ev("finder", "search", &[("branches", i)], &[]));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.len(), 5);
        // 0+1+2+3+4: the counter saw every event.
        assert_eq!(sink.counter("finder", "search", "branches"), 10);
    }

    #[test]
    fn memory_counters_iterate_deterministically() {
        let sink = Memory::new(16);
        sink.record(ev("rewrite", "generation", &[("inserted", 1)], &[]));
        sink.record(ev("chase", "round", &[("new_facts", 2)], &[]));
        let keys: Vec<_> = sink.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![("chase", "round", "new_facts"), ("rewrite", "generation", "inserted")]
        );
    }

    #[test]
    fn json_lines_schema() {
        let sink = JsonLines::new(Vec::new());
        sink.record(ev("saturate", "round", &[("derived", 5)], &[("wall_ns", 42)]));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            out,
            "{\"schema\":1,\"engine\":\"saturate\",\"event\":\"round\",\"derived\":5,\"wall_ns\":42}\n"
        );
    }

    #[test]
    fn span_timer_reports_monotone_ns() {
        let t = SpanTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
