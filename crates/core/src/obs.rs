//! Unified engine telemetry: counters, spans, span timers and a bounded
//! structured event log, std-only and dependency-free.
//!
//! Every engine in the workspace (chase, datalog saturation, UCQ
//! rewriter, type analyzer, model finder) reports its work as
//! [`Event`]s pushed into an [`EventSink`]. The sink is a **generic**
//! parameter on the hot paths — never a `dyn` object — so that the
//! default [`Null`] sink compiles away entirely: `EventSink::ENABLED`
//! is an associated `const`, and every call site is guarded by
//! `if S::ENABLED { ... }`, which the compiler eliminates statically
//! for `Null`. With the `Null` sink the engines are byte-for-byte the
//! pre-telemetry engines; `tests/overhead.rs` pins this with a wall
//! clock and `tests/determinism.rs` with output comparison.
//!
//! ## Determinism contract: fields vs gauges
//!
//! An event carries two kinds of payload:
//!
//! * **fields** — algorithmic counts (body matches, triggers fired,
//!   nulls created, …). These are *thread-count invariant*: the
//!   deterministic shard-then-merge contract of [`crate::par`]
//!   guarantees identical values at any `BDDFC_THREADS` setting.
//!   [`Memory`] aggregates them into counters, and the determinism
//!   suite asserts they are identical across thread counts.
//! * **gauges** — environmental measurements (`wall_ns`, `threads`).
//!   These legitimately vary run to run and are **excluded** from
//!   counter aggregation and from determinism assertions.
//!
//! ## Spans and attribution keys
//!
//! On top of the flat event stream, engines open hierarchical
//! [`Span`]s (`chase/run` → `chase/round` → …) via
//! [`EventSink::span_open`] / [`EventSink::span_close`]. Span ids are
//! handed out **deterministically per sink**: a sequential counter
//! starting at 1, which is sound because engines only ever talk to the
//! sink from their sequential merge phases (never from inside fork-join
//! worker closures). Span *ids*, parents, names and keys are therefore
//! byte-identical at any `BDDFC_THREADS` setting; only the start/end
//! timestamps are gauges.
//!
//! Hot-path events additionally carry an **attribution key** — e.g.
//! `("rule", 3)` on a `chase/trigger` event or `("pred", p)` on a
//! `hom/scan` event — plus a `parent` span id, so a profiler can roll
//! costs up per rule / per predicate / per round. Keys are part of the
//! deterministic payload (like fields); `parent == 0` means "no
//! enclosing span".
//!
//! ## Sinks
//!
//! * [`Null`] — discards everything, statically free (the default);
//! * [`Memory`] — aggregates fields into counters and keeps bounded
//!   logs of owned events and spans, for tests, the `bddfc-prof`
//!   profiler and interactive inspection;
//! * [`JsonLines`] — writes one JSON object per event (and per closed
//!   span) to any [`std::io::Write`], matching the
//!   `BENCH_<target>.json` row discipline (`{"schema":1,...}`); I/O
//!   errors panic rather than being swallowed.

pub mod metrics;

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The schema version stamped on every JSON-lines event (and on every
/// `BENCH_<target>.json` row emitted by `bddfc_bench::timing`).
pub const SCHEMA_VERSION: u32 = 1;

/// One structured telemetry event, borrowed from the emitting engine's
/// stack frame (no allocation on the hot path).
///
/// `engine` and `name` identify the event kind (e.g. `chase`/`round`,
/// `rewrite`/`generation`); `fields` are deterministic counts, `gauges`
/// are environmental measurements — see the module docs for the
/// determinism contract separating the two. `parent` (0 = none) and
/// `key` attach the event to an enclosing span and to an attribution
/// subject (a rule index, a predicate id, …).
#[derive(Clone, Copy, Debug)]
pub struct Event<'a> {
    /// Emitting engine: `"chase"`, `"saturate"`, `"rewrite"`,
    /// `"analyzer"`, `"finder"` or `"hom"`.
    pub engine: &'static str,
    /// Event kind within the engine, e.g. `"round"` or `"generation"`.
    pub name: &'static str,
    /// Enclosing span id as returned by [`EventSink::span_open`], or 0
    /// when the event is not nested under a span.
    pub parent: u64,
    /// Attribution key, e.g. `("rule", 3)` or `("pred", 7)`. Part of
    /// the deterministic payload.
    pub key: Option<(&'static str, u64)>,
    /// Deterministic, thread-count-invariant counts.
    pub fields: &'a [(&'static str, u64)],
    /// Environmental measurements (wall times, thread counts); excluded
    /// from counter aggregation and determinism assertions.
    pub gauges: &'a [(&'static str, u64)],
}

/// A closed (or still-open) hierarchical span, as stored by recording
/// sinks.
///
/// Identity (`id`, `parent`, `engine`, `name`, `key`) is deterministic
/// across thread counts; the timestamps are gauges measured against the
/// sink's own monotonic epoch ([`Instant`] at sink construction), so
/// `start_ns`/`end_ns` of spans from the *same* sink are comparable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Sequential id, starting at 1 per sink; 0 is never issued.
    pub id: u64,
    /// Enclosing span id, or 0 for a root span.
    pub parent: u64,
    /// Emitting engine (same namespace as [`Event::engine`]).
    pub engine: &'static str,
    /// Span kind, e.g. `"run"` or `"round"`.
    pub name: &'static str,
    /// Attribution key, e.g. `("round", 3)`.
    pub key: Option<(&'static str, u64)>,
    /// Monotonic start, in ns since the sink's epoch.
    pub start_ns: u64,
    /// Monotonic end, in ns since the sink's epoch; 0 while open.
    pub end_ns: u64,
}

impl Span {
    /// Wall-clock duration of a closed span (0 for a still-open one).
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Whether [`EventSink::span_close`] has been called for this span.
    pub fn is_closed(&self) -> bool {
        self.end_ns != 0
    }
}

/// A destination for telemetry events.
///
/// Implementations must be cheap and callable from the sequential merge
/// phase of any engine (sinks are only ever invoked outside the
/// fork-join worker closures, so `&self` methods need not be lock-free
/// — but they must be `Sync`, since engine entry points may be driven
/// from scoped worker threads). That sequential-phase-only discipline
/// is also what makes per-sink sequential span ids deterministic.
pub trait EventSink: Sync {
    /// Whether this sink observes anything at all. Call sites guard
    /// event construction with `if S::ENABLED { ... }`, so a `false`
    /// here erases telemetry from the generated code entirely.
    const ENABLED: bool = true;

    /// Records one event. With `ENABLED == false` this is never called.
    fn record(&self, event: Event<'_>);

    /// Opens a span and returns its id (0 from sinks that do not track
    /// spans — the default). Engines pass the returned id as `parent`
    /// to nested spans and events, and back to [`EventSink::span_close`].
    fn span_open(
        &self,
        engine: &'static str,
        name: &'static str,
        parent: u64,
        key: Option<(&'static str, u64)>,
    ) -> u64 {
        let _ = (engine, name, parent, key);
        0
    }

    /// Closes a span previously returned by [`EventSink::span_open`].
    /// Unknown ids (including 0) are ignored.
    fn span_close(&self, id: u64) {
        let _ = id;
    }

    /// How many events a bounded sink has elided so far (0 for
    /// unbounded or non-recording sinks). Exposed on the trait so
    /// operational surfaces (the serve metrics registry) can report
    /// drops without knowing the concrete sink type.
    fn dropped_events(&self) -> u64 {
        0
    }

    /// How many spans a bounded sink has elided so far (0 for unbounded
    /// or non-recording sinks).
    fn dropped_spans(&self) -> u64 {
        0
    }
}

impl<S: EventSink + ?Sized> EventSink for &S {
    const ENABLED: bool = S::ENABLED;

    fn record(&self, event: Event<'_>) {
        (**self).record(event)
    }

    fn span_open(
        &self,
        engine: &'static str,
        name: &'static str,
        parent: u64,
        key: Option<(&'static str, u64)>,
    ) -> u64 {
        (**self).span_open(engine, name, parent, key)
    }

    fn span_close(&self, id: u64) {
        (**self).span_close(id)
    }

    fn dropped_events(&self) -> u64 {
        (**self).dropped_events()
    }

    fn dropped_spans(&self) -> u64 {
        (**self).dropped_spans()
    }
}

/// The no-op sink: statically disabled, zero cost, the default for
/// every engine entry point that does not take an explicit sink.
#[derive(Clone, Copy, Debug, Default)]
pub struct Null;

/// A shared [`Null`] sink for default entry points to borrow.
pub static NULL: Null = Null;

impl EventSink for Null {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _event: Event<'_>) {}
}

/// An owned copy of an [`Event`], as stored by the [`Memory`] sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Emitting engine.
    pub engine: &'static str,
    /// Event kind.
    pub name: &'static str,
    /// Enclosing span id (0 = none).
    pub parent: u64,
    /// Attribution key.
    pub key: Option<(&'static str, u64)>,
    /// Deterministic counts.
    pub fields: Vec<(&'static str, u64)>,
    /// Environmental measurements.
    pub gauges: Vec<(&'static str, u64)>,
}

impl OwnedEvent {
    /// Re-borrows the owned event as an [`Event`] (e.g. to re-serialize
    /// it through [`event_json`]).
    pub fn as_event(&self) -> Event<'_> {
        Event {
            engine: self.engine,
            name: self.name,
            parent: self.parent,
            key: self.key,
            fields: &self.fields,
            gauges: &self.gauges,
        }
    }

    /// The value of one deterministic field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields.iter().find(|(f, _)| *f == name).map(|&(_, v)| v)
    }

    /// The value of one gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(g, _)| *g == name).map(|&(_, v)| v)
    }
}

#[derive(Default)]
struct MemoryInner {
    /// `(engine, name, field) -> summed value`; BTreeMap so snapshots
    /// iterate in a deterministic order.
    counters: BTreeMap<(&'static str, &'static str, &'static str), u64>,
    /// `(engine, name) -> number of events recorded`.
    event_counts: BTreeMap<(&'static str, &'static str), u64>,
    /// Bounded log of owned events (oldest first).
    events: Vec<OwnedEvent>,
    /// Events not logged because the bound was hit (still counted).
    dropped: u64,
    /// Bounded log of spans, in id order (ids are sequential).
    spans: Vec<Span>,
    /// Total spans ever opened (logged or dropped) — the id allocator.
    spans_opened: u64,
    /// Spans not logged because the bound was hit.
    spans_dropped: u64,
}

/// An in-memory sink: aggregates event *fields* into counters keyed by
/// `(engine, event, field)` and keeps bounded logs of owned events and
/// spans.
///
/// Counter aggregation is unbounded (it is a small fixed-size map);
/// only the event and span *logs* are bounded by `cap` — once full,
/// further events still update counters and event counts but are not
/// stored, and [`Memory::dropped`] / [`Memory::spans_dropped`] report
/// how many were elided.
pub struct Memory {
    cap: usize,
    epoch: Instant,
    inner: Mutex<MemoryInner>,
}

impl Memory {
    /// Creates a memory sink whose event log (and span log) holds at
    /// most `cap` entries each.
    pub fn new(cap: usize) -> Self {
        Memory { cap, epoch: Instant::now(), inner: Mutex::new(MemoryInner::default()) }
    }

    /// Snapshot of all counters, sorted by `(engine, event, field)`.
    pub fn counters(&self) -> Vec<((&'static str, &'static str, &'static str), u64)> {
        let inner = self.inner.lock().unwrap();
        inner.counters.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// The summed value of one counter (0 if never recorded).
    pub fn counter(&self, engine: &str, name: &str, field: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .counters
            .iter()
            .find(|((e, n, f), _)| *e == engine && *n == name && *f == field)
            .map_or(0, |(_, v)| *v)
    }

    /// Snapshot of per-kind event counts, sorted by `(engine, event)`.
    pub fn event_counts(&self) -> Vec<((&'static str, &'static str), u64)> {
        let inner = self.inner.lock().unwrap();
        inner.event_counts.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Snapshot of the bounded event log, oldest first.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// How many events were recorded in total (logged or dropped).
    pub fn len(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.events.len() as u64 + inner.dropped
    }

    /// Whether no event was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events the bounded log elided.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Snapshot of the bounded span log, in id order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// How many spans were opened in total (logged or dropped).
    pub fn spans_opened(&self) -> u64 {
        self.inner.lock().unwrap().spans_opened
    }

    /// How many spans the bounded log elided.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.lock().unwrap().spans_dropped
    }
}

impl EventSink for Memory {
    fn record(&self, event: Event<'_>) {
        let mut inner = self.inner.lock().unwrap();
        for &(field, value) in event.fields {
            *inner.counters.entry((event.engine, event.name, field)).or_insert(0) += value;
        }
        *inner.event_counts.entry((event.engine, event.name)).or_insert(0) += 1;
        if inner.events.len() < self.cap {
            inner.events.push(OwnedEvent {
                engine: event.engine,
                name: event.name,
                parent: event.parent,
                key: event.key,
                fields: event.fields.to_vec(),
                gauges: event.gauges.to_vec(),
            });
        } else {
            inner.dropped += 1;
        }
    }

    fn span_open(
        &self,
        engine: &'static str,
        name: &'static str,
        parent: u64,
        key: Option<(&'static str, u64)>,
    ) -> u64 {
        let start_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().unwrap();
        inner.spans_opened += 1;
        let id = inner.spans_opened;
        if inner.spans.len() < self.cap {
            inner.spans.push(Span { id, parent, engine, name, key, start_ns, end_ns: 0 });
        } else {
            inner.spans_dropped += 1;
        }
        id
    }

    fn span_close(&self, id: u64) {
        if id == 0 {
            return;
        }
        let end_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().unwrap();
        // Ids are sequential, so the log (in insertion order) is sorted.
        if let Ok(i) = inner.spans.binary_search_by_key(&id, |s| s.id) {
            inner.spans[i].end_ns = end_ns.max(1);
        }
    }

    fn dropped_events(&self) -> u64 {
        self.dropped()
    }

    fn dropped_spans(&self) -> u64 {
        Memory::spans_dropped(self)
    }
}

/// A sink that forwards every event and span to **two** underlying
/// sinks — e.g. the server's session-wide sink plus a per-request
/// [`Memory`] capture for the slow-query log.
///
/// The two sides hand out their own span ids, so the tee allocates its
/// *own* sequential ids (starting at 1, like every sink) and keeps a
/// translation table `tee id -> (a id, b id)`. Parents on forwarded
/// spans and events are translated per side, so each underlying sink
/// sees a self-consistent span tree.
pub struct Tee<'a, A: EventSink, B: EventSink> {
    a: &'a A,
    b: &'a B,
    /// `map[id - 1] == (a_id, b_id)`; the length is the id allocator.
    map: Mutex<Vec<(u64, u64)>>,
}

impl<'a, A: EventSink, B: EventSink> Tee<'a, A, B> {
    /// Tees `a` and `b` together.
    pub fn new(a: &'a A, b: &'a B) -> Self {
        Tee { a, b, map: Mutex::new(Vec::new()) }
    }

    /// Translates a tee span id into the pair of underlying ids
    /// (0 maps to (0, 0); unknown ids too).
    fn translate(&self, id: u64) -> (u64, u64) {
        if id == 0 {
            return (0, 0);
        }
        let map = self.map.lock().unwrap();
        map.get(id as usize - 1).copied().unwrap_or((0, 0))
    }
}

impl<A: EventSink, B: EventSink> EventSink for Tee<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn record(&self, event: Event<'_>) {
        let (pa, pb) = self.translate(event.parent);
        if A::ENABLED {
            self.a.record(Event { parent: pa, ..event });
        }
        if B::ENABLED {
            self.b.record(Event { parent: pb, ..event });
        }
    }

    fn span_open(
        &self,
        engine: &'static str,
        name: &'static str,
        parent: u64,
        key: Option<(&'static str, u64)>,
    ) -> u64 {
        let (pa, pb) = self.translate(parent);
        let ia = if A::ENABLED { self.a.span_open(engine, name, pa, key) } else { 0 };
        let ib = if B::ENABLED { self.b.span_open(engine, name, pb, key) } else { 0 };
        let mut map = self.map.lock().unwrap();
        map.push((ia, ib));
        map.len() as u64
    }

    fn span_close(&self, id: u64) {
        let (ia, ib) = self.translate(id);
        if A::ENABLED {
            self.a.span_close(ia);
        }
        if B::ENABLED {
            self.b.span_close(ib);
        }
    }

    fn dropped_events(&self) -> u64 {
        self.a.dropped_events() + self.b.dropped_events()
    }

    fn dropped_spans(&self) -> u64 {
        self.a.dropped_spans() + self.b.dropped_spans()
    }
}

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes and all control characters (`\n`, `\t`, `\u00XX`, …).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A sink writing one JSON object per event (and per closed span) — the
/// same JSON-lines discipline as `BENCH_<target>.json`:
///
/// ```json
/// {"schema":1,"engine":"chase","event":"round","round":3,"body_matches":17,...,"wall_ns":12345}
/// {"schema":1,"engine":"chase","span":"round","id":2,"parent":1,"round":3,"start_ns":10,"end_ns":99}
/// ```
///
/// Fields come first, then gauges; keys are escaped via [`json_escape`]
/// so arbitrary sink/field names cannot corrupt the stream. Span lines
/// are emitted at close time. I/O errors **panic**: a telemetry stream
/// that silently drops lines is worse than none.
pub struct JsonLines<W: Write + Send> {
    epoch: Instant,
    writer: Mutex<W>,
    /// Open spans (id order) plus the sequential id allocator.
    spans: Mutex<(Vec<Span>, u64)>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wraps a writer; each recorded event becomes one `\n`-terminated
    /// JSON line.
    pub fn new(writer: W) -> Self {
        JsonLines {
            epoch: Instant::now(),
            writer: Mutex::new(writer),
            spans: Mutex::new((Vec::new(), 0)),
        }
    }

    /// Unwraps the inner writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().unwrap()
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap();
        w.write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .expect("obs::JsonLines: failed to write telemetry event");
    }
}

/// Formats one event as a single JSON line (without the trailing
/// newline). Exposed so tests and the bench harness can share the
/// exact encoding. `parent` and `key` are only emitted when set, so
/// plain events keep the PR-3 line layout.
pub fn event_json(event: &Event<'_>) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"engine\":\"{}\",\"event\":\"{}\"",
        json_escape(event.engine),
        json_escape(event.name)
    );
    if event.parent != 0 {
        let _ = write!(line, ",\"parent\":{}", event.parent);
    }
    if let Some((k, v)) = event.key {
        let _ = write!(line, ",\"{}\":{v}", json_escape(k));
    }
    for &(key, value) in event.fields.iter().chain(event.gauges) {
        let _ = write!(line, ",\"{}\":{value}", json_escape(key));
    }
    line.push('}');
    line
}

/// Formats one closed span as a single JSON line (without the trailing
/// newline).
pub fn span_json(span: &Span) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"engine\":\"{}\",\"span\":\"{}\",\"id\":{},\"parent\":{}",
        json_escape(span.engine),
        json_escape(span.name),
        span.id,
        span.parent
    );
    if let Some((k, v)) = span.key {
        let _ = write!(line, ",\"{}\":{v}", json_escape(k));
    }
    let _ = write!(line, ",\"start_ns\":{},\"end_ns\":{}}}", span.start_ns, span.end_ns);
    line
}

impl<W: Write + Send> EventSink for JsonLines<W> {
    fn record(&self, event: Event<'_>) {
        self.write_line(&event_json(&event));
    }

    fn span_open(
        &self,
        engine: &'static str,
        name: &'static str,
        parent: u64,
        key: Option<(&'static str, u64)>,
    ) -> u64 {
        let start_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = self.spans.lock().unwrap();
        spans.1 += 1;
        let id = spans.1;
        spans.0.push(Span { id, parent, engine, name, key, start_ns, end_ns: 0 });
        id
    }

    fn span_close(&self, id: u64) {
        if id == 0 {
            return;
        }
        let end_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let span = {
            let mut spans = self.spans.lock().unwrap();
            match spans.0.iter().position(|s| s.id == id) {
                Some(i) => {
                    let mut s = spans.0.remove(i);
                    s.end_ns = end_ns.max(1);
                    s
                }
                None => return,
            }
        };
        self.write_line(&span_json(&span));
    }
}

/// A wall-clock span timer for per-round / per-generation gauges.
#[derive(Clone, Copy, Debug)]
pub struct SpanTimer(Instant);

impl SpanTimer {
    /// Starts the span now.
    pub fn start() -> Self {
        SpanTimer(Instant::now())
    }

    /// Elapsed wall time since [`SpanTimer::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed wall time in nanoseconds, saturated into a `u64` gauge.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A fixed-bucket log2 latency histogram — integer-only, no floats on
/// the hot path.
///
/// Bucket 0 holds the value 0; bucket `i` (1 ≤ i ≤ 64) holds values in
/// `[2^(i-1), 2^i)` — i.e. the bucket index of `v ≥ 1` is
/// `64 - v.leading_zeros()`. Bucket 64's upper bound saturates at
/// `u64::MAX`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { buckets: [0; 65] }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// The bucket index a value lands in.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive-exclusive bounds `[lo, hi)` of bucket `i` (bucket 64's
    /// `hi` saturates at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i <= 64, "LogHistogram has buckets 0..=64");
        if i == 0 {
            (0, 1)
        } else if i == 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The largest single-bucket count (0 for an empty histogram).
    pub fn max_count(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate().filter(|&(_, c)| c > 0)
    }

    /// Adds every bucket of `other` into `self` — the sequential-merge
    /// half of shard-local histogram accumulation.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev<'a>(
        engine: &'static str,
        name: &'static str,
        fields: &'a [(&'static str, u64)],
        gauges: &'a [(&'static str, u64)],
    ) -> Event<'a> {
        Event { engine, name, parent: 0, key: None, fields, gauges }
    }

    #[test]
    fn null_sink_is_statically_disabled() {
        assert!(!Null::ENABLED);
        // And records nothing, trivially.
        NULL.record(ev("chase", "round", &[("x", 1)], &[]));
        assert_eq!(NULL.span_open("chase", "run", 0, None), 0);
        NULL.span_close(0);
    }

    #[test]
    fn memory_aggregates_fields_not_gauges() {
        let sink = Memory::new(16);
        sink.record(ev("chase", "round", &[("body_matches", 3)], &[("wall_ns", 999)]));
        sink.record(ev("chase", "round", &[("body_matches", 4)], &[("wall_ns", 1)]));
        assert_eq!(sink.counter("chase", "round", "body_matches"), 7);
        // Gauges never become counters.
        assert_eq!(sink.counter("chase", "round", "wall_ns"), 0);
        assert_eq!(sink.event_counts(), vec![(("chase", "round"), 2)]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn memory_log_is_bounded_but_counters_are_not() {
        let sink = Memory::new(2);
        for i in 0..5 {
            sink.record(ev("finder", "search", &[("branches", i)], &[]));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.len(), 5);
        // 0+1+2+3+4: the counter saw every event.
        assert_eq!(sink.counter("finder", "search", "branches"), 10);
    }

    #[test]
    fn memory_counters_iterate_deterministically() {
        let sink = Memory::new(16);
        sink.record(ev("rewrite", "generation", &[("inserted", 1)], &[]));
        sink.record(ev("chase", "round", &[("new_facts", 2)], &[]));
        let keys: Vec<_> = sink.counters().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![("chase", "round", "new_facts"), ("rewrite", "generation", "inserted")]
        );
    }

    #[test]
    fn memory_spans_get_sequential_ids_and_close() {
        let sink = Memory::new(16);
        let run = sink.span_open("chase", "run", 0, None);
        let r1 = sink.span_open("chase", "round", run, Some(("round", 1)));
        sink.span_close(r1);
        let r2 = sink.span_open("chase", "round", run, Some(("round", 2)));
        sink.span_close(r2);
        sink.span_close(run);
        assert_eq!((run, r1, r2), (1, 2, 3));
        let spans = sink.spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.is_closed()));
        assert_eq!(spans[1].parent, run);
        assert_eq!(spans[1].key, Some(("round", 1)));
        assert!(spans[1].end_ns >= spans[1].start_ns);
        // Closing an unknown id is a no-op.
        sink.span_close(99);
        sink.span_close(0);
        assert_eq!(sink.spans_opened(), 3);
        assert_eq!(sink.spans_dropped(), 0);
    }

    #[test]
    fn memory_span_log_is_bounded_but_ids_keep_advancing() {
        let sink = Memory::new(2);
        let ids: Vec<u64> =
            (0..5).map(|_| sink.span_open("chase", "round", 0, None)).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        for id in ids {
            sink.span_close(id);
        }
        assert_eq!(sink.spans().len(), 2);
        assert_eq!(sink.spans_dropped(), 3);
        assert_eq!(sink.spans_opened(), 5);
    }

    #[test]
    fn json_lines_schema() {
        let sink = JsonLines::new(Vec::new());
        sink.record(ev("saturate", "round", &[("derived", 5)], &[("wall_ns", 42)]));
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            out,
            "{\"schema\":1,\"engine\":\"saturate\",\"event\":\"round\",\"derived\":5,\"wall_ns\":42}\n"
        );
    }

    #[test]
    fn json_lines_emits_span_lines_at_close() {
        let sink = JsonLines::new(Vec::new());
        let run = sink.span_open("chase", "run", 0, None);
        let round = sink.span_open("chase", "round", run, Some(("round", 1)));
        sink.span_close(round);
        sink.span_close(run);
        let out = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // Inner span closes (and is written) first.
        assert!(lines[0].starts_with(
            "{\"schema\":1,\"engine\":\"chase\",\"span\":\"round\",\"id\":2,\"parent\":1,\"round\":1,\"start_ns\":"
        ));
        assert!(lines[1].starts_with(
            "{\"schema\":1,\"engine\":\"chase\",\"span\":\"run\",\"id\":1,\"parent\":0,\"start_ns\":"
        ));
    }

    #[test]
    fn event_json_escapes_strings() {
        // Keys and names with quotes, backslashes and control chars must
        // not corrupt the JSON line.
        let fields = [("quote\"key", 1u64)];
        let e = Event {
            engine: "eng\\ine",
            name: "line\nbreak\tand\u{1}ctl",
            parent: 7,
            key: Some(("k\"n", 3)),
            fields: &fields,
            gauges: &[],
        };
        assert_eq!(
            event_json(&e),
            "{\"schema\":1,\"engine\":\"eng\\\\ine\",\"event\":\"line\\nbreak\\tand\\u0001ctl\",\
             \"parent\":7,\"k\\\"n\":3,\"quote\\\"key\":1}"
        );
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\r\n\t\u{0}"), "a\\\"b\\\\c\\r\\n\\t\\u0000");
    }

    #[test]
    fn tee_forwards_to_both_sides_with_translated_parents() {
        let a = Memory::new(16);
        let b = Memory::new(16);
        // Skew a's id space so tee ids cannot accidentally line up.
        let pre = a.span_open("x", "pre", 0, None);
        a.span_close(pre);
        let tee = Tee::new(&a, &b);
        let run = tee.span_open("chase", "run", 0, None);
        let round = tee.span_open("chase", "round", run, Some(("round", 1)));
        tee.record(ev_at("chase", "trigger", round));
        tee.span_close(round);
        tee.span_close(run);
        // a sees ids 2,3 (after its pre-span); b sees 1,2 — each tree is
        // self-consistent.
        let (sa, sb) = (a.spans(), b.spans());
        assert_eq!(sa.len(), 3);
        assert_eq!(sb.len(), 2);
        assert_eq!(sa[2].parent, sa[1].id);
        assert_eq!(sb[1].parent, sb[0].id);
        assert!(sa.iter().all(|s| s.is_closed()) && sb.iter().all(|s| s.is_closed()));
        assert_eq!(a.events()[0].parent, sa[2].id);
        assert_eq!(b.events()[0].parent, sb[1].id);
        // Drop counts sum over both sides.
        assert_eq!(tee.dropped_events(), 0);
    }

    fn ev_at(engine: &'static str, name: &'static str, parent: u64) -> Event<'static> {
        Event { engine, name, parent, key: None, fields: &[], gauges: &[] }
    }

    #[test]
    fn span_timer_reports_monotone_ns() {
        let t = SpanTimer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn log_histogram_buckets_are_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(0, 1), (1, 1), (2, 2), (11, 1), (64, 1)]);
        assert_eq!(h.max_count(), 2);
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1u64 << 40] {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_of(v));
            assert!(lo <= v && (v < hi || hi == u64::MAX));
        }
    }
}
