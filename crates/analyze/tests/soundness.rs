//! Differential soundness of the static analyzer against the real
//! chase engine, over every embedded zoo program:
//!
//! * a certificate exists exactly when the position graph is weakly
//!   acyclic (modulo u64 overflow, which drops the certificate);
//! * every emitted certificate passes its own independent validator;
//! * chasing with `max_rounds = round_bound + 1` reaches a fixpoint
//!   within the certified bounds (rounds and distinct facts);
//! * seeding the planner with the cost model's priors changes nothing
//!   observable: same facts, same null names, same round count.

use bddfc_analyze::{analyze, domain::DomainAnalysis};
use bddfc_chase::{chase, chase_with_priors, ChaseConfig, ChaseStatus};
use bddfc_core::obs::NULL;
use bddfc_core::posgraph::PosGraph;
use bddfc_core::parse_program;

#[test]
fn certificates_exist_iff_weakly_acyclic_on_zoo() {
    for &(name, src) in bddfc_zoo::corpus() {
        let prog = parse_program(src).unwrap();
        let dom = DomainAnalysis::analyze(&prog);
        let wa = PosGraph::new(&prog.theory).is_weakly_acyclic();
        assert_eq!(dom.weakly_acyclic, wa, "{name}: WA disagreement with posgraph");
        let a = analyze(&prog);
        if a.certificate.is_some() {
            assert!(wa, "{name}: certificate for a non-WA program");
        }
    }
}

#[test]
fn certified_bounds_dominate_observed_chase_on_zoo() {
    let mut certified = 0;
    for &(name, src) in bddfc_zoo::corpus() {
        let prog = parse_program(src).unwrap();
        let a = analyze(&prog);
        let Some(cert) = &a.certificate else { continue };
        cert.validate(&prog).unwrap_or_else(|e| panic!("{name}: invalid certificate: {e}"));
        certified += 1;

        // The engine needs one final empty round to *observe* the
        // fixpoint, hence the +1.
        let max_rounds =
            u32::try_from(cert.round_bound.saturating_add(1)).unwrap_or(u32::MAX);
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig { max_rounds, max_facts: usize::MAX, ..ChaseConfig::default() },
        );
        assert_eq!(
            res.status,
            ChaseStatus::Fixpoint,
            "{name}: no fixpoint within certified round bound {}",
            cert.round_bound
        );
        assert!(
            u64::from(res.rounds) <= cert.round_bound,
            "{name}: observed {} rounds > certified {}",
            res.rounds,
            cert.round_bound
        );
        assert!(
            res.instance.len() as u64 <= cert.fact_bound,
            "{name}: observed {} facts > certified {}",
            res.instance.len(),
            cert.fact_bound
        );
    }
    assert!(certified > 0, "zoo has no weakly acyclic program — test is vacuous");
}

#[test]
fn priors_change_nothing_observable() {
    for &(name, src) in bddfc_zoo::corpus() {
        let prog = parse_program(src).unwrap();
        let a = analyze(&prog);
        let config = ChaseConfig::default();

        let mut voc_a = prog.voc.clone();
        let plain = chase(&prog.instance, &prog.theory, &mut voc_a, config);
        let mut voc_b = prog.voc.clone();
        let primed = chase_with_priors(
            &prog.instance,
            &prog.theory,
            &mut voc_b,
            config,
            &NULL,
            Some(a.cost.priors()),
        );

        assert_eq!(plain.rounds, primed.rounds, "{name}: round count changed under priors");
        assert_eq!(plain.status, primed.status, "{name}: status changed under priors");
        assert_eq!(
            plain.instance.facts(),
            primed.instance.facts(),
            "{name}: facts changed under priors"
        );
    }
}
