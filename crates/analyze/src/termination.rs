//! Termination certificates: machine-checkable static chase bounds.
//!
//! When the [domain abstraction](crate::domain) proves a program weakly
//! acyclic, [`certify`] packages the evidence into a [`Certificate`]:
//! the position universe, the topological component numbering, the
//! per-component value bounds, the per-rule firing bounds, and the two
//! derived quantities consumers act on —
//!
//! * `fact_bound`: an upper bound on **distinct facts** in any chase
//!   result (the sum over predicates of the product of their position
//!   bounds);
//! * `round_bound`: an upper bound on **productive semi-naive rounds**
//!   (every productive round inserts at least one new distinct fact, so
//!   rounds ≤ fact_bound − |initial instance|).
//!
//! A consumer that wants the engine to *report* `Fixpoint` must allow
//! one extra round: the engine only learns it is done when a round
//! produces nothing, so `max_rounds = round_bound + 1`.
//!
//! Certificates are **checked, not trusted**: [`Certificate::validate`]
//! recomputes the universe, the base constants and the dependency
//! edges from the program alone and verifies that the claimed values
//! form a post-fixpoint of the (monotone) transfer function. Any
//! claimed assignment that passes is a sound bound even if it is not
//! the least one, so validation is slack-tolerant by construction.

use crate::domain::{
    base_constants, firing_bound, json_bound, sat_add, sat_mul, universe, DomainAnalysis, SAT,
};
use bddfc_core::posgraph::{EdgeKind, Pos, PosGraph};
use bddfc_core::{Program, Term};

/// A static chase-termination certificate for one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The sorted position universe the numbering refers to.
    pub positions: Vec<Pos>,
    /// Claimed component id per position (topological).
    pub comp: Vec<usize>,
    /// Claimed per-component value bound.
    pub comp_val: Vec<u64>,
    /// Claimed per-rule firing bound (indexed like `theory.rules`).
    pub rule_firings: Vec<u64>,
    /// Claimed bound on distinct facts in any chase result.
    pub fact_bound: u64,
    /// Claimed bound on productive semi-naive rounds.
    pub round_bound: u64,
}

/// Builds a certificate from a finished domain analysis, or `None` when
/// the program is not (provably) weakly acyclic.
pub fn certify(prog: &Program, dom: &DomainAnalysis) -> Option<Certificate> {
    if !dom.weakly_acyclic {
        return None;
    }
    let mut fact_bound = 0u64;
    for &p in &dom.preds() {
        fact_bound = sat_add(fact_bound, dom.pred_card(p, prog.voc.arity(p)));
    }
    if fact_bound == SAT {
        // Weakly acyclic but the numbers overflowed u64: no usable
        // finite bound, so no certificate (the chase still terminates,
        // we just cannot promise when).
        return None;
    }
    let initial = prog.instance.len() as u64;
    let round_bound = fact_bound.saturating_sub(initial);
    Some(Certificate {
        positions: dom.positions.clone(),
        comp: dom.comp.clone(),
        comp_val: dom.comp_val.clone(),
        rule_firings: dom.rule_firings.clone(),
        fact_bound,
        round_bound,
    })
}

/// A reason a certificate failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Certificate {
    /// Independently checks this certificate against `prog`, trusting
    /// nothing but the claimed numbers. Returns the first violated
    /// obligation, if any.
    pub fn validate(&self, prog: &Program) -> Result<(), ValidationError> {
        let err = |m: String| Err(ValidationError(m));

        // 1. The universe must be exactly the program's universe.
        let positions = universe(prog);
        if self.positions != positions {
            return err("position universe does not match the program".into());
        }
        let n = positions.len();
        if self.comp.len() != n {
            return err("component vector length mismatch".into());
        }
        let ncomp = self.comp.iter().map(|&c| c + 1).max().unwrap_or(0);
        if self.comp_val.len() != ncomp {
            return err("component value vector length mismatch".into());
        }
        if self.rule_firings.len() != prog.theory.rules.len() {
            return err("rule firing vector length mismatch".into());
        }
        let idx = |p: Pos| positions.binary_search(&p).ok();

        // 2. The numbering must be topological: every edge goes to an
        //    equal-or-later component, and special edges strictly later
        //    (no special edge inside a component = weak acyclicity).
        let graph = PosGraph::new(&prog.theory);
        for e in graph.edges() {
            let (Some(u), Some(v)) = (idx(e.from), idx(e.to)) else {
                return err("dependency edge touches a position outside the universe".into());
            };
            let (cu, cv) = (self.comp[u], self.comp[v]);
            if cu > cv {
                return err(format!("edge {} -> {} violates topological numbering", u, v));
            }
            if e.kind == EdgeKind::Special && cu == cv {
                return err(format!(
                    "special edge {} -> {} inside component {} (not weakly acyclic)",
                    u, v, cu
                ));
            }
        }

        // 3. Every claimed component value must be a post-fixpoint of
        //    the transfer function: comp_val[s] >= base + regular
        //    inflows + null inflows, all evaluated at the claimed
        //    values. Monotonicity makes any post-fixpoint sound.
        let base = base_constants(prog, &positions);
        let mut need = vec![0u64; ncomp];
        for (pi, b) in base.iter().enumerate() {
            let s = self.comp[pi];
            need[s] = sat_add(need[s], b.len() as u64);
        }
        for e in graph.edges() {
            if e.kind != EdgeKind::Regular {
                continue;
            }
            let (u, v) = (idx(e.from).unwrap(), idx(e.to).unwrap());
            if self.comp[u] != self.comp[v] {
                need[self.comp[v]] = sat_add(need[self.comp[v]], self.comp_val[self.comp[u]]);
            }
        }
        for (ri, rule) in prog.theory.rules.iter().enumerate() {
            let ex = rule.existential_vars();
            if ex.is_empty() {
                continue;
            }
            let fire = firing_bound(rule, &positions, &self.comp, &self.comp_val);
            if self.rule_firings[ri] < fire {
                return err(format!("rule {} firing bound {} below required {}", ri, self.rule_firings[ri], fire));
            }
            for head in &rule.head {
                for (i, t) in head.args.iter().enumerate() {
                    if matches!(t, Term::Var(v) if ex.contains(v)) {
                        let s = self.comp[idx(Pos { pred: head.pred, arg: i }).unwrap()];
                        need[s] = sat_add(need[s], fire);
                    }
                }
            }
        }
        for s in 0..ncomp {
            if self.comp_val[s] < need[s] {
                return err(format!(
                    "component {} value {} below required {}",
                    s, self.comp_val[s], need[s]
                ));
            }
        }

        // 4. Datalog rules must also respect the claimed firing bounds
        //    (they invent nothing, but the numbers are still part of the
        //    certificate surface `--explain-plan` and serve report).
        for (ri, rule) in prog.theory.rules.iter().enumerate() {
            let fire = firing_bound(rule, &positions, &self.comp, &self.comp_val);
            if self.rule_firings[ri] < fire {
                return err(format!("rule {} firing bound {} below required {}", ri, self.rule_firings[ri], fire));
            }
        }

        // 5. The derived bounds.
        let mut fact_need = 0u64;
        let mut seen = None;
        for p in &positions {
            if seen != Some(p.pred) {
                seen = Some(p.pred);
                let card = (0..prog.voc.arity(p.pred)).fold(1u64, |acc, i| {
                    let pi = idx(Pos { pred: p.pred, arg: i }).unwrap();
                    sat_mul(acc, self.comp_val[self.comp[pi]])
                });
                fact_need = sat_add(fact_need, card);
            }
        }
        if self.fact_bound < fact_need {
            return err(format!("fact bound {} below required {}", self.fact_bound, fact_need));
        }
        let round_need = if self.fact_bound == SAT {
            SAT
        } else {
            self.fact_bound.saturating_sub(prog.instance.len() as u64)
        };
        if self.round_bound < round_need {
            return err(format!("round bound {} below required {}", self.round_bound, round_need));
        }
        if self.fact_bound == SAT || self.round_bound == SAT {
            return err("certificate claims a saturated bound".into());
        }
        Ok(())
    }

    /// Stable single-line JSON rendering (saturated values are `null`).
    pub fn json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"weakly_acyclic\":true,\"positions\":{},\"components\":{},\"fact_bound\":{},\"round_bound\":{},\"rule_firings\":[",
            self.positions.len(),
            self.comp_val.len(),
            json_bound(self.fact_bound),
            json_bound(self.round_bound),
        );
        for (i, &f) in self.rule_firings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_bound(f));
        }
        s.push_str("]}");
        s
    }

    /// Human-oriented multi-line rendering for the CLI.
    pub fn render(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "termination: weakly acyclic");
        let _ = writeln!(s, "  fact bound:  {}", crate::domain::display_bound(self.fact_bound));
        let _ = writeln!(s, "  round bound: {}", crate::domain::display_bound(self.round_bound));
        for (i, p) in self.positions.iter().enumerate() {
            let _ = writeln!(
                s,
                "  pos {}[{}] comp {} <= {}",
                prog.voc.pred_name(p.pred),
                p.arg,
                self.comp[i],
                crate::domain::display_bound(self.comp_val[self.comp[i]]),
            );
        }
        for (ri, &f) in self.rule_firings.iter().enumerate() {
            let _ = writeln!(s, "  rule {} firings <= {}", ri, crate::domain::display_bound(f));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn cert(src: &str) -> (Program, Option<Certificate>) {
        let prog = parse_program(src).unwrap();
        let dom = DomainAnalysis::analyze(&prog);
        let c = certify(&prog, &dom);
        (prog, c)
    }

    #[test]
    fn weakly_acyclic_program_certifies_and_validates() {
        let (prog, c) = cert("P(X) -> exists Z . E(X,Z). E(X,Y) -> R(Y). P(a). P(b). ?- R(X).");
        let c = c.expect("certificate");
        c.validate(&prog).unwrap();
        assert!(c.fact_bound < SAT);
        assert!(c.round_bound < SAT);
    }

    #[test]
    fn non_weakly_acyclic_program_has_no_certificate() {
        let (_, c) = cert("E(X,Y) -> exists Z . E(Y,Z). E(a,b).");
        assert!(c.is_none());
    }

    #[test]
    fn tampered_certificate_is_rejected() {
        let (prog, c) = cert("P(X) -> exists Z . E(X,Z). P(a). ?- E(X,Y).");
        let good = c.unwrap();
        good.validate(&prog).unwrap();

        let mut low_fact = good.clone();
        low_fact.fact_bound = 0;
        assert!(low_fact.validate(&prog).is_err());

        let mut low_round = good.clone();
        low_round.round_bound = 0;
        assert!(low_round.validate(&prog).is_err());

        let mut low_comp = good.clone();
        if let Some(v) = low_comp.comp_val.iter_mut().max() {
            *v = 0;
        }
        assert!(low_comp.validate(&prog).is_err());

        let mut wrong_universe = good.clone();
        wrong_universe.positions.pop();
        assert!(wrong_universe.validate(&prog).is_err());
    }

    #[test]
    fn slack_is_tolerated() {
        let (prog, c) = cert("P(X) -> exists Z . E(X,Z). P(a). ?- E(X,Y).");
        let mut padded = c.unwrap();
        padded.fact_bound = padded.fact_bound.saturating_add(1000);
        padded.round_bound = padded.round_bound.saturating_add(1000);
        for v in &mut padded.comp_val {
            *v = v.saturating_add(5);
        }
        // comp_val slack raises requirements downstream, so recompute
        // the derived bounds generously too.
        padded.fact_bound = SAT - 1;
        padded.round_bound = SAT - 1;
        for f in &mut padded.rule_firings {
            *f = SAT - 1;
        }
        padded.validate(&prog).unwrap();
    }

    #[test]
    fn wrong_numbering_is_rejected() {
        let (prog, c) = cert("P(X) -> E(X,X). P(a). ?- E(X,Y).");
        let mut swapped = c.unwrap();
        // Reverse the component numbering; some edge must now go
        // backwards (P[0] feeds E[0] and E[1]).
        let max = swapped.comp.iter().copied().max().unwrap_or(0);
        for c in &mut swapped.comp {
            *c = max - *c;
        }
        swapped.comp_val.reverse();
        assert!(swapped.validate(&prog).is_err());
    }
}
