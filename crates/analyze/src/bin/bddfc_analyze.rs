//! `bddfc-analyze` — static chase analysis for Datalog∃ programs.
//!
//! ```text
//! bddfc-analyze FILE...                 # analyze files, human output
//! bddfc-analyze --zoo                   # analyze the embedded zoo corpus
//! bddfc-analyze FILE --json             # one line of JSON per program
//! bddfc-analyze FILE --explain-plan     # static join orders and bounds
//! bddfc-analyze FILE --deny-unbounded   # exit 1 when no certificate
//! ```
//!
//! Every certificate printed has already passed its own independent
//! [`validate`](bddfc_analyze::termination::Certificate::validate)
//! check — a bug in the analyzer turns into a hard error here, never a
//! silently wrong bound. Output is byte-identical across runs and
//! `BDDFC_THREADS` settings.
//!
//! Exit codes: 0 ok; 1 when `--deny-unbounded` and some program has no
//! certificate; 2 on usage, parse or internal validation errors.

use bddfc_analyze::{analyze, Analysis};
use bddfc_core::{parse_program, Program};
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    zoo: bool,
    json: bool,
    explain_plan: bool,
    deny_unbounded: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-analyze [FILE]... [--zoo] [--json] [--explain-plan] [--deny-unbounded]\n\
         \n\
         FILE...            Datalog∃ source files to analyze\n\
         --zoo              also analyze the embedded zoo corpus\n\
         --json             print one line of deterministic JSON per program\n\
         --explain-plan     print static join orders and cardinality bounds\n\
         --deny-unbounded   exit 1 when any program has no termination certificate"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        files: Vec::new(),
        zoo: false,
        json: false,
        explain_plan: false,
        deny_unbounded: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--zoo" => args.zoo = true,
            "--json" => args.json = true,
            "--explain-plan" => args.explain_plan = true,
            "--deny-unbounded" => args.deny_unbounded = true,
            "--help" | "-h" => usage(),
            flag if flag.starts_with("--") => {
                eprintln!("unknown argument: {flag}");
                usage()
            }
            file => args.files.push(file.to_owned()),
        }
    }
    if args.files.is_empty() && !args.zoo {
        eprintln!("no input: pass FILE arguments or --zoo");
        usage()
    }
    args
}

/// Analyzes one named program; returns the analysis or an exit code on
/// parse/validation failure.
fn run_one(name: &str, src: &str) -> Result<(Program, Analysis), ExitCode> {
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{name}: parse error: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let a = analyze(&prog);
    if let Some(cert) = &a.certificate {
        if let Err(e) = cert.validate(&prog) {
            eprintln!("{name}: internal error: emitted certificate failed validation: {e}");
            return Err(ExitCode::from(2));
        }
    }
    Ok((prog, a))
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in &args.files {
        match std::fs::read_to_string(path) {
            Ok(src) => inputs.push((path.clone(), src)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.zoo {
        for &(name, src) in bddfc_zoo::corpus() {
            inputs.push((format!("zoo:{name}"), src.to_owned()));
        }
    }

    let mut unbounded = 0usize;
    for (name, src) in &inputs {
        let (prog, a) = match run_one(name, src) {
            Ok(x) => x,
            Err(code) => return code,
        };
        if a.certificate.is_none() {
            unbounded += 1;
        }
        if args.json {
            println!("{}", a.json(name, &prog));
            continue;
        }
        println!("== {name}");
        match &a.certificate {
            Some(c) => print!("{}", c.render(&prog)),
            None => println!("termination: no certificate (not provably weakly acyclic)"),
        }
        if args.explain_plan {
            print!("{}", a.cost.explain(&prog));
        }
        for d in &a.lints {
            print!("{}", d.render(name));
        }
    }

    if args.deny_unbounded && unbounded > 0 {
        eprintln!("{unbounded} program(s) without a termination certificate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
