//! The position-level domain abstraction: a saturating counting lattice
//! over the condensed position dependency graph.
//!
//! Every predicate position `P[i]` of a program is assigned an upper
//! bound on the number of **distinct values** (constants and labeled
//! nulls) that can ever appear there during a chase. Bounds live in the
//! saturating lattice `0 ≤ 1 ≤ … ≤ SAT` where [`SAT`] (`u64::MAX`)
//! means "no finite bound"; all arithmetic saturates, so an overflowing
//! product degrades soundly to "unbounded" instead of wrapping.
//!
//! The transfer function works on the SCC condensation of
//! [`PosGraph`] (components numbered topologically by
//! [`bddfc_core::scc::condense`]). For a component `C`, in topological
//! order:
//!
//! * if `C` contains a **special edge** (an existential head position
//!   fed from a body position inside the same component), fresh nulls
//!   can feed the positions that create more fresh nulls: `val(C) = SAT`
//!   and the theory is not weakly acyclic;
//! * otherwise `val(C)` is the saturating sum of
//!   * the **base constants** observed at `C`'s positions (instance
//!     facts and constants written by rule heads),
//!   * one `val(C')` per **regular edge** from an earlier component
//!     `C'` (a frontier variable copied in), and
//!   * one *firing bound* per existential head position in `C` (each
//!     firing of the inducing rule invents at most one null per
//!     existential variable).
//!
//! The firing bound of a rule is the product over its frontier
//! variables of the smallest position bound among the variable's body
//! occurrences — sound because the chase engines deduplicate repairs by
//! frontier key, so a rule fires at most once per distinct frontier
//! tuple. For rules with existentials every body variable position sits
//! in a strictly earlier component (the special edges from every body
//! variable position enforce it), so the topological sweep always has
//! the inputs it needs.
//!
//! Everything here is a deterministic, single-threaded pure function of
//! the program: positions are sorted, components are numbered
//! deterministically, and no iteration order depends on hashing.

use bddfc_core::posgraph::{EdgeKind, Pos, PosGraph};
use bddfc_core::scc::{component_count, condense};
use bddfc_core::{ConstId, PredId, Program, Rule, Term, VarId};
use std::collections::BTreeSet;

/// The saturated ("no finite bound") element of the counting lattice.
pub const SAT: u64 = u64::MAX;

/// Saturating sum that treats [`SAT`] as absorbing.
pub fn sat_add(a: u64, b: u64) -> u64 {
    a.saturating_add(b)
}

/// Saturating product; `0 * SAT = 0` (an empty domain admits no
/// bindings no matter how unbounded the other side is).
pub fn sat_mul(a: u64, b: u64) -> u64 {
    a.saturating_mul(b)
}

/// The result of the domain abstraction over one program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainAnalysis {
    /// Every position of the program's predicates (theory ∪ instance),
    /// sorted — the index into this vector is the position id used by
    /// [`DomainAnalysis::comp`].
    pub positions: Vec<Pos>,
    /// Component id per position (topological numbering).
    pub comp: Vec<usize>,
    /// Number of components.
    pub ncomp: usize,
    /// Per-component bound on distinct values across its positions.
    pub comp_val: Vec<u64>,
    /// Per-rule bound on distinct firings (frontier tuples).
    pub rule_firings: Vec<u64>,
    /// No special edge inside any component — the FKMP weak acyclicity
    /// condition, equivalent to `PosGraph::is_weakly_acyclic`.
    pub weakly_acyclic: bool,
}

impl DomainAnalysis {
    /// Runs the abstraction over `prog`.
    pub fn analyze(prog: &Program) -> DomainAnalysis {
        let positions = universe(prog);
        let idx = |p: Pos| positions.binary_search(&p).ok();
        let graph = PosGraph::new(&prog.theory);

        let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); positions.len()];
        for e in graph.edges() {
            if let (Some(u), Some(v)) = (idx(e.from), idx(e.to)) {
                succ[u].insert(v);
            }
        }
        let comp = condense(&succ);
        let ncomp = component_count(&comp);

        // Components poisoned by an intra-component special edge.
        let mut comp_sat = vec![false; ncomp];
        for e in graph.edges() {
            if e.kind != EdgeKind::Special {
                continue;
            }
            if let (Some(u), Some(v)) = (idx(e.from), idx(e.to)) {
                if comp[u] == comp[v] {
                    comp_sat[comp[u]] = true;
                }
            }
        }
        let weakly_acyclic = !comp_sat.iter().any(|&s| s);

        let base = base_constants(prog, &positions);

        // Regular inflow edges and null targets, bucketed by target comp.
        let mut regular_in: Vec<Vec<usize>> = vec![Vec::new(); ncomp]; // source comp ids
        for e in graph.edges() {
            if e.kind != EdgeKind::Regular {
                continue;
            }
            if let (Some(u), Some(v)) = (idx(e.from), idx(e.to)) {
                if comp[u] != comp[v] {
                    regular_in[comp[v]].push(comp[u]);
                }
            }
        }
        // (rule index) per existential head position, bucketed by comp.
        let mut null_in: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
        for (ri, rule) in prog.theory.rules.iter().enumerate() {
            let ex = rule.existential_vars();
            if ex.is_empty() {
                continue;
            }
            for head in &rule.head {
                for (i, t) in head.args.iter().enumerate() {
                    if let Term::Var(v) = t {
                        if ex.contains(v) {
                            if let Some(j) = idx(Pos { pred: head.pred, arg: i }) {
                                null_in[comp[j]].push(ri);
                            }
                        }
                    }
                }
            }
        }

        // Topological sweep.
        let mut comp_val = vec![0u64; ncomp];
        for s in 0..ncomp {
            if comp_sat[s] {
                comp_val[s] = SAT;
                continue;
            }
            let mut v = 0u64;
            for (pi, b) in base.iter().enumerate() {
                if comp[pi] == s {
                    v = sat_add(v, b.len() as u64);
                }
            }
            for &src in &regular_in[s] {
                v = sat_add(v, comp_val[src]);
            }
            for &ri in &null_in[s] {
                // Under weak acyclicity every body variable position of
                // this rule is in a strictly earlier component, so the
                // firing bound only reads finalized values; a poisoned
                // body component contributes SAT, which is sound too.
                v = sat_add(v, firing_bound(&prog.theory.rules[ri], &positions, &comp, &comp_val));
            }
            comp_val[s] = v;
        }

        let rule_firings = prog
            .theory
            .rules
            .iter()
            .map(|r| firing_bound(r, &positions, &comp, &comp_val))
            .collect();

        DomainAnalysis { positions, comp, ncomp, comp_val, rule_firings, weakly_acyclic }
    }

    /// The bound at one position ([`SAT`] when the position is unknown —
    /// conservative for every caller).
    pub fn pos_val(&self, p: Pos) -> u64 {
        match self.positions.binary_search(&p) {
            Ok(i) => self.comp_val[self.comp[i]],
            Err(_) => SAT,
        }
    }

    /// Static cardinality bound for a predicate: the product of its
    /// position bounds (distinct tuples over bounded columns).
    pub fn pred_card(&self, pred: PredId, arity: usize) -> u64 {
        (0..arity).fold(1u64, |acc, i| sat_mul(acc, self.pos_val(Pos { pred, arg: i })))
    }

    /// All predicates of the analyzed universe, sorted.
    pub fn preds(&self) -> Vec<PredId> {
        let mut out: Vec<PredId> = self.positions.iter().map(|p| p.pred).collect();
        out.dedup();
        out
    }
}

/// The sorted position universe of a program: every argument slot of
/// every predicate mentioned by the theory or holding an instance fact.
pub fn universe(prog: &Program) -> Vec<Pos> {
    let mut preds: BTreeSet<PredId> = prog.theory.preds().into_iter().collect();
    preds.extend(prog.instance.facts().iter().map(|f| f.pred));
    let mut positions = Vec::new();
    for &p in &preds {
        for arg in 0..prog.voc.arity(p) {
            positions.push(Pos { pred: p, arg });
        }
    }
    positions
}

/// Distinct base constants per position: instance facts plus constants
/// written by rule heads. (Body and query constants only filter; they
/// never place a value.)
pub fn base_constants(prog: &Program, positions: &[Pos]) -> Vec<BTreeSet<ConstId>> {
    let mut base: Vec<BTreeSet<ConstId>> = vec![BTreeSet::new(); positions.len()];
    let mut add = |pos: Pos, c: ConstId| {
        if let Ok(i) = positions.binary_search(&pos) {
            base[i].insert(c);
        }
    };
    for f in prog.instance.facts() {
        for (i, &c) in f.args.iter().enumerate() {
            add(Pos { pred: f.pred, arg: i }, c);
        }
    }
    for rule in &prog.theory.rules {
        for head in &rule.head {
            for (i, t) in head.args.iter().enumerate() {
                if let Term::Const(c) = t {
                    add(Pos { pred: head.pred, arg: i }, *c);
                }
            }
        }
    }
    base
}

/// The firing bound of one rule under given component values: the
/// product over frontier variables of the smallest bound among the
/// variable's body positions (1 for an empty frontier — such a rule
/// fires at most once).
pub fn firing_bound(rule: &Rule, positions: &[Pos], comp: &[usize], comp_val: &[u64]) -> u64 {
    let mut frontier: Vec<VarId> = rule.frontier().into_iter().collect();
    frontier.sort_unstable();
    let pos_val = |p: Pos| -> u64 {
        match positions.binary_search(&p) {
            Ok(i) => comp_val[comp[i]],
            Err(_) => SAT,
        }
    };
    let mut prod = 1u64;
    for v in frontier {
        let mut dom = SAT;
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if matches!(t, Term::Var(w) if *w == v) {
                    dom = dom.min(pos_val(Pos { pred: atom.pred, arg: i }));
                }
            }
        }
        prod = sat_mul(prod, dom);
    }
    prod
}

/// Renders a bound: the saturated element prints as `unbounded`.
pub fn display_bound(v: u64) -> String {
    if v == SAT {
        "unbounded".to_string()
    } else {
        v.to_string()
    }
}

/// Renders a bound into JSON: saturated becomes `null`.
pub fn json_bound(v: u64) -> String {
    if v == SAT {
        "null".to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn analyze(src: &str) -> (Program, DomainAnalysis) {
        let prog = parse_program(src).unwrap();
        let da = DomainAnalysis::analyze(&prog);
        (prog, da)
    }

    #[test]
    fn datalog_closure_is_bounded_by_base_constants() {
        let (prog, da) = analyze("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). ?- E(X,Y).");
        assert!(da.weakly_acyclic);
        let e = prog.voc.find_pred("E").unwrap();
        // Three constants total; each E position holds at most all of them.
        for arg in 0..2 {
            let v = da.pos_val(Pos { pred: e, arg });
            assert!(v >= 2 && v <= 3, "E[{arg}] = {v}");
        }
        assert!(da.pred_card(e, 2) <= 9);
    }

    #[test]
    fn self_feeding_existential_saturates() {
        let (prog, da) = analyze("E(X,Y) -> exists Z . E(Y,Z). E(a,b).");
        assert!(!da.weakly_acyclic);
        let e = prog.voc.find_pred("E").unwrap();
        assert_eq!(da.pos_val(Pos { pred: e, arg: 1 }), SAT);
    }

    #[test]
    fn acyclic_null_creation_stays_finite() {
        // P(x) -> exists z . E(x,z): one null per P value; E[1] bounded
        // by |P[0]|.
        let (prog, da) = analyze("P(X) -> exists Z . E(X,Z). P(a). P(b). ?- E(X,Y).");
        assert!(da.weakly_acyclic);
        let e = prog.voc.find_pred("E").unwrap();
        assert_eq!(da.pos_val(Pos { pred: e, arg: 1 }), 2);
        assert_eq!(da.rule_firings[0], 2);
        assert!(da.pred_card(e, 2) <= 4);
    }

    #[test]
    fn head_constants_count_as_base() {
        let (prog, da) = analyze("P(X) -> E(X,c). P(a). ?- E(X,Y).");
        let e = prog.voc.find_pred("E").unwrap();
        assert_eq!(da.pos_val(Pos { pred: e, arg: 1 }), 1);
    }

    #[test]
    fn empty_frontier_fires_once() {
        let (_, da) = analyze("P(X) -> exists Z . Q(Z). P(a). P(b). ?- Q(X).");
        // frontier is empty: at most one firing, so Q[0] holds one null.
        assert_eq!(da.rule_firings[0], 1);
    }

    #[test]
    fn analysis_is_deterministic() {
        let src = "E(X,Y) -> exists Z . U(Y,Z). U(X,Y), E(Y,X) -> U(X,X).
                   E(a,b). E(b,a). ?- U(X,Y).";
        let (_, a) = analyze(src);
        let (_, b) = analyze(src);
        assert_eq!(a, b);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(sat_add(SAT, 1), SAT);
        assert_eq!(sat_mul(SAT, 2), SAT);
        assert_eq!(sat_mul(SAT, 0), 0);
        assert_eq!(sat_mul(u64::MAX / 2, 3), SAT);
    }
}
