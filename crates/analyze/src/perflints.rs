//! Performance lints `B201..B205`: structural smells that predict chase
//! or maintenance cost, surfaced through the shared diagnostic model.
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | B201 | warning  | cross-product join in a rule body (disconnected atoms) |
//! | B202 | warning  | join variable with no selective binding position |
//! | B203 | warning  | rule unreachable from any EDB predicate under the condensation |
//! | B204 | note     | delta-irrelevant rule (derivations no body or query consumes) |
//! | B205 | note     | high fan-in recursive predicate: DRed over-deletion can go quadratic |
//!
//! Unlike the hygiene lints these never make a program wrong — they
//! flag work the engine will do without anything observing the result,
//! or joins whose static cost model offers no selective side.

use crate::domain::{DomainAnalysis, SAT};
use bddfc_core::posgraph::Pos;
use bddfc_core::scc::condense;
use bddfc_core::{Diagnostic, PredId, Program, Severity, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Runs every perf lint over `prog`.
pub fn perf_lints(prog: &Program) -> Vec<Diagnostic> {
    let dom = DomainAnalysis::analyze(prog);
    let mut out = Vec::new();
    cross_product_joins(prog, &mut out);
    unselective_joins(prog, &dom, &mut out);
    edb_unreachable_rules(prog, &mut out);
    delta_irrelevant_rules(prog, &mut out);
    dred_fan_in(prog, &mut out);
    out
}

/// B201: the body, viewed as a graph of atoms joined by shared
/// variables, is disconnected — evaluation must cross-product the
/// groups. Ground atoms (no variables) are guards, not joins, and do
/// not count as components.
fn cross_product_joins(prog: &Program, out: &mut Vec<Diagnostic>) {
    for rule in &prog.theory.rules {
        let var_atoms: Vec<usize> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, a)| a.vars().next().is_some())
            .map(|(i, _)| i)
            .collect();
        if var_atoms.len() < 2 {
            continue;
        }
        // Union-find-free closure: grow the first atom's group until it
        // stops absorbing; disconnected iff something remains outside.
        let mut group: BTreeSet<usize> = [var_atoms[0]].into();
        let mut vars: BTreeSet<_> = rule.body[var_atoms[0]].vars().collect();
        loop {
            let mut grew = false;
            for &i in &var_atoms {
                if !group.contains(&i) && rule.body[i].vars().any(|v| vars.contains(&v)) {
                    group.insert(i);
                    vars.extend(rule.body[i].vars());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        if let Some(&outside) = var_atoms.iter().find(|i| !group.contains(i)) {
            out.push(
                Diagnostic::new(
                    "B201",
                    Severity::Warning,
                    format!(
                        "cross-product join in {}: the body atoms do not all share variables",
                        rule.describe(&prog.voc)
                    ),
                    rule.body_span(outside).or_else(|| rule.span()),
                )
                .with_note(format!(
                    "`{}` shares no variable with the group containing `{}`",
                    prog.voc.pred_name(rule.body[outside].pred),
                    prog.voc.pred_name(rule.body[var_atoms[0]].pred),
                )),
            );
        }
    }
}

/// B202: a variable joining two or more body atoms where the static
/// domain analysis bounds none of its positions — every side of the
/// join looks unbounded, so no probe order is selective.
fn unselective_joins(prog: &Program, dom: &DomainAnalysis, out: &mut Vec<Diagnostic>) {
    for rule in &prog.theory.rules {
        let mut occurs: BTreeMap<bddfc_core::VarId, Vec<(usize, Pos)>> = BTreeMap::new();
        for (bi, atom) in rule.body.iter().enumerate() {
            for (i, t) in atom.args.iter().enumerate() {
                if let Term::Var(v) = t {
                    occurs.entry(*v).or_default().push((bi, Pos { pred: atom.pred, arg: i }));
                }
            }
        }
        for (v, sites) in occurs {
            let atoms: BTreeSet<usize> = sites.iter().map(|&(bi, _)| bi).collect();
            if atoms.len() < 2 {
                continue;
            }
            if sites.iter().all(|&(_, p)| dom.pos_val(p) == SAT) {
                let first = sites[0].0;
                out.push(
                    Diagnostic::new(
                        "B202",
                        Severity::Warning,
                        format!(
                            "join variable `{}` in {} has no selective binding position",
                            prog.voc.var_name(v),
                            rule.describe(&prog.voc)
                        ),
                        rule.body_span(first).or_else(|| rule.span()),
                    )
                    .with_note("every position it occupies is statically unbounded"),
                );
            }
        }
    }
}

/// B203: schema-level unreachability. Seeds are the EDB predicates —
/// those in no rule head (only an input database can populate them) —
/// plus heads of body-less rules; a rule whose body mentions a
/// predicate in a component no seed reaches can only fire if the input
/// asserts IDB facts directly.
///
/// Programs with no EDB predicate at all are exempt: when every
/// predicate is derived, the program's convention is plainly facts on
/// derived predicates, and flagging every rule would be noise.
fn edb_unreachable_rules(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut preds: BTreeSet<PredId> = prog.theory.preds().into_iter().collect();
    preds.extend(prog.instance.facts().iter().map(|f| f.pred));
    let preds: Vec<PredId> = preds.into_iter().collect();
    if preds.is_empty() {
        return;
    }
    let index: BTreeMap<PredId, usize> = preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); preds.len()];
    let mut in_head: BTreeSet<PredId> = BTreeSet::new();
    for rule in &prog.theory.rules {
        in_head.extend(rule.head.iter().map(|a| a.pred));
        for b in &rule.body {
            for h in &rule.head {
                succ[index[&b.pred]].insert(index[&h.pred]);
            }
        }
    }

    let comp = condense(&succ);
    let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut comp_succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ncomp];
    for (u, ss) in succ.iter().enumerate() {
        for &v in ss {
            if comp[u] != comp[v] {
                comp_succ[comp[u]].insert(comp[v]);
            }
        }
    }

    let mut reachable = vec![false; ncomp];
    let mut queue: Vec<usize> = Vec::new();
    for (i, &p) in preds.iter().enumerate() {
        if !in_head.contains(&p) && !reachable[comp[i]] {
            reachable[comp[i]] = true;
            queue.push(comp[i]);
        }
    }
    for rule in &prog.theory.rules {
        if rule.body.is_empty() {
            for h in &rule.head {
                let c = comp[index[&h.pred]];
                if !reachable[c] {
                    reachable[c] = true;
                    queue.push(c);
                }
            }
        }
    }
    if queue.is_empty() && !reachable.iter().any(|&r| r) {
        // No EDB predicate anywhere: the schema draws no base/derived
        // line, so schema-level reachability is meaningless here.
        return;
    }
    while let Some(c) = queue.pop() {
        for &d in &comp_succ[c] {
            if !reachable[d] {
                reachable[d] = true;
                queue.push(d);
            }
        }
    }

    for rule in &prog.theory.rules {
        let dead = rule
            .body
            .iter()
            .enumerate()
            .find(|(_, a)| !reachable[comp[index[&a.pred]]]);
        if let Some((i, atom)) = dead {
            out.push(
                Diagnostic::new(
                    "B203",
                    Severity::Warning,
                    format!(
                        "rule {} is unreachable from the EDB: `{}` sits in a component \
                         no base predicate feeds",
                        rule.describe(&prog.voc),
                        prog.voc.pred_name(atom.pred)
                    ),
                    rule.body_span(i).or_else(|| rule.span()),
                )
                .with_note(
                    "only facts asserted directly on a derived predicate can make it fire",
                ),
            );
        }
    }
}

/// B204: every head predicate of the rule is consumed by no rule body
/// and no query — semi-naive and incremental maintenance both pay for
/// derivations nothing observes.
fn delta_irrelevant_rules(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut in_body: BTreeSet<PredId> = BTreeSet::new();
    for rule in &prog.theory.rules {
        in_body.extend(rule.body.iter().map(|a| a.pred));
    }
    let in_query: BTreeSet<PredId> =
        prog.queries.iter().flat_map(|q| q.atoms.iter().map(|a| a.pred)).collect();
    for rule in &prog.theory.rules {
        if rule.head.is_empty() {
            continue;
        }
        if rule
            .head
            .iter()
            .all(|h| !in_body.contains(&h.pred) && !in_query.contains(&h.pred))
        {
            out.push(
                Diagnostic::new(
                    "B204",
                    Severity::Note,
                    format!(
                        "rule {} is delta-irrelevant: nothing reads what it derives",
                        rule.describe(&prog.voc)
                    ),
                    rule.span(),
                )
                .with_note("every round still joins its body against the delta"),
            );
        }
    }
}

/// How many distinct `(rule, head atom)` pairs must derive a predicate
/// before B205 considers its DRed fan-in heavy.
const DRED_FAN_IN: usize = 3;

/// B205: a recursive predicate (cyclic dependency component) derived by
/// [`DRED_FAN_IN`] or more rule/head-atom pairs — DRed over-deletion has
/// many alternative derivations to re-check per retracted fact.
fn dred_fan_in(prog: &Program, out: &mut Vec<Diagnostic>) {
    let mut preds: BTreeSet<PredId> = prog.theory.preds().into_iter().collect();
    preds.extend(prog.instance.facts().iter().map(|f| f.pred));
    let preds: Vec<PredId> = preds.into_iter().collect();
    if preds.is_empty() {
        return;
    }
    let index: BTreeMap<PredId, usize> = preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); preds.len()];
    for rule in &prog.theory.rules {
        for b in &rule.body {
            for h in &rule.head {
                succ[index[&b.pred]].insert(index[&h.pred]);
            }
        }
    }
    let comp = condense(&succ);
    // A predicate is recursive iff its component contains a cycle:
    // either two predicates share the component, or it has a self-loop.
    let mut comp_size = vec![0usize; comp.iter().copied().max().map_or(0, |m| m + 1)];
    for &c in &comp {
        comp_size[c] += 1;
    }
    let recursive = |i: usize| comp_size[comp[i]] > 1 || succ[i].contains(&i);

    let mut fan_in: BTreeMap<PredId, usize> = BTreeMap::new();
    for rule in &prog.theory.rules {
        for h in &rule.head {
            *fan_in.entry(h.pred).or_default() += 1;
        }
    }
    for (&p, &n) in &fan_in {
        if n >= DRED_FAN_IN && recursive(index[&p]) {
            out.push(
                Diagnostic::new(
                    "B205",
                    Severity::Note,
                    format!(
                        "recursive predicate `{}` has {} derivation sites: DRed \
                         over-deletion can go quadratic on retract",
                        prog.voc.pred_name(p),
                        n
                    ),
                    first_head_span(prog, p),
                )
                .with_note("retract-heavy workloads over it will be the slow path"),
            );
        }
    }
}

/// The span of the first head atom over `p`, if known.
fn first_head_span(prog: &Program, p: PredId) -> Option<bddfc_core::SrcSpan> {
    for rule in &prog.theory.rules {
        if let Some(i) = rule.head.iter().position(|a| a.pred == p) {
            return rule.head_span(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn codes(src: &str) -> Vec<&'static str> {
        let prog = parse_program(src).unwrap();
        let mut ds = perf_lints(&prog);
        bddfc_core::LintReport::sort(&mut ds);
        ds.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_perf_lints() {
        assert!(codes("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). ?- E(X,Y).").is_empty());
    }

    #[test]
    fn cross_product_fires_only_on_disconnected_bodies() {
        let cs = codes("P(X), Q(Y) -> R(X,Y). P(a). Q(b). ?- R(X,Y).");
        assert!(cs.contains(&"B201"), "{cs:?}");
        let cs = codes("P(X), Q(X,Y) -> R(X,Y). P(a). Q(a,b). ?- R(X,Y).");
        assert!(!cs.contains(&"B201"), "{cs:?}");
        // A ground guard atom is not a cross product.
        let cs = codes("Flag(on), Q(X,Y) -> R(X,Y). Flag(on). Q(a,b). ?- R(X,Y).");
        assert!(!cs.contains(&"B201"), "{cs:?}");
    }

    #[test]
    fn unselective_join_needs_saturated_positions() {
        // The E cycle through an existential saturates both E positions,
        // so the self-join over Y has no selective side.
        let cs = codes("E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,W) -> R(X,W). E(a,b). ?- R(X,Y).");
        assert!(cs.contains(&"B202"), "{cs:?}");
        // A weakly acyclic program bounds every position: no B202.
        let cs = codes("E(X,Y), E(Y,W) -> R(X,W). E(a,b). ?- R(X,Y).");
        assert!(!cs.contains(&"B202"), "{cs:?}");
    }

    #[test]
    fn edb_unreachable_is_schema_level() {
        // U is IDB-only (fed by V, V by U); facts on U keep B005 quiet
        // but B203 still fires — the schema gives the component no base.
        let cs = codes(
            "U(X,Y) -> V(Y,X). V(X,Y) -> U(Y,X). E(X,Y) -> R(X,Y).
             U(a,b). E(a,b). ?- U(X,Y), V(X,Y), R(X,Y).",
        );
        assert_eq!(cs.iter().filter(|c| **c == "B203").count(), 2, "{cs:?}");
        // With a base feeder the component is reachable.
        let cs = codes("B(X,Y) -> U(X,Y). U(X,Y) -> V(Y,X). V(X,Y) -> U(Y,X). B(a,b). ?- V(X,Y).");
        assert!(!cs.contains(&"B203"), "{cs:?}");
        // A program whose every predicate is derived draws no EDB line
        // at all: exempt.
        let cs = codes("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). ?- E(X,Y).");
        assert!(!cs.contains(&"B203"), "{cs:?}");
    }

    #[test]
    fn delta_irrelevant_rule_is_flagged() {
        let cs = codes("E(X,Y) -> U(X,Y). E(a,b).");
        assert!(cs.contains(&"B204"), "{cs:?}");
        let cs = codes("E(X,Y) -> U(X,Y). E(a,b). ?- U(X,Y).");
        assert!(!cs.contains(&"B204"), "{cs:?}");
    }

    #[test]
    fn dred_fan_in_needs_recursion_and_many_sites() {
        // T is recursive (self-loop) with three derivation sites.
        let cs = codes(
            "E(X,Y) -> T(X,Y).
             T(X,Y), T(Y,Z) -> T(X,Z).
             E(Y,X) -> T(X,Y).
             E(a,b). ?- T(X,Y).",
        );
        assert!(cs.contains(&"B205"), "{cs:?}");
        // Same fan-in, no recursion: quiet.
        let cs = codes(
            "E(X,Y) -> T(X,Y).
             E(Y,X) -> T(X,Y).
             F(X,Y) -> T(X,Y).
             E(a,b). F(a,b). ?- T(X,Y).",
        );
        assert!(!cs.contains(&"B205"), "{cs:?}");
    }
}
