//! # bddfc-analyze — static chase analysis
//!
//! Three passes over a parsed Datalog∃ program, all deterministic pure
//! functions of the source text:
//!
//! * **termination** ([`termination`]) — a weak-acyclicity-based
//!   approximation over the position dependency graph that, when it
//!   succeeds, emits a machine-checkable [`termination::Certificate`]
//!   bounding the chase: distinct facts and productive semi-naive
//!   rounds. Certificates carry every intermediate value and are
//!   re-validated independently by [`termination::Certificate::validate`].
//! * **cost** ([`cost`]) — position-level domain bounds folded into
//!   per-predicate static cardinalities, exported as [`bddfc_core::Priors`]
//!   that the batched join planner consults before runtime postings
//!   exist, plus per-rule static plans for `--explain-plan`.
//! * **perf lints** ([`perflints`]) — B201..B205, structural
//!   performance smells surfaced through the shared
//!   [`bddfc_core::diag`] machinery.
//!
//! [`analyze`] runs all three and bundles them into an [`Analysis`]
//! with a stable one-line JSON rendering consumed by `bddfc-serve`.

pub mod cost;
pub mod domain;
pub mod perflints;
pub mod termination;

use bddfc_core::{Diagnostic, LintReport, Program};

/// The combined result of all three analysis passes.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Termination certificate, when the program is weakly acyclic.
    pub certificate: Option<termination::Certificate>,
    /// Static cost model (always produced; bounds may be saturated).
    pub cost: cost::CostModel,
    /// Perf lints B201..B205, in canonical order.
    pub lints: Vec<Diagnostic>,
}

/// Runs the full analyzer over a parsed program.
pub fn analyze(prog: &Program) -> Analysis {
    let dom = domain::DomainAnalysis::analyze(prog);
    let certificate = termination::certify(prog, &dom);
    let cost = cost::CostModel::build(prog, &dom);
    let mut lints = perflints::perf_lints(prog);
    LintReport::sort(&mut lints);
    Analysis { certificate, cost, lints }
}

impl Analysis {
    /// One-line JSON summary, stable across runs and thread counts.
    pub fn json(&self, name: &str, prog: &Program) -> String {
        let mut s = String::new();
        s.push_str("{\"schema\":1,\"program\":\"");
        s.push_str(&bddfc_core::obs::json_escape(name));
        s.push_str("\",\"termination\":");
        match &self.certificate {
            Some(c) => s.push_str(&c.json()),
            None => s.push_str("null"),
        }
        s.push_str(",\"cost\":");
        s.push_str(&self.cost.json_named(prog));
        s.push_str(",\"lints\":[");
        for (i, d) in self.lints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.json());
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn analysis_json_is_one_line_and_stable() {
        let prog = parse_program("P(X) -> exists Z . E(X,Z). P(a). ?- E(X,Y).").unwrap();
        let a = analyze(&prog);
        let j = a.json("t", &prog);
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"schema\":1,\"program\":\"t\","));
        assert_eq!(j, analyze(&prog).json("t", &prog));
        assert!(a.certificate.is_some());
    }

    #[test]
    fn non_terminating_program_has_no_certificate() {
        let prog = parse_program("E(X,Y) -> exists Z . E(Y,Z). E(a,b).").unwrap();
        let a = analyze(&prog);
        assert!(a.certificate.is_none());
        let j = a.json("loop", &prog);
        assert!(j.contains("\"termination\":null"));
    }
}
