//! The static cost model: predicate cardinality priors and rule plans.
//!
//! The [domain abstraction](crate::domain) bounds how many distinct
//! values each position can hold; multiplying a predicate's position
//! bounds gives a static bound on its **distinct tuples**. Those
//! per-predicate bounds become [`bddfc_core::Priors`] that the batched
//! join planner consults as tie-breakers before runtime postings exist
//! (runtime cardinalities always dominate once they are non-zero —
//! priors only order predicates the store knows nothing about yet).
//!
//! [`CostModel::build`] also records, per rule, the join order the
//! planner would choose on an **empty store** seeded with these priors,
//! together with the rule's static firing bound. `--explain-plan`
//! renders exactly that, so what the analyzer prints is what the
//! planner will do on round one.

use crate::domain::{display_bound, json_bound, DomainAnalysis};
use bddfc_core::{obs::json_escape, join, PredId, Priors, Program};

/// Static cardinality and planning summary for one program.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// `(predicate, static distinct-tuple bound)`, sorted by predicate.
    pub pred_cards: Vec<(PredId, u64)>,
    /// Per-rule: the join order the planner picks with these priors on
    /// an empty store, plus the rule's static firing bound.
    pub rule_plans: Vec<RulePlan>,
}

/// The static plan of one rule.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// Body atom indices in execution order.
    pub order: Vec<usize>,
    /// Static bound on distinct firings (frontier tuples).
    pub est_firings: u64,
}

impl CostModel {
    /// Builds the model from a finished domain analysis.
    pub fn build(prog: &Program, dom: &DomainAnalysis) -> CostModel {
        let pred_cards: Vec<(PredId, u64)> = dom
            .preds()
            .into_iter()
            .map(|p| (p, dom.pred_card(p, prog.voc.arity(p))))
            .collect();
        let priors = Priors::new(pred_cards.iter().copied());
        let rule_plans = prog
            .theory
            .rules
            .iter()
            .zip(&dom.rule_firings)
            .map(|(rule, &est_firings)| RulePlan {
                order: join::plan_with_priors(&rule.body, None, |_| 0, Some(&priors)),
                est_firings,
            })
            .collect();
        CostModel { pred_cards, rule_plans }
    }

    /// The priors handed to the runtime join planner.
    pub fn priors(&self) -> Priors {
        Priors::new(self.pred_cards.iter().copied())
    }

    /// Stable single-line JSON rendering (predicates keyed by name).
    pub fn json_named(&self, prog: &Program) -> String {
        let mut s = String::from("{\"pred_cards\":{");
        for (i, (p, c)) in self.pred_cards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", json_escape(prog.voc.pred_name(*p)), json_bound(*c)));
        }
        s.push_str("},\"rule_firings\":[");
        for (i, rp) in self.rule_plans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_bound(rp.est_firings));
        }
        s.push_str("]}");
        s
    }

    /// `--explain-plan` rendering: per rule, the static join order with
    /// per-atom cardinality bounds and the firing estimate.
    pub fn explain(&self, prog: &Program) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (p, c) in &self.pred_cards {
            let _ = writeln!(s, "pred {}/{} card <= {}", prog.voc.pred_name(*p), prog.voc.arity(*p), display_bound(*c));
        }
        for (ri, (rule, rp)) in prog.theory.rules.iter().zip(&self.rule_plans).enumerate() {
            let _ = writeln!(s, "rule {}: {}", ri, rule.display(&prog.voc));
            let _ = write!(s, "  static order:");
            for &i in &rp.order {
                let card = self
                    .pred_cards
                    .iter()
                    .find(|(p, _)| *p == rule.body[i].pred)
                    .map(|&(_, c)| c)
                    .unwrap_or(u64::MAX);
                let _ = write!(s, " {}[{}]<={}", prog.voc.pred_name(rule.body[i].pred), i, display_bound(card));
            }
            let _ = writeln!(s);
            let _ = writeln!(s, "  est firings <= {}", display_bound(rp.est_firings));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    #[test]
    fn priors_order_static_plan_smallest_first() {
        // Big/2 can hold 3x3 tuples, Small/1 only 1; with no runtime
        // postings the static plan starts at Small when connected.
        let prog = parse_program(
            "Small(X), Big(X,Y) -> R(Y).
             Big(a,b). Big(b,c). Big(c,a). Small(a). ?- R(X).",
        )
        .unwrap();
        let dom = DomainAnalysis::analyze(&prog);
        let cm = CostModel::build(&prog, &dom);
        assert_eq!(cm.rule_plans[0].order[0], 0, "Small should lead the static plan");
        let small = prog.voc.find_pred("Small").unwrap();
        let p = cm.priors();
        assert_eq!(p.get(small), Some(1));
    }

    #[test]
    fn explain_plan_is_deterministic_and_mentions_every_rule() {
        let prog = parse_program("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). ?- E(X,Y).").unwrap();
        let dom = DomainAnalysis::analyze(&prog);
        let cm = CostModel::build(&prog, &dom);
        let a = cm.explain(&prog);
        assert_eq!(a, CostModel::build(&prog, &dom).explain(&prog));
        assert!(a.contains("rule 0:"));
        assert!(a.contains("est firings"));
    }
}
