//! The quotient tower of Section 2.3: "how the finite structures are
//! born", and the *converging to the Chase* trick.
//!
//! For a fixed (colored) structure `C̄`, the quotients `Mₙ(C̄)` form a
//! tower: `Mₙ₋₁(C̄)` is a homomorphic image of `Mₙ(C̄)` (Lemma 1), so a
//! query true at `qₙ(e)` in `Mₙ` is true at `qₙ₋₁(e)` in `Mₙ₋₁`
//! (Remark 2's monotonicity — the pillar of the Lemma 11 normalization
//! argument, where a counterexample at level `n+1` is pushed down to
//! level `n`). This module materializes finite segments of the tower and
//! checks these laws, which our property tests and experiments exercise.

use crate::analyzer::TypeAnalyzer;
use crate::quotient::Quotient;
use bddfc_core::{hom, Binding, ConjunctiveQuery, ConstId, Instance, Vocabulary};
use bddfc_core::fxhash::FxHashMap;

/// A finite segment `M_lo(C̄), …, M_hi(C̄)` of the quotient tower.
pub struct QuotientTower {
    /// The parameter of the first level.
    pub lo: usize,
    /// The quotients, `levels[i]` being `M_{lo+i}(C̄)`.
    pub levels: Vec<Quotient>,
}

impl QuotientTower {
    /// Builds the tower segment for `n ∈ lo..=hi` over the structure.
    pub fn build(inst: &Instance, voc: &mut Vocabulary, lo: usize, hi: usize) -> Self {
        let mut levels = Vec::with_capacity(hi - lo + 1);
        for n in lo..=hi {
            let partition = TypeAnalyzer::new(inst, voc, n).partition();
            levels.push(Quotient::new(inst, partition, voc));
        }
        QuotientTower { lo, levels }
    }

    /// The quotient at level `n`.
    pub fn level(&self, n: usize) -> &Quotient {
        &self.levels[n - self.lo]
    }

    /// Lemma 1, computationally: the level-(n−1) projection factors
    /// through the level-n one — whenever `qₙ` identifies two elements,
    /// so does `qₙ₋₁`. Returns `true` if the law holds on this structure.
    pub fn factoring_holds(&self, inst: &Instance) -> bool {
        let domain = inst.sorted_domain();
        for w in self.levels.windows(2) {
            let (coarse, fine) = (&w[0], &w[1]);
            let mut image: FxHashMap<ConstId, ConstId> = FxHashMap::default();
            for &e in &domain {
                let f = fine.project(e);
                let c = coarse.project(e);
                match image.get(&f) {
                    Some(&prev) if prev != c => return false,
                    _ => {
                        image.insert(f, c);
                    }
                }
            }
        }
        true
    }

    /// Remark 2's monotonicity for a pointed query: if
    /// `Mₙ(C̄) ⊨ ∃x̄ Ψ(x̄, qₙ(e))` then `Mₙ′(C̄) ⊨ ∃x̄ Ψ(x̄, qₙ′(e))` for
    /// every `n′ < n` in the segment. Returns the per-level truth values
    /// `(n, holds)` — the caller can check they are downward closed.
    pub fn pointed_query_profile(
        &self,
        query: &ConjunctiveQuery,
        free_var: bddfc_core::VarId,
        e: ConstId,
    ) -> Vec<(usize, bool)> {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let n = self.lo + i;
                let mut init = Binding::default();
                init.insert(free_var, q.project(e));
                let holds = hom::hom_exists(&q.instance, &query.atoms, &init);
                (n, holds)
            })
            .collect()
    }
}

/// Checks Remark 2's downward closure for a profile: once false at some
/// level, it stays false at all higher levels.
pub fn is_downward_closed(profile: &[(usize, bool)]) -> bool {
    let mut seen_false = false;
    for &(_, holds) in profile {
        if seen_false && holds {
            return false;
        }
        if !holds {
            seen_false = true;
        }
    }
    true
}

/// Convenience: a pointed query `∃x̄ Ψ(x̄, y)` from atoms and the free
/// variable `y`.
pub fn pointed_query(atoms: Vec<bddfc_core::Atom>, y: bddfc_core::VarId) -> ConjunctiveQuery {
    ConjunctiveQuery::with_free(atoms, vec![y])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{Atom, Fact, Term};

    fn chain(voc: &mut Vocabulary, len: usize) -> (Instance, Vec<ConstId>) {
        let e = voc.pred("E", 2);
        let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
        let mut inst = Instance::new();
        for i in 0..len {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
        }
        (inst, elems)
    }

    #[test]
    fn lemma1_factoring_on_chain() {
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 14);
        let tower = QuotientTower::build(&inst, &mut voc, 2, 5);
        assert!(tower.factoring_holds(&inst));
        // Levels weakly grow in size.
        for w in tower.levels.windows(2) {
            assert!(w[0].class_count() <= w[1].class_count());
        }
    }

    #[test]
    fn remark2_monotonicity_for_inpath_queries() {
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 14);
        let e = voc.find_pred("E").unwrap();
        let y = voc.fresh_var("Y");
        let x1 = voc.fresh_var("X1");
        let x2 = voc.fresh_var("X2");
        // Ψ(x̄, y) = E(x1, x2) ∧ E(x2, y): "y has an in-path of length 2".
        let q = pointed_query(
            vec![
                Atom::new(e, vec![Term::Var(x1), Term::Var(x2)]),
                Atom::new(e, vec![Term::Var(x2), Term::Var(y)]),
            ],
            y,
        );
        let tower = QuotientTower::build(&inst, &mut voc, 2, 5);
        for &el in &elems {
            let profile = tower.pointed_query_profile(&q, y, el);
            assert!(is_downward_closed(&profile), "element {el:?}: {profile:?}");
        }
    }

    #[test]
    fn low_levels_see_phantom_cycles() {
        // The paper's motivation: at low n the quotient closes a loop, so
        // the self-loop query is true at the interior class — but it
        // disappears as n grows past the element's depth.
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 14);
        let e = voc.find_pred("E").unwrap();
        let y = voc.fresh_var("Yl");
        let q = pointed_query(vec![Atom::new(e, vec![Term::Var(y), Term::Var(y)])], y);
        let tower = QuotientTower::build(&inst, &mut voc, 2, 6);
        // Element a3: at n = 2 it is merged into the looped interior; at
        // n = 5 its in-path length 3 < 4 separates it from the loop class.
        let profile = tower.pointed_query_profile(&q, y, elems[3]);
        assert!(is_downward_closed(&profile), "{profile:?}");
        assert!(profile.first().unwrap().1, "phantom loop at n = 2");
        assert!(!profile.last().unwrap().1, "resolved at n = 6");
    }

    #[test]
    fn downward_closure_checker() {
        assert!(is_downward_closed(&[(2, true), (3, true), (4, false)]));
        assert!(is_downward_closed(&[(2, false), (3, false)]));
        assert!(!is_downward_closed(&[(2, false), (3, true)]));
    }
}
