//! Conservativity (Definitions 8 and 9): do quotients preserve positive
//! types?
//!
//! A coloring `C̄` of `C` is *n-conservative up to size m* when
//! `ptpₘ(C, e, Σ) = ptpₘ(M^Σ̄ₙ(C̄), qₙ(e), Σ)` for every element `e`
//! (condition (♠2)). The `⊆` direction is automatic — `qₙ` is a
//! homomorphism, and positive queries survive homomorphisms — so only the
//! `⊇` direction is checked: every type query of the quotient element
//! must already hold at the original element.

use crate::analyzer::TypeAnalyzer;
use crate::coloring::{natural_coloring, Coloring};
use crate::quotient::Quotient;
use bddfc_core::{ConstId, Instance, PredId, Vocabulary};
use bddfc_core::fxhash::FxHashSet;

/// The full quotient bundle produced while checking conservativity.
pub struct ConservativityCheck {
    /// The colored structure `C̄`.
    pub colored: Instance,
    /// The coloring used.
    pub coloring: Coloring,
    /// The quotient `Mₙ(C̄)` (over the colored signature `Σ̄`).
    pub quotient: Quotient,
    /// The quotient restricted to the base signature `Σ`.
    pub quotient_sigma: Instance,
    /// Elements of `C` whose positive `m`-types are *not* preserved
    /// (empty iff the coloring is n-conservative up to size m).
    pub failures: Vec<ConstId>,
}

impl ConservativityCheck {
    /// Did the check pass (Definition 8 holds)?
    pub fn is_conservative(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks whether `coloring` of `inst` is `n`-conservative up to size `m`
/// (Definition 8), returning the full bundle.
///
/// `sigma`: the base signature Σ (facts of `inst` should only use these
/// predicates; the coloring adds `Σ̄ ∖ Σ`).
pub fn check_conservative(
    inst: &Instance,
    coloring: &Coloring,
    voc: &mut Vocabulary,
    n: usize,
    m: usize,
    sigma: &FxHashSet<PredId>,
) -> ConservativityCheck {
    let colored = coloring.apply(inst);
    let partition = {
        let analyzer = TypeAnalyzer::new(&colored, voc, n);
        analyzer.partition()
    };
    let quotient = Quotient::new(&colored, partition, voc);
    let quotient_sigma = quotient.instance.restrict_to_preds(sigma);

    // Check (♠2)'s non-trivial direction: ptpₘ(Mₙ restricted to Σ, qₙ(e))
    // ⊆ ptpₘ(C, e).
    let m_analyzer = TypeAnalyzer::new(&quotient_sigma, voc, m);
    let mut failures = Vec::new();
    for e in inst.sorted_domain() {
        let qe = quotient.project(e);
        if !m_analyzer.ptp_included_in(qe, inst, e) {
            failures.push(e);
        }
    }
    ConservativityCheck { colored, coloring: coloring.clone(), quotient, quotient_sigma, failures }
}

/// Remark 5: if the coloring is `n`-conservative up to size `m`, then a
/// datalog rule with at most `m` variables and a **unary** head that holds
/// in the original structure also holds in the quotient — because the
/// positive m-types of `x` and `qₙ(x)` coincide, the body matching at
/// `qₙ(x)` pulls back to `x`, whose unary head atom projects forward.
///
/// This helper checks the rule shape and verifies the transfer on a
/// finished [`ConservativityCheck`]. Returns `None` when the rule is not
/// of the Remark 5 shape (non-datalog, non-unary head, or too many
/// variables); `Some(true/false)` reports whether the transfer held.
pub fn remark5_transfer(
    check: &ConservativityCheck,
    rule: &bddfc_core::Rule,
    original: &Instance,
    m: usize,
) -> Option<bool> {
    if !rule.is_datalog() || !rule.is_single_head() || rule.head[0].args.len() != 1 {
        return None;
    }
    if rule.body_query().var_count() > m {
        return None;
    }
    if !bddfc_core::satisfaction::satisfies_rule(original, rule) {
        return None; // premise of the remark not met
    }
    Some(bddfc_core::satisfaction::satisfies_rule(&check.quotient_sigma, rule))
}

/// Searches for the least `n` in `n_range` for which the natural coloring
/// with parameter `m` is `n`-conservative up to size `m` (the existence of
/// such `n` for VTDAGs is the Main Lemma, Lemma 2).
pub fn find_conservative_n(
    inst: &Instance,
    voc: &mut Vocabulary,
    m: usize,
    n_range: std::ops::RangeInclusive<usize>,
) -> Option<(usize, ConservativityCheck)> {
    let sigma: FxHashSet<PredId> = inst.used_preds().collect();
    let coloring = natural_coloring(inst, voc, m);
    for n in n_range {
        let check = check_conservative(inst, &coloring, voc, n, m, &sigma);
        if check.is_conservative() {
            return Some((n, check));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::Fact;

    fn chain(voc: &mut Vocabulary, len: usize) -> (Instance, Vec<ConstId>) {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
        for i in 0..len {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
        }
        (inst, elems)
    }

    #[test]
    fn uncolored_chain_quotient_is_not_conservative() {
        // Example 3: without colors, the quotient creates a self-loop the
        // original's ptp₁ does not have… on a *finite* chain the loop only
        // appears when identification happens; use the trivial coloring
        // (everything one color) to mimic the uncolored structure.
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 12);
        let sigma: FxHashSet<PredId> = inst.used_preds().collect();
        // Trivial coloring: single color.
        let mut color_of = bddfc_core::fxhash::FxHashMap::default();
        let color = crate::coloring::Color { hue: 0, lightness: 0 };
        for e in inst.domain() {
            color_of.insert(e, color);
        }
        let mut pred_of = bddfc_core::fxhash::FxHashMap::default();
        pred_of.insert(color, voc.pred("K_triv", 1));
        let coloring = Coloring { color_of, pred_of };
        // n = 3, m = 2: the interior class has a self-loop E(x,x) in the
        // quotient; no chain element satisfies ∃x E(x,x)-style cycles of
        // length ≤ 2 at itself.
        let check = check_conservative(&inst, &coloring, &mut voc, 3, 2, &sigma);
        assert!(!check.is_conservative());
    }

    #[test]
    fn natural_coloring_makes_chain_conservative() {
        // Example 5: for the chain, the natural coloring with m+1 hues is
        // n-conservative up to size m for n around m+2.
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 16);
        let m = 2;
        let found = find_conservative_n(&inst, &mut voc, m, 2..=6);
        let (n, check) = found.expect("some n works");
        assert!(check.is_conservative());
        assert!(n <= 4, "n = {n}");
        // The quotient is genuinely smaller than the chain.
        assert!(check.quotient.class_count() < inst.domain_size());
    }

    #[test]
    fn conservative_quotient_preserves_small_types_by_construction() {
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 16);
        let m = 2;
        let (_, check) = find_conservative_n(&inst, &mut voc, m, 2..=6).unwrap();
        // Spot-check (♠2) via the analyzer in both directions.
        let m_analyzer = TypeAnalyzer::new(&check.quotient_sigma, &mut voc, m);
        for &e in &elems {
            let qe = check.quotient.project(e);
            assert!(m_analyzer.ptp_included_in(qe, &inst, e));
        }
    }

    #[test]
    fn remark5_unary_datalog_rules_transfer() {
        // Chain with a unary marker derived by a small datalog rule:
        // Mark(y) :- E(x,y). Conservative quotient must preserve it.
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let mark = voc.pred("Mark", 1);
        let elems: Vec<ConstId> = (0..=16).map(|_| voc.fresh_null("a")).collect();
        let mut inst = Instance::new();
        for i in 0..16 {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
            inst.insert(Fact::new(mark, vec![elems[i + 1]]));
        }
        let m = 2;
        let (_, check) = find_conservative_n(&inst, &mut voc, m, 2..=6).expect("conservative");
        let rule = bddfc_core::parse_rule("E(X,Y) -> Mark(Y)", &mut voc).unwrap();
        assert_eq!(
            super::remark5_transfer(&check, &rule, &inst, m),
            Some(true),
            "Remark 5: unary-head datalog rules survive conservative quotients"
        );
    }

    #[test]
    fn remark5_rejects_wrong_shapes() {
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 10);
        let m = 2;
        let (_, check) = find_conservative_n(&inst, &mut voc, m, 2..=6).unwrap();
        // Binary head: not the Remark 5 shape.
        let bin = bddfc_core::parse_rule("E(X,Y) -> E(Y,X)", &mut voc).unwrap();
        assert_eq!(super::remark5_transfer(&check, &bin, &inst, m), None);
        // Existential rule: not datalog.
        let tgd = bddfc_core::parse_rule("E(X,Y) -> exists Z . E(Y,Z)", &mut voc).unwrap();
        assert_eq!(super::remark5_transfer(&check, &tgd, &inst, m), None);
    }

    #[test]
    fn example4_larger_types_are_not_preserved() {
        // Example 4's second half: the m-parameter natural coloring is
        // conservative up to size m but NOT up to larger sizes — the
        // quotient contains a cycle the original chain lacks, detectable
        // by a query with enough variables.
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 20);
        let m = 1;
        let (n, check) = find_conservative_n(&inst, &mut voc, m, 2..=6).expect("some n works");
        assert!(check.is_conservative());
        // Re-check the same coloring and n at a strictly larger size: the
        // quotient's hue cycle (length m+2 = 3) becomes visible to
        // queries with more variables.
        let sigma: FxHashSet<PredId> = inst.used_preds().collect();
        let bigger = check_conservative(&inst, &check.coloring, &mut voc, n, m + 3, &sigma);
        assert!(
            !bigger.is_conservative(),
            "size-{} types must see the quotient's cycle",
            m + 3
        );
    }

    #[test]
    fn failures_are_reported() {
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 12);
        let sigma: FxHashSet<PredId> = inst.used_preds().collect();
        let mut color_of = bddfc_core::fxhash::FxHashMap::default();
        let color = crate::coloring::Color { hue: 0, lightness: 0 };
        for e in inst.domain() {
            color_of.insert(e, color);
        }
        let mut pred_of = bddfc_core::fxhash::FxHashMap::default();
        pred_of.insert(color, voc.pred("K_triv", 1));
        let coloring = Coloring { color_of, pred_of };
        let check = check_conservative(&inst, &coloring, &mut voc, 3, 2, &sigma);
        assert!(!check.failures.is_empty());
    }
}
