//! Positive n-types (Definition 3) and the equivalence `≡ₙ`
//! (Definition 4), computed exactly.
//!
//! ## The algorithm
//!
//! `ptpₙ(C, e, Θ)` is the set of conjunctive queries `Ψ(x̄, y)` with
//! `|x̄| < n` (so at most `n` variables in total) true at `e`. Deciding
//! `ptpₙ(C,d,Θ) ⊆ ptpₙ(C',e,Θ)` by enumerating queries is hopeless, but
//! two classical reductions make it exact and tractable:
//!
//! 1. **Canonical queries suffice.** If `Ψ` is true at `d` via an
//!    assignment σ, the *canonical query* of the image of σ — the full
//!    induced substructure on `σ(vars)` with each non-constant element a
//!    distinct variable and constants kept as constants — implies `Ψ` and
//!    is still true at `d` with at most as many variables. So inclusion
//!    over all queries equals inclusion over canonical queries.
//! 2. **Connected canonical queries suffice.** Truth of a disconnected
//!    query factors into its variable-connected components (constants pin
//!    their position and therefore do *not* connect components); every
//!    component not containing `y` is true or false independently of
//!    `d`/`e`. So only components containing `y` matter.
//!
//! Hence `ptpₙ(C,d) ⊆ ptpₙ(C',e)` iff for every variable-connected set
//! `S ∋ d` of at most `n` non-constant elements of `C`, the canonical
//! query of `S` (with all incident atoms, including those reaching
//! constants) maps homomorphically into `C'` sending `d ↦ e` and fixing
//! constants. On the bounded-degree forests the paper's skeletons are
//! (Lemma 3 (iv)), the number of such sets is small.
//!
//! Remark 1's constants behaviour falls out automatically: a named
//! constant appears in its own canonical queries as a constant, so it is
//! `≡ₙ`-equivalent only to itself.

use bddfc_core::fxhash::{FxHashMap, FxHashSet};
use bddfc_core::obs::{Event, EventSink, SpanTimer, NULL};
use bddfc_core::par;
use bddfc_core::{hom, Atom, Binding, ConstId, Instance, Term, VarId, Vocabulary};

/// Precomputed machinery for positive-type queries over one structure.
pub struct TypeAnalyzer<'a> {
    inst: &'a Instance,
    /// Maximum number of variables in a type query (the `n` of `ptpₙ`).
    n: usize,
    /// Elements that are named constants (fixed by every homomorphism).
    constants: FxHashSet<ConstId>,
    /// Variable-connectivity adjacency between non-constant elements.
    adj: FxHashMap<ConstId, Vec<ConstId>>,
    /// One scratch variable per canonical-query position.
    vars: Vec<VarId>,
}

impl<'a> TypeAnalyzer<'a> {
    /// Builds an analyzer for `ptpₙ` queries over `inst`. The vocabulary
    /// identifies which elements are named constants.
    pub fn new(inst: &'a Instance, voc: &mut Vocabulary, n: usize) -> Self {
        let constants: FxHashSet<ConstId> =
            inst.domain().filter(|&c| !voc.is_null(c)).collect();
        let mut adj: FxHashMap<ConstId, FxHashSet<ConstId>> = FxHashMap::default();
        for fact in inst.facts() {
            for (i, &a) in fact.args.iter().enumerate() {
                if constants.contains(&a) {
                    continue;
                }
                for &b in fact.args.iter().skip(i + 1) {
                    if b != a && !constants.contains(&b) {
                        adj.entry(a).or_default().insert(b);
                        adj.entry(b).or_default().insert(a);
                    }
                }
            }
        }
        let adj = adj
            .into_iter()
            .map(|(k, v)| {
                let mut v: Vec<ConstId> = v.into_iter().collect();
                v.sort_unstable();
                (k, v)
            })
            .collect();
        let vars = (0..n).map(|i| voc.fresh_var(&format!("tp{i}"))).collect();
        TypeAnalyzer { inst, n, constants, adj, vars }
    }

    /// The `n` of this analyzer.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Is the element a named constant?
    pub fn is_constant(&self, c: ConstId) -> bool {
        self.constants.contains(&c)
    }

    fn neighbours(&self, c: ConstId) -> &[ConstId] {
        self.adj.get(&c).map_or(&[], |v| v.as_slice())
    }

    /// Enumerates every variable-connected subset of non-constant elements
    /// containing `root`, of size ≤ `n`, invoking `visit` once per subset.
    ///
    /// Uses the standard connected-subgraph enumeration: grow the subset
    /// from the root, only ever extending with neighbours, and forbid
    /// re-adding elements skipped earlier to avoid duplicates.
    fn for_each_connected_subset(&self, root: ConstId, visit: &mut impl FnMut(&[ConstId])) {
        debug_assert!(!self.is_constant(root));
        let mut subset = vec![root];
        let mut forbidden: FxHashSet<ConstId> = [root].into_iter().collect();
        let mut frontier: Vec<ConstId> = self
            .neighbours(root)
            .iter()
            .copied()
            .filter(|c| !self.constants.contains(c))
            .collect();
        self.extend_subset(&mut subset, &mut frontier, &mut forbidden, visit);
    }

    fn extend_subset(
        &self,
        subset: &mut Vec<ConstId>,
        #[allow(clippy::ptr_arg)] frontier: &mut Vec<ConstId>,
        forbidden: &mut FxHashSet<ConstId>,
        visit: &mut impl FnMut(&[ConstId]),
    ) {
        visit(subset);
        if subset.len() == self.n {
            return;
        }
        // Choose each frontier element in turn; elements chosen earlier in
        // the loop are forbidden for later branches (dedup).
        let mut locally_forbidden = Vec::new();
        let snapshot = frontier.clone();
        for &cand in &snapshot {
            if forbidden.contains(&cand) {
                continue;
            }
            forbidden.insert(cand);
            locally_forbidden.push(cand);
            subset.push(cand);
            let mut new_frontier: Vec<ConstId> = frontier.clone();
            for &nb in self.neighbours(cand) {
                if !forbidden.contains(&nb) && !new_frontier.contains(&nb) {
                    new_frontier.push(nb);
                }
            }
            self.extend_subset(subset, &mut new_frontier, forbidden, visit);
            subset.pop();
        }
        // Un-forbid for sibling branches higher in the recursion.
        for c in locally_forbidden {
            forbidden.remove(&c);
        }
    }

    /// Builds the canonical query of the subset: every atom of the
    /// structure with at least one argument in `subset` and all arguments
    /// in `subset ∪ constants`. Non-constant elements become variables.
    fn canonical_query(&self, subset: &[ConstId]) -> Vec<Atom> {
        let var_of: FxHashMap<ConstId, VarId> = subset
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, self.vars[i]))
            .collect();
        let mut atoms = Vec::new();
        let mut seen_facts = FxHashSet::default();
        for &c in subset {
            // All facts touching c; dedup across subset members.
            for &fidx in self.inst.facts_with_element(c) {
                if !seen_facts.insert(fidx) {
                    continue;
                }
                let fact = self.inst.fact(fidx);
                let mut ok = true;
                let args: Vec<Term> = fact
                    .args
                    .iter()
                    .map(|&a| {
                        if let Some(&v) = var_of.get(&a) {
                            Term::Var(v)
                        } else if self.constants.contains(&a) {
                            Term::Const(a)
                        } else {
                            ok = false;
                            Term::Const(a)
                        }
                    })
                    .collect();
                if ok {
                    atoms.push(Atom::new(fact.pred, args));
                }
            }
        }
        atoms
    }

    /// Checks the *global* part of type inclusion: every connected
    /// canonical query of this structure with at most `n − 1` variables
    /// holds somewhere in `target`. This is what the type of a *constant*
    /// reduces to — the pinned `y = c` component contributes no variables,
    /// so the remaining budget ranges over arbitrary components of `C`.
    pub fn global_cqs_included_in(&self, target: &Instance) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut roots: Vec<ConstId> = self
            .inst
            .sorted_domain()
            .into_iter()
            .filter(|&c| !self.is_constant(c))
            .collect();
        roots.sort_unstable();
        let mut included = true;
        for root in roots {
            if !included {
                break;
            }
            self.for_each_connected_subset(root, &mut |subset| {
                if !included || subset.len() >= self.n {
                    return;
                }
                let atoms = self.canonical_query(subset);
                if !hom::hom_exists(target, &atoms, &Binding::default()) {
                    included = false;
                }
            });
        }
        included
    }

    /// Is `ptpₙ(C, d) ⊆ ptpₙ(target, e)` (types over the shared
    /// signature)? Constants are fixed points of any homomorphism
    /// automatically because canonical queries mention them as constants.
    pub fn ptp_included_in(&self, d: ConstId, target: &Instance, e: ConstId) -> bool {
        if self.is_constant(d) {
            // Remark 1: the type of a constant contains `y = d`, so e must
            // be d itself; the rest of the type is the set of global small
            // queries (the pinned y detaches from every other component).
            return d == e && self.global_cqs_included_in(target);
        }
        let mut included = true;
        self.for_each_connected_subset(d, &mut |subset| {
            if !included {
                return;
            }
            let atoms = self.canonical_query(subset);
            let mut init = Binding::default();
            // subset[0] is always the root d.
            init.insert(self.vars[0], e);
            debug_assert_eq!(subset[0], d);
            if !hom::hom_exists(target, &atoms, &init) {
                included = false;
            }
        });
        included
    }

    /// `d ≡ₙ e` within this structure (Definition 4).
    pub fn equivalent(&self, d: ConstId, e: ConstId) -> bool {
        if d == e {
            return true;
        }
        if self.is_constant(d) || self.is_constant(e) {
            return false;
        }
        self.ptp_included_in(d, self.inst, e) && {
            // Reverse direction needs subsets rooted at e.
            self.ptp_included_in(e, self.inst, d)
        }
    }

    /// A cheap invariant that refines nothing `≡ₙ` distinguishes: two
    /// equivalent elements must agree on it, so the partition only needs
    /// pairwise checks within buckets.
    ///
    /// For `n ≥ 2`, each entry is expressible as a 2-variable query
    /// ("there is a P-fact with the element at position i and a constant
    /// c / some non-constant at position j"), so equal types force equal
    /// keys. For `n = 1` only the constant-involving entries are
    /// expressible; neighbour markers are dropped.
    fn bucket_key(&self, e: ConstId) -> Vec<u64> {
        let mut key: FxHashSet<u64> = FxHashSet::default();
        for &fidx in self.inst.facts_with_element(e) {
            let fact = self.inst.fact(fidx);
            for (i, &a) in fact.args.iter().enumerate() {
                if a != e {
                    continue;
                }
                // Entry: (pred, my position, other-arg profile).
                for (j, &b) in fact.args.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let marker: u64 = if self.constants.contains(&b) {
                        // Specific constant: always expressible.
                        (1 << 40) | b.0 as u64
                    } else if b == e {
                        2 << 40
                    } else if self.n >= 2 {
                        // "Some non-constant": needs one extra variable.
                        3 << 40
                    } else {
                        continue;
                    };
                    key.insert((fact.pred.0 as u64) << 48 | (i as u64) << 44 | marker);
                }
                if fact.args.len() == 1 {
                    key.insert((fact.pred.0 as u64) << 48 | (i as u64) << 44);
                }
            }
        }
        let mut v: Vec<u64> = key.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Partitions the domain into `≡ₙ` classes. Constants are singleton
    /// classes (Remark 1). Classes and their members are sorted for
    /// determinism. Elements are pre-bucketed by a sound invariant so the
    /// quadratic pairwise phase only runs within buckets.
    ///
    /// Bucket keys and the per-element representative comparisons are
    /// read-only and computed in parallel. Class representatives are
    /// pairwise inequivalent and `≡ₙ` is an equivalence relation, so at
    /// most one representative can match any element — the parallel
    /// comparisons cannot disagree with the sequential scan — and the
    /// greedy merge itself runs sequentially over the sorted domain, so
    /// class order and membership are thread-count-independent.
    pub fn partition(&self) -> Vec<Vec<ConstId>> {
        self.partition_with(&NULL)
    }

    /// Like [`TypeAnalyzer::partition`], but emits one
    /// `analyzer`/`partition` summary event into `sink` when done.
    /// Fields: `elements` (domain size), `constants` (forced singleton
    /// classes), `buckets` (invariant buckets the quadratic phase was
    /// confined to), `eq_checks` (pairwise `≡ₙ` representative
    /// comparisons), `classes`; gauges: `wall_ns`, `threads`.
    pub fn partition_with<S: EventSink>(&self, sink: &S) -> Vec<Vec<ConstId>> {
        let timer = SpanTimer::start();
        let span = if S::ENABLED { sink.span_open("analyzer", "partition", 0, None) } else { 0 };
        let domain = self.inst.sorted_domain();
        let keys: Vec<Option<Vec<u64>>> = par::par_map(&domain, |&d| {
            if self.is_constant(d) {
                None
            } else {
                Some(self.bucket_key(d))
            }
        });
        let mut classes: Vec<Vec<ConstId>> = Vec::new();
        let mut by_bucket: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
        let mut constants = 0u64;
        let mut eq_checks = 0u64;
        for (&d, key) in domain.iter().zip(keys) {
            let Some(key) = key else {
                constants += 1;
                classes.push(vec![d]);
                continue;
            };
            let candidates = by_bucket.entry(key).or_default();
            let reps: Vec<ConstId> = candidates.iter().map(|&ci| classes[ci][0]).collect();
            eq_checks += reps.len() as u64;
            let hits = par::par_map(&reps, |&rep| self.equivalent(d, rep));
            if let Some(pos) = hits.iter().position(|&hit| hit) {
                classes[candidates[pos]].push(d);
            } else {
                candidates.push(classes.len());
                classes.push(vec![d]);
            }
        }
        if S::ENABLED {
            sink.record(Event {
                engine: "analyzer",
                name: "partition",
                parent: span,
                key: None,
                fields: &[
                    ("elements", domain.len() as u64),
                    ("constants", constants),
                    ("buckets", by_bucket.len() as u64),
                    ("eq_checks", eq_checks),
                    ("classes", classes.len() as u64),
                ],
                gauges: &[
                    ("wall_ns", timer.elapsed_ns()),
                    ("threads", par::num_threads() as u64),
                ],
            });
            sink.span_close(span);
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::{parse_into, Fact};

    /// A chain a0 -> a1 -> ... -> a_{len}, all elements *nulls* except
    /// none; `named` of them (prefix) are promoted to constants.
    fn chain(voc: &mut Vocabulary, len: usize, named: usize) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
        for (i, &el) in elems.iter().enumerate() {
            if i < named {
                voc.name_element(el);
            }
            let _ = el;
        }
        for i in 0..len {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
        }
        inst
    }

    #[test]
    fn chain_types_follow_example3() {
        // Example 3 on a finite chain prefix a0 → … → a12, under
        // Definition 3 read literally (queries with ≤ n variables in
        // total, i.e. |x̄| < n plus y). The longest expressible in-path
        // query has length n−1, so a_i ≡ₙ a_j for interior elements iff
        // min(i, n−1) = min(j, n−1); near the *end* of the finite prefix,
        // out-path lengths distinguish elements symmetrically (an artifact
        // of finiteness absent from the paper's infinite chain).
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 12, 0);
        let n = 3;
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, n);
        let dom = inst.sorted_domain();
        // a1 has an in-path of length 1 only; a2 of length 2 = n − 1:
        // the 3-variable query E(x1,x2) ∧ E(x2,y) separates them.
        assert!(!analyzer.equivalent(dom[1], dom[2]));
        // a2 vs a3: separation would need an in-path of length 3, i.e. 4
        // variables — beyond the budget. Equivalent.
        assert!(analyzer.equivalent(dom[2], dom[3]));
        assert!(analyzer.equivalent(dom[5], dom[9]));
        assert!(!analyzer.equivalent(dom[0], dom[1]));
        // End effects: a11 has out-path 1, a10 has ≥ 2: separated.
        assert!(!analyzer.equivalent(dom[10], dom[11]));
        assert!(!analyzer.equivalent(dom[11], dom[12]));
    }

    #[test]
    fn chain_partition_counts_interior_and_rim_classes() {
        // Classes of a finite (len+1)-element chain under ≡ₙ:
        // n−1 in-path classes {a0}…{a_{n-2}}, one interior class, and
        // n−1 out-path classes at the rim: 2(n−1) + 1 in total.
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 10, 0);
        for n in 2..=4 {
            let analyzer = TypeAnalyzer::new(&inst, &mut voc, n);
            assert_eq!(analyzer.partition().len(), 2 * (n - 1) + 1, "n = {n}");
        }
    }

    #[test]
    fn partition_sink_reports_elements_constants_and_classes() {
        use bddfc_core::obs::Memory;
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 10, 2);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let sink = Memory::new(16);
        let classes = analyzer.partition_with(&sink);
        assert_eq!(sink.event_counts(), vec![(("analyzer", "partition"), 1)]);
        assert_eq!(sink.counter("analyzer", "partition", "elements"), 11);
        assert_eq!(sink.counter("analyzer", "partition", "constants"), 2);
        assert_eq!(
            sink.counter("analyzer", "partition", "classes"),
            classes.len() as u64
        );
        // The instrumented entry point computes the same partition.
        assert_eq!(classes, analyzer.partition());
    }

    #[test]
    fn constants_are_singletons() {
        // Remark 1: named elements are equivalent only to themselves.
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 6, 7);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 2);
        assert_eq!(analyzer.partition().len(), 7);
    }

    #[test]
    fn example2_structures_compared() {
        // Example 2: chase prefix (a chain) vs the triangle M'. Types of a
        // over Θ = {E,U}: ptp₂ equal, ptp₃ differ (triangle query).
        let mut voc = Vocabulary::new();
        let (_, tri, _) = parse_into("E(a,b). E(b,c). E(c,a).", &mut voc).unwrap();
        // A long chain starting at a (mimicking Chase(D,T) far enough for
        // ptp₃ purposes).
        let mut chain_src = String::from("E(a,b).");
        let mut prev = "b".to_string();
        for i in 0..8 {
            chain_src.push_str(&format!(" E({prev},z{i})."));
            prev = format!("z{i}");
        }
        let mut voc_chain = voc.clone();
        let (_, chain_inst, _) = parse_into(&chain_src, &mut voc_chain).unwrap();
        // Only a, b are genuinely named in the paper's D; our parser names
        // everything, so re-mark the z's and c as nulls... The vocabulary
        // trick: use fresh copies where those are nulls.
        // Simpler: compare ptp inclusion of `a` in both directions.
        let a = voc.find_const("a").unwrap();
        let an2 = TypeAnalyzer::new(&chain_inst, &mut voc_chain.clone(), 2);
        // With n = 2 the chain's canonical queries at `a` hold in the
        // triangle too (single edges).
        assert!(an2.ptp_included_in(a, &tri, a));
        let tri_an3 = TypeAnalyzer::new(&tri, &mut voc.clone(), 3);
        // ptp₃ of a in the triangle contains E(y,x1) ∧ E(x1,x2) ∧ E(x2,y)
        // — hmm, with a,b,c all named constants the subsets are empty.
        // The assertion that matters: the *chain* types at a do include
        // into the triangle (quotients only add atoms)…
        let _ = tri_an3;
        // …and the triangle's 3-element cycle query does not hold in the
        // chain. We verify via a direct query instead of the analyzer
        // (constants in the triangle pin every element).
        let cyc = bddfc_core::parse_query("E(Y,X1), E(X1,X2), E(X2,Y)", &mut voc_chain).unwrap();
        assert!(bddfc_core::hom::satisfies_cq(&tri, &cyc));
        assert!(!bddfc_core::hom::satisfies_cq(&chain_inst, &cyc));
    }

    #[test]
    fn branching_structure_distinguished_from_chain() {
        // d with two distinct successors vs. d' with one: ptp₃ differs…
        // over *distinct successors observable by CQs*? CQs cannot express
        // inequality, so F/G labels make the difference.
        let mut voc = Vocabulary::new();
        let f = voc.pred("F", 2);
        let g = voc.pred("G", 2);
        let mut inst = Instance::new();
        let d = voc.fresh_null("d");
        let s1 = voc.fresh_null("s");
        let s2 = voc.fresh_null("s");
        let d2 = voc.fresh_null("d");
        let t = voc.fresh_null("t");
        inst.insert(Fact::new(f, vec![d, s1]));
        inst.insert(Fact::new(g, vec![d, s2]));
        inst.insert(Fact::new(f, vec![d2, t]));
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 2);
        // d has a G-successor; d2 does not.
        assert!(!analyzer.equivalent(d, d2));
        // but d's type includes d2's: everything true at d2 is true at d.
        assert!(analyzer.ptp_included_in(d2, &inst, d));
    }

    #[test]
    fn self_loop_absorbs_chain_types() {
        // An element with E(x,x) satisfies every connected E-path query:
        // chain elements' types include into it.
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let mut inst = chain(&mut voc, 5, 0);
        let lp = voc.fresh_null("loop");
        inst.insert(Fact::new(e, vec![lp, lp]));
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let dom = inst.sorted_domain();
        // dom[0] is a0 (chain head).
        assert!(analyzer.ptp_included_in(dom[0], &inst, lp));
        // The loop's type (E(y,y) ∈ ptp₁) does not include into a0.
        assert!(!analyzer.ptp_included_in(lp, &inst, dom[0]));
    }

    #[test]
    fn disconnected_parts_do_not_affect_types() {
        // Adding a far-away disconnected component leaves ≡ₙ untouched.
        let mut voc = Vocabulary::new();
        let mut inst = chain(&mut voc, 6, 0);
        let dom_before = inst.sorted_domain();
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let eq_before = analyzer.equivalent(dom_before[3], dom_before[4]);
        drop(analyzer);
        // Add an isolated U-marked element.
        let u = voc.pred("U", 1);
        let iso = voc.fresh_null("iso");
        inst.insert(Fact::new(u, vec![iso]));
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        assert_eq!(analyzer.equivalent(dom_before[3], dom_before[4]), eq_before);
    }
}
