//! # bddfc-types — positive types, quotients, colorings, conservativity
//!
//! The Section 2 machinery of *On the BDD/FC Conjecture*:
//!
//! * positive n-types `ptpₙ` and the equivalence `≡ₙ` (Definitions 3/4),
//!   computed exactly via connected canonical queries ([`analyzer`]);
//! * the quotient structures `Mₙ(C)` (Definition 5) ([`quotient`]);
//! * colors `K^l_h`, colorings, and natural colorings (Definitions 6, 7
//!   and 14) ([`coloring`]);
//! * n-conservativity up to size m (Definitions 8/9, condition (♠2))
//!   ([`conservative`]).

#![warn(missing_docs)]

pub mod analyzer;
pub mod coloring;
pub mod conservative;
pub mod quotient;
pub mod tower;

pub use analyzer::TypeAnalyzer;
pub use coloring::{natural_coloring, neighbourhood_code, predecessors, predecessors_m, Color, Coloring};
pub use conservative::{check_conservative, find_conservative_n, remark5_transfer, ConservativityCheck};
pub use quotient::Quotient;
pub use tower::{is_downward_closed, pointed_query, QuotientTower};
