//! Colors, colorings, and the *natural* colorings of Definition 14.
//!
//! A color `K^l_h` (Definition 6) is a unary predicate with a *hue* `h`
//! and a *lightness* `l`. A coloring of `C` (Definition 7) assigns exactly
//! one color atom to every element. A **natural** coloring additionally
//! guarantees (Definition 14):
//!
//! 1. elements within the `m`-fold predecessor closure of one another
//!    (`e' ∈ Pₘ(e)`) have different hues — this is what rules out short
//!    directed cycles in the quotient (Lemma 9);
//! 2. same lightness ⟹ the predecessor neighbourhoods
//!    `C ↾ (P(e) ∪ C_con)` are isomorphic (with `e` marked) — this is what
//!    powers the normalization step (Lemma 11).
//!
//! Hues are assigned greedily along a topological-ish order; lightness is
//! the canonical code of the marked predecessor neighbourhood, computed by
//! brute force over the (small, Lemma 3 (iv)) neighbourhood.

use bddfc_core::{ConstId, Fact, Instance, PredId, Vocabulary};
use bddfc_core::fxhash::{FxHashMap, FxHashSet};

/// A color: hue `h` and lightness `l` (the paper's `K^l_h`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Color {
    /// The hue (must differ within `Pₘ` closures).
    pub hue: u32,
    /// The lightness (encodes the isomorphism type of `P(e)`).
    pub lightness: u32,
}

/// An assignment of one color to every domain element.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Color of each element.
    pub color_of: FxHashMap<ConstId, Color>,
    /// The unary predicate standing for each used color.
    pub pred_of: FxHashMap<Color, PredId>,
}

impl Coloring {
    /// The color predicates (the `Σ̄ ∖ Σ` part of the colored signature).
    pub fn color_preds(&self) -> FxHashSet<PredId> {
        self.pred_of.values().copied().collect()
    }

    /// Produces `C̄`: the instance extended with one color atom per
    /// element (Definition 7).
    pub fn apply(&self, inst: &Instance) -> Instance {
        let mut out = inst.clone();
        for (&e, color) in &self.color_of {
            out.insert(Fact::new(self.pred_of[color], vec![e]));
        }
        out
    }

    /// Number of distinct colors used.
    pub fn color_count(&self) -> usize {
        self.pred_of.len()
    }
}

/// Computes `P(e)` (Definition 10): `{e}` for constants, else `{e}`
/// together with all non-constant direct predecessors of `e` in any
/// binary-or-wider relation (any earlier argument position of a fact in
/// which `e` occurs later).
pub fn predecessors(inst: &Instance, voc: &Vocabulary, e: ConstId) -> FxHashSet<ConstId> {
    let mut out: FxHashSet<ConstId> = [e].into_iter().collect();
    if !voc.is_null(e) {
        return out;
    }
    for &fidx in inst.facts_with_element(e) {
        let fact = inst.fact(fidx);
        // For binary signatures this is exactly "x with R(x,e)". We read
        // the general case as: arguments strictly before some occurrence
        // of e.
        if let Some(last_pos) = fact.args.iter().rposition(|&c| c == e) {
            for &c in &fact.args[..last_pos] {
                if voc.is_null(c) && c != e {
                    out.insert(c);
                }
            }
        }
    }
    out
}

/// Computes `Pₘ(e)` (Definition 13): the m-fold iteration of `P`.
pub fn predecessors_m(
    inst: &Instance,
    voc: &Vocabulary,
    e: ConstId,
    m: usize,
) -> FxHashSet<ConstId> {
    let mut current = predecessors(inst, voc, e);
    for _ in 0..m {
        let mut next = FxHashSet::default();
        for &a in &current {
            next.extend(predecessors(inst, voc, a));
        }
        if next.len() == current.len() {
            break;
        }
        current = next;
    }
    current
}

/// Canonical code of the marked structure `C ↾ (P(e) ∪ C_con)` with `e`
/// distinguished: lexicographically least encoding over all orderings of
/// the non-constant, non-`e` elements. Constants are rigid; the
/// neighbourhood is small (Lemma 3 (iv)), so brute force is fine.
pub fn neighbourhood_code(inst: &Instance, voc: &Vocabulary, e: ConstId) -> Vec<u64> {
    let constants: FxHashSet<ConstId> =
        inst.domain().filter(|&c| !voc.is_null(c)).collect();
    let const_facts = constant_facts(inst, &constants);
    neighbourhood_code_cached(inst, voc, e, &constants, &const_facts)
}

/// Facts entirely over constants — shared by every neighbourhood.
fn constant_facts(inst: &Instance, constants: &FxHashSet<ConstId>) -> Vec<usize> {
    let mut out = Vec::new();
    let mut seen = FxHashSet::default();
    for &c in constants {
        for &fidx in inst.facts_with_element(c) {
            if seen.insert(fidx)
                && inst.fact(fidx).args.iter().all(|a| constants.contains(a))
            {
                out.push(fidx);
            }
        }
    }
    out.sort_unstable();
    out
}

/// The workhorse behind [`neighbourhood_code`], taking the precomputed
/// constant set and constant-only facts (an O(|C|) saving per element on
/// large structures).
fn neighbourhood_code_cached(
    inst: &Instance,
    voc: &Vocabulary,
    e: ConstId,
    constants: &FxHashSet<ConstId>,
    const_facts: &[usize],
) -> Vec<u64> {
    let p: FxHashSet<ConstId> = predecessors(inst, voc, e);
    let keep = |c: ConstId| p.contains(&c) || constants.contains(&c);
    // Atoms of C ↾ (P(e) ∪ C_con): facts incident to P(e) with all args
    // kept, plus the (shared) constant-only facts.
    let mut sub = Instance::new();
    for &member in &p {
        for &fidx in inst.facts_with_element(member) {
            let fact = inst.fact(fidx);
            if fact.args.iter().all(|&a| keep(a)) {
                sub.insert(fact.clone());
            }
        }
    }
    for &fidx in const_facts {
        sub.insert(inst.fact(fidx).clone());
    }

    // Elements to permute: P(e) ∖ {e} restricted to nulls.
    let mut movable: Vec<ConstId> = p
        .iter()
        .copied()
        .filter(|&c| c != e && voc.is_null(c))
        .collect();
    movable.sort_unstable();

    let encode = |order: &[ConstId]| -> Vec<u64> {
        let pos: FxHashMap<ConstId, u64> = order
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u64))
            .collect();
        // Exact per-atom tuple encoding: predicate, then one tagged value
        // per argument. Constants keep global identity (tag 3); `e` is
        // tag 1; movable elements get their order position (tag 2).
        let mut atoms: Vec<Vec<u64>> = sub
            .facts()
            .iter()
            .map(|f| {
                let mut code: Vec<u64> = Vec::with_capacity(1 + f.args.len());
                code.push(f.pred.0 as u64);
                for &a in &f.args {
                    code.push(if a == e {
                        1 << 32
                    } else if let Some(&p) = pos.get(&a) {
                        (2 << 32) | p
                    } else {
                        (3 << 32) | a.0 as u64
                    });
                }
                code
            })
            .collect();
        atoms.sort_unstable();
        // Flatten with length prefixes to keep the encoding injective.
        let mut flat = Vec::new();
        for atom in atoms {
            flat.push(atom.len() as u64);
            flat.extend(atom);
        }
        flat
    };

    // Brute-force minimal code over permutations of the movable elements.
    let mut best: Option<Vec<u64>> = None;
    permute(&mut movable.clone(), 0, &mut |order| {
        let code = encode(order);
        if best.as_ref().is_none_or(|b| code < *b) {
            best = Some(code);
        }
    });
    best.unwrap_or_default()
}

fn permute(items: &mut [ConstId], k: usize, visit: &mut impl FnMut(&[ConstId])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Builds a natural coloring of `inst` for parameter `m` (Definition 14).
///
/// Lightness = index of the canonical neighbourhood code; hue = greedy
/// proper coloring of the conflict graph `{(e,e') : e' ∈ Pₘ(e), e ≠ e'}`.
pub fn natural_coloring(inst: &Instance, voc: &mut Vocabulary, m: usize) -> Coloring {
    let domain = inst.sorted_domain();

    // Lightness classes (constant-only facts computed once).
    let constants: FxHashSet<ConstId> =
        inst.domain().filter(|&c| !voc.is_null(c)).collect();
    let const_facts = constant_facts(inst, &constants);
    let mut code_ids: FxHashMap<Vec<u64>, u32> = FxHashMap::default();
    let mut lightness: FxHashMap<ConstId, u32> = FxHashMap::default();
    for &e in &domain {
        let code = neighbourhood_code_cached(inst, voc, e, &constants, &const_facts);
        let next = code_ids.len() as u32;
        let id = *code_ids.entry(code).or_insert(next);
        lightness.insert(e, id);
    }

    // Conflict graph: symmetrized Pₘ relation.
    let mut conflicts: FxHashMap<ConstId, FxHashSet<ConstId>> = FxHashMap::default();
    for &e in &domain {
        for other in predecessors_m(inst, voc, e, m) {
            if other != e {
                conflicts.entry(e).or_default().insert(other);
                conflicts.entry(other).or_default().insert(e);
            }
        }
    }

    // Greedy hue assignment in deterministic order.
    let mut hue: FxHashMap<ConstId, u32> = FxHashMap::default();
    for &e in &domain {
        let used: FxHashSet<u32> = conflicts
            .get(&e)
            .map(|ns| ns.iter().filter_map(|n| hue.get(n).copied()).collect())
            .unwrap_or_default();
        let mut h = 0u32;
        while used.contains(&h) {
            h += 1;
        }
        hue.insert(e, h);
    }

    // Materialize color predicates.
    let mut color_of = FxHashMap::default();
    let mut pred_of: FxHashMap<Color, PredId> = FxHashMap::default();
    for &e in &domain {
        let color = Color { hue: hue[&e], lightness: lightness[&e] };
        color_of.insert(e, color);
        pred_of
            .entry(color)
            .or_insert_with(|| voc.pred(&format!("K_{}_{}", color.hue, color.lightness), 1));
    }
    Coloring { color_of, pred_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(voc: &mut Vocabulary, len: usize) -> (Instance, Vec<ConstId>) {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
        for i in 0..len {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
        }
        (inst, elems)
    }

    #[test]
    fn predecessor_sets_on_chain() {
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 5);
        let p = predecessors(&inst, &voc, elems[3]);
        assert_eq!(p.len(), 2); // {a3, a2}
        assert!(p.contains(&elems[2]));
        let p2 = predecessors_m(&inst, &voc, elems[3], 2);
        assert_eq!(p2.len(), 4); // {a3, a2, a1, a0}
    }

    #[test]
    fn constants_have_singleton_predecessors() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let a = voc.constant("a");
        let n = voc.fresh_null("n");
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![n, a]));
        assert_eq!(predecessors(&inst, &voc, a).len(), 1);
        // The null has no predecessors besides itself here.
        assert_eq!(predecessors(&inst, &voc, n).len(), 1);
    }

    #[test]
    fn natural_coloring_uses_m_plus_two_hues_on_chain() {
        // Definition 13's P₀(e) already contains the direct predecessor,
        // so Pₘ reaches m+1 steps back and a chain needs m+2 hues. (The
        // informal Example 4 cycles m+1 colors; Definition 14 is the
        // slightly stronger constraint the proofs use.)
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 12);
        let m = 3;
        let coloring = natural_coloring(&inst, &mut voc, m);
        let hues: FxHashSet<u32> = coloring.color_of.values().map(|c| c.hue).collect();
        assert_eq!(hues.len(), m + 2);
        // Conflict condition: e and its m-fold predecessors differ in hue.
        for &e in &elems {
            for other in predecessors_m(&inst, &voc, e, m) {
                if other != e {
                    assert_ne!(
                        coloring.color_of[&e].hue,
                        coloring.color_of[&other].hue
                    );
                }
            }
        }
    }

    #[test]
    fn lightness_reflects_neighbourhood_isomorphism() {
        // Interior chain elements share a lightness; the root (no
        // predecessor) has its own.
        let mut voc = Vocabulary::new();
        let (inst, elems) = chain(&mut voc, 8);
        let coloring = natural_coloring(&inst, &mut voc, 2);
        let l = |e: ConstId| coloring.color_of[&e].lightness;
        assert_eq!(l(elems[3]), l(elems[5]));
        assert_ne!(l(elems[0]), l(elems[3]));
    }

    #[test]
    fn apply_adds_one_color_atom_per_element() {
        let mut voc = Vocabulary::new();
        let (inst, _) = chain(&mut voc, 6);
        let coloring = natural_coloring(&inst, &mut voc, 2);
        let colored = coloring.apply(&inst);
        assert_eq!(colored.len(), inst.len() + inst.domain_size());
        // Exactly one color atom per element.
        for e in inst.domain() {
            let count = coloring
                .pred_of
                .values()
                .filter(|&&p| {
                    colored.contains(&Fact::new(p, vec![e]))
                })
                .count();
            assert_eq!(count, 1);
        }
    }

    #[test]
    fn neighbourhood_code_invariant_under_renaming() {
        // Two chains with different element ids: interior elements get
        // identical codes.
        let mut voc = Vocabulary::new();
        let (inst1, elems1) = chain(&mut voc, 6);
        let (inst2, elems2) = chain(&mut voc, 6);
        let c1 = neighbourhood_code(&inst1, &voc, elems1[3]);
        let c2 = neighbourhood_code(&inst2, &voc, elems2[4]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn branching_nodes_get_distinct_lightness() {
        // An element with two predecessor relations differs from one with
        // a single predecessor.
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let f = voc.pred("F", 2);
        let mut inst = Instance::new();
        let (a, b, c, d) = (
            voc.fresh_null("a"),
            voc.fresh_null("b"),
            voc.fresh_null("c"),
            voc.fresh_null("d"),
        );
        inst.insert(Fact::new(e, vec![a, b]));
        inst.insert(Fact::new(f, vec![c, b]));
        inst.insert(Fact::new(e, vec![a, d]));
        let coloring = natural_coloring(&inst, &mut voc, 1);
        assert_ne!(
            coloring.color_of[&b].lightness,
            coloring.color_of[&d].lightness
        );
    }
}
