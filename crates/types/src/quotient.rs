//! The quotient structures `Mₙ(C)` of Definition 5.
//!
//! Given a partition of a structure's domain (normally the `≡ₙ` classes
//! from [`crate::analyzer::TypeAnalyzer::partition`]), the quotient has
//! one element per class and the minimal relations making the projection
//! `qₙ : C → Mₙ(C)` a homomorphism — every fact of `C` is projected.
//! Named constants are always singleton classes (Remark 1) and keep their
//! identity in the quotient, so `D` survives the projection verbatim.

use bddfc_core::{ConstId, Fact, Instance, Vocabulary};
use bddfc_core::fxhash::FxHashMap;

/// A quotient structure together with its projection map.
#[derive(Clone, Debug)]
pub struct Quotient {
    /// The quotient structure (the paper's `Mₙ(C)`).
    pub instance: Instance,
    /// The classes, in construction order; `classes[i]` maps to
    /// `class_repr[i]`.
    pub classes: Vec<Vec<ConstId>>,
    /// The quotient element standing for each class.
    pub class_repr: Vec<ConstId>,
    elem_class: FxHashMap<ConstId, usize>,
}

impl Quotient {
    /// Builds the quotient of `inst` by `partition`.
    ///
    /// Classes consisting of a single named constant are represented by
    /// that constant itself; all other classes get a fresh null.
    ///
    /// # Panics
    /// Panics if the partition does not cover the instance domain.
    pub fn new(inst: &Instance, partition: Vec<Vec<ConstId>>, voc: &mut Vocabulary) -> Self {
        let mut elem_class = FxHashMap::default();
        let mut class_repr = Vec::with_capacity(partition.len());
        for (i, class) in partition.iter().enumerate() {
            for &e in class {
                elem_class.insert(e, i);
            }
            let repr = if class.len() == 1 && !voc.is_null(class[0]) {
                class[0]
            } else {
                voc.fresh_null("q")
            };
            class_repr.push(repr);
        }
        let mut instance = Instance::new();
        for fact in inst.facts() {
            let args = fact
                .args
                .iter()
                .map(|c| {
                    class_repr[*elem_class
                        .get(c)
                        .unwrap_or_else(|| panic!("partition misses element {c:?}"))]
                })
                .collect();
            instance.insert(Fact::new(fact.pred, args));
        }
        Quotient { instance, classes: partition, class_repr, elem_class }
    }

    /// The projection `qₙ(e)`.
    pub fn project(&self, e: ConstId) -> ConstId {
        self.class_repr[self.elem_class[&e]]
    }

    /// The projection, if `e` belongs to the quotiented structure.
    pub fn try_project(&self, e: ConstId) -> Option<ConstId> {
        self.elem_class.get(&e).map(|&i| self.class_repr[i])
    }

    /// Number of classes (= domain size of the quotient, when every class
    /// is inhabited by a domain element).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The members of the class of `e`.
    pub fn class_of(&self, e: ConstId) -> &[ConstId] {
        &self.classes[self.elem_class[&e]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::TypeAnalyzer;
    use bddfc_core::hom;

    fn chain(voc: &mut Vocabulary, len: usize) -> Instance {
        let e = voc.pred("E", 2);
        let mut inst = Instance::new();
        let elems: Vec<ConstId> = (0..=len).map(|_| voc.fresh_null("a")).collect();
        for i in 0..len {
            inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
        }
        inst
    }

    #[test]
    fn quotient_of_chain_by_types() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 10);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let partition = analyzer.partition();
        let q = Quotient::new(&inst, partition, &mut voc);
        // 2(n-1)+1 = 5 classes for n = 3 (finite-prefix rim included).
        assert_eq!(q.class_count(), 5);
        assert_eq!(q.instance.domain_size(), 5);
        // The quotient of a chain by ≡₃ is a chain through the interior
        // class, which carries the only self-loop.
        let e = voc.find_pred("E").unwrap();
        let dom = inst.sorted_domain();
        let interior = q.project(dom[4]);
        assert!(q
            .instance
            .contains(&Fact::new(e, vec![interior, interior])));
    }

    #[test]
    fn projection_is_homomorphism() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 8);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 2);
        let q = Quotient::new(&inst, analyzer.partition(), &mut voc);
        // Every projected fact is present.
        for fact in inst.facts() {
            let img = Fact::new(fact.pred, fact.args.iter().map(|&c| q.project(c)).collect());
            assert!(q.instance.contains(&img));
        }
    }

    #[test]
    fn constants_survive_projection() {
        let mut voc = Vocabulary::new();
        let e = voc.pred("E", 2);
        let a = voc.constant("a");
        let b = voc.constant("b");
        let mut inst = Instance::new();
        inst.insert(Fact::new(e, vec![a, b]));
        let n1 = voc.fresh_null("x");
        inst.insert(Fact::new(e, vec![b, n1]));
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 2);
        let q = Quotient::new(&inst, analyzer.partition(), &mut voc);
        assert_eq!(q.project(a), a);
        assert_eq!(q.project(b), b);
        assert!(q.instance.contains(&Fact::new(e, vec![a, b])));
    }

    #[test]
    fn quotient_preserves_positive_queries() {
        // Homomorphic images preserve CQ satisfaction (the ⊆ direction of
        // (♠2), which is automatic).
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 8);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let q = Quotient::new(&inst, analyzer.partition(), &mut voc);
        let path3 =
            bddfc_core::parse_query("E(X1,X2), E(X2,X3), E(X3,X4)", &mut voc).unwrap();
        assert!(hom::satisfies_cq(&inst, &path3));
        assert!(hom::satisfies_cq(&q.instance, &path3));
    }

    #[test]
    #[should_panic(expected = "partition misses")]
    fn incomplete_partition_panics() {
        let mut voc = Vocabulary::new();
        let inst = chain(&mut voc, 3);
        let dom = inst.sorted_domain();
        Quotient::new(&inst, vec![vec![dom[0]]], &mut voc);
    }
}
