//! Comparison of two schema-versioned `BENCH_<target>.json` files for
//! the `bench_diff` CLI: a minimal flat-JSON row parser, `(name,
//! threads)` row matching, and integer-only regression arithmetic.
//!
//! The committed bench files are JSON *lines*: one flat object per row,
//! values either unsigned integers or strings. Early rows predate the
//! `schema`/`target` stamping, so the parser treats both keys as
//! optional — a reader that rejected the legacy prefix could never
//! compare against the first committed baselines. When a file contains
//! several rows for the same `(name, threads)` pair (benches append),
//! the **last** occurrence wins: it is the most recent measurement.

use std::collections::BTreeMap;

/// One parsed bench row: the identifying pair plus every numeric metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Bench label, e.g. `chase_throughput/Restricted/30`.
    pub name: String,
    /// Worker-thread count the row was measured with.
    pub threads: u64,
    /// Numeric fields (`min_ns`, `median_ns`, `max_ns`, `schema`, …).
    pub metrics: BTreeMap<String, u64>,
}

/// Parses one flat JSON object line (`{"k":123,"s":"text",...}`) into
/// string and numeric fields. Only the shapes the bench harness writes
/// are accepted; anything else is a descriptive error.
fn parse_flat_object(line: &str) -> Result<(BTreeMap<String, String>, BTreeMap<String, u64>), String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut strings = BTreeMap::new();
    let mut numbers = BTreeMap::new();
    let mut rest = inner;
    while !rest.trim().is_empty() {
        rest = rest.trim_start_matches([',', ' ']);
        let after_quote = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at: {rest}"))?;
        let (key, after_key) = scan_string(after_quote)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected ':' after key {key:?}"))?
            .trim_start();
        if let Some(after_quote) = after_colon.strip_prefix('"') {
            let (value, tail) = scan_string(after_quote)?;
            strings.insert(key, value);
            rest = tail;
        } else {
            let end = after_colon
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(after_colon.len());
            if end == 0 {
                return Err(format!("expected a number or string after key {key:?}"));
            }
            let value: u64 = after_colon[..end]
                .parse()
                .map_err(|e| format!("bad number for key {key:?}: {e}"))?;
            numbers.insert(key, value);
            rest = &after_colon[end..];
        }
    }
    Ok((strings, numbers))
}

/// Scans a JSON string body (opening quote already consumed); returns
/// the unescaped content and the remainder after the closing quote.
fn scan_string(s: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[i + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let hex: String = chars.by_ref().take(4).map(|(_, c)| c).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                Some((_, other)) => out.push(other),
                None => return Err("dangling escape at end of string".to_string()),
            },
            c => out.push(c),
        }
    }
    Err(format!("unterminated string: {s}"))
}

/// Parses a whole `BENCH_<target>.json` file (JSON lines; blank lines
/// skipped). Rows lacking a `name` are an error; rows lacking `threads`
/// default to 1 (the legacy prefix has both, but be permissive once).
pub fn parse_bench_file(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (strings, numbers) =
            parse_flat_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let name = strings
            .get("name")
            .cloned()
            .ok_or_else(|| format!("line {}: row has no \"name\"", lineno + 1))?;
        let threads = numbers.get("threads").copied().unwrap_or(1);
        rows.push(BenchRecord { name, threads, metrics: numbers });
    }
    Ok(rows)
}

/// Deduplicates rows by `(name, threads)`, keeping the last occurrence
/// of each pair in file order.
pub fn latest_by_key(rows: Vec<BenchRecord>) -> BTreeMap<(String, u64), BenchRecord> {
    let mut map = BTreeMap::new();
    for r in rows {
        map.insert((r.name.clone(), r.threads), r);
    }
    map
}

/// One compared `(name, threads)` pair.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Bench label.
    pub name: String,
    /// Worker-thread count.
    pub threads: u64,
    /// Metric value in the old file.
    pub old: u64,
    /// Metric value in the new file.
    pub new: u64,
}

impl DiffRow {
    /// `new / old` as a permille ratio (1000 = unchanged); `None` when
    /// the old value is 0.
    pub fn ratio_permille(&self) -> Option<u64> {
        if self.old == 0 {
            return None;
        }
        Some((u128::from(self.new) * 1000 / u128::from(self.old)) as u64)
    }

    /// Is `new` more than `threshold_pct` percent above `old`?
    /// Integer-only: `new * 100 > old * (100 + threshold_pct)`.
    pub fn regressed(&self, threshold_pct: u64) -> bool {
        u128::from(self.new) * 100 > u128::from(self.old) * u128::from(100 + threshold_pct)
    }
}

/// The full comparison of two parsed bench files on one metric.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Pairs present in both files with the metric on both sides.
    pub compared: Vec<DiffRow>,
    /// Pairs only in the old file (removed benches).
    pub only_old: Vec<(String, u64)>,
    /// Pairs only in the new file (added benches).
    pub only_new: Vec<(String, u64)>,
}

impl DiffReport {
    /// Rows exceeding the regression threshold.
    pub fn regressions(&self, threshold_pct: u64) -> Vec<&DiffRow> {
        self.compared.iter().filter(|r| r.regressed(threshold_pct)).collect()
    }
}

/// Compares `old` and `new` bench files on `metric` (e.g. `median_ns`).
/// Pairs missing the metric on either side are silently incomparable —
/// they appear in neither `compared` nor the only-lists.
pub fn diff_files(old: &str, new: &str, metric: &str) -> Result<DiffReport, String> {
    let old = latest_by_key(parse_bench_file(old)?);
    let new = latest_by_key(parse_bench_file(new)?);
    let mut report = DiffReport::default();
    for (key, o) in &old {
        match new.get(key) {
            None => report.only_old.push(key.clone()),
            Some(n) => {
                if let (Some(&o_val), Some(&n_val)) =
                    (o.metrics.get(metric), n.metrics.get(metric))
                {
                    report.compared.push(DiffRow {
                        name: key.0.clone(),
                        threads: key.1,
                        old: o_val,
                        new: n_val,
                    });
                }
            }
        }
    }
    for key in new.keys() {
        if !old.contains_key(key) {
            report.only_new.push(key.clone());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEGACY: &str = "{\"name\":\"tc/30\",\"min_ns\":10,\"median_ns\":20,\"max_ns\":30,\"threads\":1}\n";
    const STAMPED: &str = "{\"schema\":1,\"target\":\"chase\",\"name\":\"tc/30\",\"min_ns\":9,\"median_ns\":22,\"max_ns\":31,\"threads\":1}\n";

    #[test]
    fn parses_legacy_and_stamped_rows() {
        let rows = parse_bench_file(&format!("{LEGACY}{STAMPED}")).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "tc/30");
        assert!(rows[0].metrics.get("schema").is_none());
        assert_eq!(rows[1].metrics.get("schema"), Some(&1));
        // Last occurrence wins.
        let latest = latest_by_key(rows);
        assert_eq!(latest[&("tc/30".to_string(), 1)].metrics["median_ns"], 22);
    }

    #[test]
    fn string_escapes_round_trip() {
        let rows =
            parse_bench_file("{\"name\":\"a\\\"b\\\\c\\u0041\",\"median_ns\":5,\"threads\":2}")
                .unwrap();
        assert_eq!(rows[0].name, "a\"b\\cA");
        assert_eq!(rows[0].threads, 2);
    }

    #[test]
    fn malformed_rows_are_descriptive_errors() {
        assert!(parse_bench_file("not json").unwrap_err().contains("line 1"));
        assert!(parse_bench_file("{\"median_ns\":5}").unwrap_err().contains("no \"name\""));
    }

    #[test]
    fn diff_detects_regressions_with_integer_threshold() {
        let old = "{\"name\":\"a\",\"median_ns\":100,\"threads\":1}\n\
                   {\"name\":\"b\",\"median_ns\":100,\"threads\":1}\n";
        let new = "{\"name\":\"a\",\"median_ns\":104,\"threads\":1}\n\
                   {\"name\":\"b\",\"median_ns\":130,\"threads\":1}\n\
                   {\"name\":\"c\",\"median_ns\":1,\"threads\":1}\n";
        let report = diff_files(old, new, "median_ns").unwrap();
        assert_eq!(report.compared.len(), 2);
        assert_eq!(report.only_new, vec![("c".to_string(), 1)]);
        let regs = report.regressions(5);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "b");
        assert_eq!(regs[0].ratio_permille(), Some(1300));
        // Exactly at the threshold is not a regression.
        let at = DiffRow { name: "x".into(), threads: 1, old: 100, new: 105 };
        assert!(!at.regressed(5));
        assert!(at.regressed(4));
    }

    #[test]
    fn rows_match_on_name_and_threads() {
        let old = "{\"name\":\"a\",\"median_ns\":100,\"threads\":1}\n";
        let new = "{\"name\":\"a\",\"median_ns\":500,\"threads\":2}\n";
        let report = diff_files(old, new, "median_ns").unwrap();
        assert!(report.compared.is_empty());
        assert_eq!(report.only_old.len(), 1);
        assert_eq!(report.only_new.len(), 1);
    }
}
