//! Profile computation for the `bddfc-prof` CLI: zoo workload registry,
//! per-rule / per-predicate attribution tables, span trees, log2 latency
//! histograms and collapsed-stack (flamegraph) output — all derived from
//! one [`Memory`] sink snapshot, std-only.
//!
//! ## Determinism
//!
//! Everything rendered with `show_gauges == false` (the CLI's `--check`
//! mode) is a pure function of the *deterministic* telemetry payload:
//! event fields, attribution keys, span ids/parents/names. Those are
//! thread-count invariant by the `bddfc_core::obs` contract, so `--check`
//! output is byte-identical at any `BDDFC_THREADS` setting — the
//! profiler's own regression suite pins this. Wall-clock columns, the
//! latency histogram and flamegraph weights are gauges and only appear
//! in the default (timed) mode.

use bddfc_chase::engine::{chase_with, ChaseConfig, ChaseStats};
use bddfc_chase::finder::{find_model_with, FinderConfig};
use bddfc_chase::saturate::saturate_datalog_with;
use bddfc_core::obs::{event_json, span_json, EventSink, LogHistogram, Memory, OwnedEvent, Span};
use bddfc_core::{parse_rule, Theory, Vocabulary};
use bddfc_rewrite::{rewrite_query_with, RewriteConfig};
use bddfc_types::TypeAnalyzer;
use bddfc_zoo::{colored_chain, example1, notorious, path_query, random_graph};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The workloads `bddfc-prof --workload <name>` can run: `(name, summary)`.
pub const WORKLOADS: &[(&str, &str)] = &[
    ("e13", "transitive-closure chase over a seeded random graph (the overhead-guard shape)"),
    ("throughput", "the chase_throughput bench shape: existential + join rule, 100-node graph"),
    ("example1", "Example 1's diverging chase, bounded at 6 rounds"),
    ("saturate", "datalog saturation (symmetry + transitivity) of a seeded random graph"),
    ("rewrite", "UCQ rewriting of a path query under successor + transitivity"),
    ("types", "type-analyzer partition of a colored chain"),
    ("finder", "bounded countermodel search for the notorious Section 5.5 theory"),
];

/// Static description of one rule/predicate namespace produced by a
/// workload run — everything the renderer needs to turn attribution
/// keys back into human-readable labels.
pub struct WorkloadRun {
    /// The workload that ran.
    pub workload: &'static str,
    /// `rule_labels[i]` displays theory rule `i` (the `("rule", i)` key).
    pub rule_labels: Vec<String>,
    /// `(pred id, name)` for every predicate (the `("pred", id)` key).
    pub pred_labels: Vec<(u64, String)>,
    /// The legacy [`ChaseStats`] of the run, when the workload chased —
    /// kept so the profiler can reconcile event totals against it.
    pub chase_stats: Option<ChaseStats>,
}

fn rule_labels(theory: &Theory, voc: &Vocabulary) -> Vec<String> {
    theory.rules.iter().map(|r| r.display(voc).to_string()).collect()
}

fn pred_labels(voc: &Vocabulary) -> Vec<(u64, String)> {
    voc.preds().map(|(p, _)| (p.index() as u64, voc.pred_name(p).to_string())).collect()
}

/// Runs one named workload with every engine entry point wired to
/// `sink`; returns `None` for an unknown name. The workloads are seeded
/// and budgeted, so repeated runs do identical algorithmic work.
pub fn run_workload<S: EventSink>(name: &str, sink: &S) -> Option<WorkloadRun> {
    match name {
        "e13" => {
            // Same shape as tests/overhead.rs and the chase benches.
            let mut voc = Vocabulary::new();
            let theory =
                Theory::new(vec![parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap()]);
            let db = random_graph(&mut voc, 60, 180, 13);
            let config = ChaseConfig { max_rounds: 8, max_facts: 200_000, ..Default::default() };
            let res = chase_with(&db, &theory, &mut voc, config, sink);
            Some(WorkloadRun {
                workload: "e13",
                rule_labels: rule_labels(&theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: Some(res.stats),
            })
        }
        "throughput" => {
            // Mirrors `chase_throughput/Restricted/100` in benches/chase_bench.rs.
            let mut voc = Vocabulary::new();
            let theory = Theory::new(vec![
                parse_rule("E(X,Y) -> exists Z . E(Y,Z)", &mut voc).unwrap(),
                parse_rule("E(X,Y), E(Y,Z) -> R(X,Z)", &mut voc).unwrap(),
            ]);
            let db = random_graph(&mut voc, 100, 200, 42);
            let config =
                ChaseConfig { max_rounds: 3, max_facts: 2_000_000, ..Default::default() };
            let res = chase_with(&db, &theory, &mut voc, config, sink);
            Some(WorkloadRun {
                workload: "throughput",
                rule_labels: rule_labels(&theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: Some(res.stats),
            })
        }
        "example1" => {
            let prog = example1();
            let mut voc = prog.voc.clone();
            let res = chase_with(
                &prog.instance,
                &prog.theory,
                &mut voc,
                ChaseConfig::rounds(6),
                sink,
            );
            Some(WorkloadRun {
                workload: "example1",
                rule_labels: rule_labels(&prog.theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: Some(res.stats),
            })
        }
        "saturate" => {
            let mut voc = Vocabulary::new();
            let theory = Theory::new(vec![
                parse_rule("E(X,Y) -> E(Y,X)", &mut voc).unwrap(),
                parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
            ]);
            let db = random_graph(&mut voc, 40, 120, 7);
            let _ = saturate_datalog_with(&db, &theory, sink);
            Some(WorkloadRun {
                workload: "saturate",
                rule_labels: rule_labels(&theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: None,
            })
        }
        "rewrite" => {
            let mut voc = Vocabulary::new();
            let theory = Theory::new(vec![
                parse_rule("E(X,Y) -> exists Z . E(Y,Z)", &mut voc).unwrap(),
                parse_rule("E(X,Y), E(Y,Z) -> E(X,Z)", &mut voc).unwrap(),
            ]);
            let query = path_query(&mut voc, 4);
            let config =
                RewriteConfig { max_disjuncts: 200, max_steps: 2_000, max_piece: 3 };
            let _ = rewrite_query_with(&query, &theory, &mut voc, config, sink);
            Some(WorkloadRun {
                workload: "rewrite",
                rule_labels: rule_labels(&theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: None,
            })
        }
        "types" => {
            let mut voc = Vocabulary::new();
            let (inst, _) = colored_chain(&mut voc, 60, 3);
            let analyzer = TypeAnalyzer::new(&inst, &mut voc, 2);
            let _ = analyzer.partition_with(sink);
            Some(WorkloadRun {
                workload: "types",
                rule_labels: Vec::new(),
                pred_labels: pred_labels(&voc),
                chase_stats: None,
            })
        }
        "finder" => {
            let prog = notorious();
            let mut voc = prog.voc.clone();
            let forbidden = prog.queries.first().cloned();
            let config = FinderConfig { max_size: 3, max_nodes: 50_000 };
            let _ = find_model_with(
                &prog.instance,
                &prog.theory,
                &mut voc,
                forbidden.as_ref(),
                config,
                sink,
            );
            Some(WorkloadRun {
                workload: "finder",
                rule_labels: rule_labels(&prog.theory, &voc),
                pred_labels: pred_labels(&voc),
                chase_stats: None,
            })
        }
        _ => None,
    }
}

/// Formats a nanosecond count with an SI unit, integer math only.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:02}us", ns / 1_000, (ns % 1_000) / 10)
    } else if ns < 1_000_000_000 {
        format!("{}.{:02}ms", ns / 1_000_000, (ns % 1_000_000) / 10_000)
    } else {
        format!("{}.{:02}s", ns / 1_000_000_000, (ns % 1_000_000_000) / 10_000_000)
    }
}

/// `num / denom` as a percentage with one decimal, integer math only.
fn fmt_pct(num: u64, denom: u64) -> String {
    if denom == 0 {
        return "-".to_string();
    }
    let permille = (u128::from(num) * 1000 / u128::from(denom)) as u64;
    format!("{}.{}%", permille / 10, permille % 10)
}

/// One aggregated attribution row: all events sharing a key within one
/// `(engine, event)` kind.
struct KeyRow {
    key: u64,
    events: u64,
    /// Field sums aligned with the owning table's `field_names`.
    fields: Vec<u64>,
    ns: u64,
}

/// One per-key attribution table, e.g. all `chase`/`trigger` events
/// grouped by their `("rule", i)` key.
struct KeyTable {
    engine: &'static str,
    event: &'static str,
    kind: &'static str,
    field_names: Vec<&'static str>,
    rows: Vec<KeyRow>,
}

/// A profiler report computed from one [`Memory`] snapshot. Rendering is
/// split per artifact so the CLI and the tests can pick what they need.
pub struct Report {
    events: Vec<OwnedEvent>,
    spans: Vec<Span>,
    /// Label context and reconciliation baseline from the workload run.
    pub run: WorkloadRun,
    /// When false (`--check`), every gauge-derived number — wall times,
    /// percentages, histogram, flame weights — is suppressed so the
    /// output is thread-count deterministic.
    pub show_gauges: bool,
}

impl Report {
    /// Snapshots `sink` into a report.
    pub fn new(sink: &Memory, run: WorkloadRun, show_gauges: bool) -> Self {
        Report { events: sink.events(), spans: sink.spans(), run, show_gauges }
    }

    fn key_label(&self, kind: &str, v: u64) -> String {
        match kind {
            "rule" => match self.run.rule_labels.get(v as usize) {
                Some(l) => format!("[{v}] {l}"),
                None => format!("rule[{v}]"),
            },
            "pred" => match self.run.pred_labels.iter().find(|(id, _)| *id == v) {
                Some((_, n)) => n.clone(),
                None => format!("pred[{v}]"),
            },
            _ => format!("{kind}[{v}]"),
        }
    }

    /// Builds the aggregated per-key tables, sorted by `(engine, event)`
    /// and by key within each table.
    fn key_tables(&self) -> Vec<KeyTable> {
        struct Acc {
            kind: &'static str,
            rows: BTreeMap<u64, (u64, BTreeMap<&'static str, u64>, u64)>,
        }
        let mut tables: BTreeMap<(&'static str, &'static str), Acc> = BTreeMap::new();
        for e in &self.events {
            let Some((kind, key)) = e.key else { continue };
            let acc = tables
                .entry((e.engine, e.name))
                .or_insert_with(|| Acc { kind, rows: BTreeMap::new() });
            let row = acc.rows.entry(key).or_insert_with(|| (0, BTreeMap::new(), 0));
            row.0 += 1;
            for &(f, v) in &e.fields {
                *row.1.entry(f).or_insert(0) += v;
            }
            row.2 += e.gauge("wall_ns").unwrap_or(0);
        }
        tables
            .into_iter()
            .map(|((engine, event), acc)| {
                let field_names: Vec<&'static str> = acc
                    .rows
                    .values()
                    .flat_map(|(_, fs, _)| fs.keys().copied())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let rows = acc
                    .rows
                    .into_iter()
                    .map(|(key, (events, fs, ns))| KeyRow {
                        key,
                        events,
                        fields: field_names
                            .iter()
                            .map(|f| fs.get(f).copied().unwrap_or(0))
                            .collect(),
                        ns,
                    })
                    .collect();
                KeyTable { engine, event, kind: acc.kind, field_names, rows }
            })
            .collect()
    }

    /// Total wall time of an engine's root span(s) — the denominator for
    /// the "% of run" column.
    fn engine_root_ns(&self, engine: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent == 0 && s.engine == engine)
            .map(Span::wall_ns)
            .sum()
    }

    /// Renders every attribution table (per rule, per predicate, per
    /// piece size, …) as aligned text.
    pub fn render_tables(&self) -> String {
        let tables = self.key_tables();
        if tables.is_empty() {
            return "no attributed events recorded\n".to_string();
        }
        let mut out = String::new();
        for t in &tables {
            let denom = self.engine_root_ns(t.engine);
            // Events without a wall_ns gauge (e.g. hom/scan) would only
            // render a column of zeros — omit it.
            let timed = self.show_gauges && t.rows.iter().any(|r| r.ns > 0);
            let _ = writeln!(out, "profile — {}/{} by {}", t.engine, t.event, t.kind);
            // Column headers: label, events, each field, then gauges.
            let mut header: Vec<String> =
                vec![t.kind.to_string(), "events".to_string()];
            header.extend(t.field_names.iter().map(|f| f.to_string()));
            if timed {
                header.push("total_ns".to_string());
                header.push("% of run".to_string());
            }
            let mut grid: Vec<Vec<String>> = vec![header];
            for r in &t.rows {
                let mut row = vec![self.key_label(t.kind, r.key), r.events.to_string()];
                row.extend(r.fields.iter().map(|v| v.to_string()));
                if timed {
                    row.push(fmt_ns(r.ns));
                    row.push(fmt_pct(r.ns, denom));
                }
                grid.push(row);
            }
            let cols = grid[0].len();
            let widths: Vec<usize> = (0..cols)
                .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
                .collect();
            for row in &grid {
                let mut line = String::new();
                for (c, cell) in row.iter().enumerate() {
                    if c == 0 {
                        // Left-align the label column.
                        let _ = write!(line, "  {cell:<w$}", w = widths[0]);
                    } else {
                        let _ = write!(line, "  {cell:>w$}", w = widths[c]);
                    }
                }
                let _ = writeln!(out, "{}", line.trim_end());
            }
            out.push('\n');
        }
        out
    }

    /// Renders the span hierarchy, indented by parenthood, in id order
    /// within each level.
    pub fn render_span_tree(&self) -> String {
        if self.spans.is_empty() {
            return "no spans recorded\n".to_string();
        }
        let ids: BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut roots: Vec<&Span> = Vec::new();
        for s in &self.spans {
            if s.parent != 0 && ids.contains(&s.parent) {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        let mut out = String::from("span tree\n");
        fn render(
            report: &Report,
            out: &mut String,
            children: &BTreeMap<u64, Vec<&Span>>,
            s: &Span,
            depth: usize,
        ) {
            let key = s.key.map(|(k, v)| format!("[{k}={v}]")).unwrap_or_default();
            let _ = write!(
                out,
                "{:indent$}{}/{}{} #{}",
                "",
                s.engine,
                s.name,
                key,
                s.id,
                indent = 2 + depth * 2
            );
            if report.show_gauges {
                if s.is_closed() {
                    let _ = write!(out, "  {}", fmt_ns(s.wall_ns()));
                } else {
                    let _ = write!(out, "  (open)");
                }
            }
            out.push('\n');
            for c in children.get(&s.id).into_iter().flatten() {
                render(report, out, children, c, depth + 1);
            }
        }
        for r in roots {
            render(self, &mut out, &children, r, 0);
        }
        out
    }

    /// A log2 histogram of the `wall_ns` gauge of every *attributed*
    /// (keyed) event — the per-rule / per-piece work quanta.
    pub fn histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for e in &self.events {
            if e.key.is_some() {
                if let Some(ns) = e.gauge("wall_ns") {
                    h.record(ns);
                }
            }
        }
        // A workload with no timed attribution still gets a latency
        // distribution: fall back to closed-span durations.
        if h.count() == 0 {
            for s in self.spans.iter().filter(|s| s.is_closed()) {
                h.record(s.wall_ns());
            }
        }
        h
    }

    /// Renders [`Report::histogram`] as an ASCII bar chart over the
    /// non-empty log2 buckets.
    pub fn render_histogram(&self) -> String {
        let h = self.histogram();
        let mut out = String::from("latency histogram (attributed work, log2 ns buckets)\n");
        if h.count() == 0 {
            out.push_str("  (empty)\n");
            return out;
        }
        let max = h.max_count();
        for (i, c) in h.nonzero() {
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            let bar = "#".repeat(((c * 30).div_ceil(max)) as usize);
            let _ = writeln!(out, "  [{:>12}, {:>12}) ns  {c:>6}  {bar}", lo, hi);
        }
        out
    }

    /// Frame name for an attributed event in a collapsed stack: no
    /// spaces or semicolons, e.g. `rule[3]` or a predicate name.
    fn event_frame(&self, kind: &str, v: u64) -> String {
        let raw = match kind {
            "pred" => match self.run.pred_labels.iter().find(|(id, _)| *id == v) {
                Some((_, n)) => n.clone(),
                None => format!("pred[{v}]"),
            },
            _ => format!("{kind}[{v}]"),
        };
        raw.replace([' ', ';'], "_")
    }

    /// Collapsed-stack (Brendan Gregg "folded") output: one
    /// `frame;frame;frame weight` line per stack, weights in
    /// nanoseconds of *self* time — span durations minus child spans
    /// minus attributed event time, clamped at zero. Feed the result to
    /// any flamegraph renderer.
    pub fn render_folded(&self) -> String {
        let by_id: BTreeMap<u64, &Span> = self.spans.iter().map(|s| (s.id, s)).collect();
        // Stack path of a span: root-to-span frame list.
        let path = |s: &Span| -> String {
            let mut frames = Vec::new();
            let mut cur = Some(s);
            while let Some(s) = cur {
                let key = s.key.map(|(_, v)| format!("[{v}]")).unwrap_or_default();
                frames.push(format!("{}/{}{}", s.engine, s.name, key));
                cur = by_id.get(&s.parent).copied();
            }
            frames.reverse();
            frames.join(";")
        };
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if s.parent != 0 {
                *child_ns.entry(s.parent).or_insert(0) += s.wall_ns();
            }
        }
        // Attributed event time charged under each span.
        let mut attr_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.events {
            let Some((kind, key)) = e.key else { continue };
            let ns = e.gauge("wall_ns").unwrap_or(0);
            if ns == 0 {
                continue;
            }
            let frame = self.event_frame(kind, key);
            let stack = match by_id.get(&e.parent) {
                Some(parent) => format!("{};{frame}", path(parent)),
                None => frame,
            };
            *stacks.entry(stack).or_insert(0) += ns;
            *attr_ns.entry(e.parent).or_insert(0) += ns;
        }
        for s in &self.spans {
            let children = child_ns.get(&s.id).copied().unwrap_or(0);
            let attributed = attr_ns.get(&s.id).copied().unwrap_or(0);
            let this = s.wall_ns().saturating_sub(children).saturating_sub(attributed);
            if this > 0 {
                *stacks.entry(path(s)).or_insert(0) += this;
            }
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }

    /// Re-serializes the recorded telemetry as JSON lines (events in
    /// arrival order, then spans in id order) — the `--trace` artifact.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(out, "{}", event_json(&e.as_event()));
        }
        for s in &self.spans {
            let _ = writeln!(out, "{}", span_json(s));
        }
        out
    }

    /// Cross-checks the recorded telemetry against its own invariants
    /// and (when the workload chased) against the legacy [`ChaseStats`]
    /// counters. Returns one deterministic line per passed check; the
    /// first violated invariant becomes the `Err`.
    pub fn reconcile(&self) -> Result<Vec<String>, String> {
        let mut lines = Vec::new();
        // 1. Span log invariants: sequential ids, all closed.
        for (i, s) in self.spans.iter().enumerate() {
            if s.id != i as u64 + 1 {
                return Err(format!(
                    "span ids not sequential: position {i} holds id {}",
                    s.id
                ));
            }
            if !s.is_closed() {
                return Err(format!("span #{} ({}/{}) was never closed", s.id, s.engine, s.name));
            }
        }
        lines.push(format!("spans: {} recorded, ids sequential, all closed", self.spans.len()));
        // 2. Every event's parent is a recorded span (or 0).
        let ids: BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        for e in &self.events {
            if e.parent != 0 && !ids.contains(&e.parent) {
                return Err(format!(
                    "event {}/{} references unknown parent span {}",
                    e.engine, e.name, e.parent
                ));
            }
        }
        lines.push(format!("events: {} recorded, all parent spans resolve", self.events.len()));
        // 3. Chase attribution reconciles with the legacy counters: the
        //    per-rule trigger events and the per-round summaries must
        //    both sum to ChaseStats::total_body_matches.
        if let Some(stats) = &self.run.chase_stats {
            let sum = |name: &str| -> u64 {
                self.events
                    .iter()
                    .filter(|e| e.engine == "chase" && e.name == name)
                    .filter_map(|e| e.field("body_matches"))
                    .sum()
            };
            let per_rule = sum("trigger");
            let per_round = sum("round");
            let legacy = stats.total_body_matches();
            if per_rule != legacy || per_round != legacy {
                return Err(format!(
                    "body_matches mismatch: per-rule events {per_rule}, \
                     per-round events {per_round}, ChaseStats {legacy}"
                ));
            }
            lines.push(format!(
                "chase: body_matches {legacy} reconciles (per-rule == per-round == ChaseStats)"
            ));
            let rounds = self
                .events
                .iter()
                .filter(|e| e.engine == "chase" && e.name == "round")
                .count();
            if rounds != stats.body_matches_per_round.len() {
                return Err(format!(
                    "round event count {rounds} != ChaseStats rounds {}",
                    stats.body_matches_per_round.len()
                ));
            }
            lines.push(format!("chase: {rounds} round events match ChaseStats"));
        }
        Ok(lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(workload: &str) -> Report {
        let sink = Memory::new(1 << 16);
        let run = run_workload(workload, &sink).expect("known workload");
        Report::new(&sink, run, true)
    }

    #[test]
    fn every_registered_workload_runs_and_reconciles() {
        for &(name, _) in WORKLOADS {
            let r = report_for(name);
            let lines = r.reconcile().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!lines.is_empty(), "{name}");
            assert!(!r.render_span_tree().is_empty());
        }
    }

    #[test]
    fn unknown_workload_is_rejected() {
        assert!(run_workload("nope", &Memory::new(8)).is_none());
    }

    #[test]
    fn e13_tables_attribute_the_transitivity_rule() {
        let r = report_for("e13");
        let tables = r.render_tables();
        assert!(tables.contains("chase/trigger by rule"), "{tables}");
        assert!(tables.contains("E(X,Y), E(Y,Z) -> E(X,Z)"), "{tables}");
        // Batch mode (the default) attributes joins; tuple mode scans.
        match bddfc_core::join::join_mode() {
            bddfc_core::join::JoinMode::Batch => {
                assert!(tables.contains("join/build by pred"), "{tables}");
                assert!(tables.contains("join/probe by pred"), "{tables}");
            }
            bddfc_core::join::JoinMode::Tuple => {
                assert!(tables.contains("hom/scan by pred"), "{tables}");
            }
        }
        // The folded output has the run/round span prefix.
        let folded = r.render_folded();
        assert!(folded.lines().all(|l| l.rsplit_once(' ').is_some()), "{folded}");
        assert!(folded.contains("chase/run;chase/round[1]"), "{folded}");
    }

    #[test]
    fn check_mode_output_has_no_gauge_columns() {
        let sink = Memory::new(1 << 16);
        let run = run_workload("e13", &sink).unwrap();
        let r = Report::new(&sink, run, false);
        let tables = r.render_tables();
        assert!(!tables.contains("total_ns"), "{tables}");
        assert!(!tables.contains('%'), "{tables}");
        let tree = r.render_span_tree();
        assert!(tree.contains("chase/run #1"), "{tree}");
        assert!(!tree.contains("ms"), "{tree}");
    }

    #[test]
    fn trace_round_trips_the_memory_log() {
        let r = report_for("example1");
        let trace = r.render_trace();
        assert!(trace.lines().all(|l| l.starts_with("{\"schema\":1,") && l.ends_with('}')));
        let span_lines = trace.lines().filter(|l| l.contains("\"span\":")).count();
        assert_eq!(span_lines, r.spans.len());
    }

    #[test]
    fn ns_formatting_is_integer_stable() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_234), "1.23us");
        assert_eq!(fmt_ns(12_345_678), "12.34ms");
        assert_eq!(fmt_ns(1_234_567_890), "1.23s");
        assert_eq!(fmt_pct(1, 3), "33.3%");
        assert_eq!(fmt_pct(5, 0), "-");
    }
}
