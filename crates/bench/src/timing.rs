//! Minimal dependency-free micro-benchmark helper for the `benches/`
//! binaries (`harness = false`), replacing the external Criterion
//! harness so the workspace builds offline.
//!
//! Methodology: a warmup pass, then `iters` timed runs; the row reports
//! min / median / max wall-clock per run. Medians are robust enough for
//! the coarse "did this get slower by 10×" regressions these benches
//! guard against; rigorous statistics are out of scope by design.
//!
//! ## Machine-readable output
//!
//! Passing `--json` to a bench binary (or setting `BDDFC_BENCH_JSON=1`)
//! makes every [`bench`] row *also* append one JSON line to
//! `BENCH_<target>.json` in the working directory — `schema`, `target`,
//! `name`, `min_ns`, `median_ns`, `max_ns` and the worker-thread count —
//! so the perf trajectory stays comparable across commits. Each binary
//! opts in by calling [`init_json`] with its target name at the top of
//! `main`. An I/O failure while appending is a panic, not a warning:
//! silently dropped rows are indistinguishable from a bench that never
//! ran.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema version stamped into every JSON row; bump when a field is
/// added, removed or reinterpreted. Matches
/// `bddfc_core::obs::SCHEMA_VERSION` so bench rows and engine telemetry
/// can be joined by a single reader.
pub const SCHEMA_VERSION: u32 = bddfc_core::obs::SCHEMA_VERSION;

/// Destination `(path, target)` of JSON rows, set once by [`init_json`].
static JSON_SINK: Mutex<Option<(String, String)>> = Mutex::new(None);

/// Enables the JSON sink for this process when `--json` appears among the
/// process arguments (unknown cargo-injected flags like `--bench` are
/// ignored) or `BDDFC_BENCH_JSON` is set. Rows append to
/// `BENCH_<target>.json`.
pub fn init_json(target: &str) {
    let wanted = std::env::args().any(|a| a == "--json")
        || std::env::var_os("BDDFC_BENCH_JSON").is_some();
    if wanted {
        *JSON_SINK.lock().unwrap() = Some((format!("BENCH_{target}.json"), target.to_string()));
    }
}

use bddfc_core::obs::json_escape as escape_json;

/// Formats one schema-versioned JSON row for `row`, as appended to
/// `BENCH_<target>.json`. Separated from the I/O so the exact wire
/// format is unit-testable.
pub fn format_row(target: &str, row: &BenchRow, threads: usize) -> String {
    format!(
        "{{\"schema\":{},\"target\":\"{}\",\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"max_ns\":{},\"threads\":{}}}\n",
        SCHEMA_VERSION,
        escape_json(target),
        escape_json(&row.name),
        row.times[0].as_nanos(),
        row.median().as_nanos(),
        row.times[row.times.len() - 1].as_nanos(),
        threads,
    )
}

/// Appends one row to the JSON sink, if enabled. Panics on I/O errors:
/// a bench invoked with `--json` that cannot persist its rows must not
/// pretend it succeeded.
fn emit_json(row: &BenchRow) {
    // Clone the destination out of the lock before doing I/O so a panic
    // below cannot poison the sink for concurrent bench threads.
    let sink = JSON_SINK.lock().unwrap().clone();
    let Some((path, target)) = sink else { return };
    let line = format_row(&target, row, bddfc_core::par::num_threads());
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
        .unwrap_or_else(|e| panic!("could not append bench row to {path}: {e}"));
}

/// One benchmark row: timings plus the (blackboxed) result of the last run.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Label, e.g. `chase_throughput/Restricted/30`.
    pub name: String,
    /// Per-iteration wall-clock times, sorted ascending.
    pub times: Vec<Duration>,
}

impl BenchRow {
    /// Median per-iteration time.
    pub fn median(&self) -> Duration {
        self.times[self.times.len() / 2]
    }
}

/// Runs `f` once for warmup and `iters` timed times; prints and returns
/// the row. The closure's return value is written to a volatile sink so
/// the optimizer cannot delete the computation.
pub fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> BenchRow {
    black_box(f()); // warmup
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        times.push(t0.elapsed());
    }
    times.sort_unstable();
    let row = BenchRow { name: name.to_string(), times };
    emit_json(&row);
    println!(
        "{:<44} min {:>10.3?}  median {:>10.3?}  max {:>10.3?}  ({} iters)",
        row.name,
        row.times[0],
        row.median(),
        row.times[row.times.len() - 1],
        iters
    );
    row
}

/// An identity function the optimizer must assume reads and writes its
/// argument (`std::hint::black_box`, re-exported under the historical
/// local name; the workspace MSRV of 1.75 has it stabilized).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut n = 0u64;
        let row = bench("smoke", 5, || {
            n += 1;
            n * 2
        });
        assert_eq!(row.times.len(), 5);
        assert_eq!(n, 6); // warmup + 5 timed iterations
        assert!(row.median() >= row.times[0]);
    }

    #[test]
    fn json_rows_are_schema_versioned() {
        let row = BenchRow {
            name: "chase_throughput/Restricted/30".to_string(),
            times: vec![
                Duration::from_nanos(10),
                Duration::from_nanos(20),
                Duration::from_nanos(30),
            ],
        };
        let line = format_row("chase", &row, 7);
        assert!(line.starts_with("{\"schema\":1,\"target\":\"chase\","), "{line}");
        assert!(line.contains("\"name\":\"chase_throughput/Restricted/30\""));
        assert!(line.contains("\"min_ns\":10,\"median_ns\":20,\"max_ns\":30,\"threads\":7"));
        assert!(line.ends_with("}\n"));
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
        assert_eq!(black_box(String::from("x")), "x");
    }
}
