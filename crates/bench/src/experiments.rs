//! The experiment suite: one function per experiment id of DESIGN.md,
//! each printing the paper-claim vs. the measured value.

use bddfc_chase::{
    chase, chase_size_comparison, countermodel, ChaseConfig, ChaseVariant, SearchOutcome,
};
use bddfc_core::{hom, parse_into, parse_query, Fact, Instance, Vocabulary};
use bddfc_finite::{finite_countermodel, FcConfig, FcOutcome};
use bddfc_rewrite::{kappa, rewrite_query, RewriteConfig};
use bddfc_types::{find_conservative_n, natural_coloring, Quotient, TypeAnalyzer};
use bddfc_core::fxhash::FxHashSet;
use std::time::Instant;

/// An experiment: id, paper source, and the row generator.
pub struct Experiment {
    /// The id used in DESIGN.md / EXPERIMENTS.md (e.g. "e3").
    pub id: &'static str,
    /// Where in the paper the claim comes from.
    pub source: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Produces the table rows.
    pub run: fn() -> Vec<String>,
}

/// Every experiment, in id order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment { id: "e1", source: "Example 1", title: "triangle image of the chain chase diverges", run: e1 },
        Experiment { id: "e2", source: "Example 2", title: "ptp2 vs ptp3 of chain and triangle", run: e2 },
        Experiment { id: "e3", source: "Example 3", title: "uncolored chain quotient: class counts and the self-loop", run: e3 },
        Experiment { id: "e4", source: "Example 4", title: "colored chain: conservative n per m", run: e4 },
        Experiment { id: "e5", source: "Example 6/Remark 3", title: "total order is not conservative", run: e5 },
        Experiment { id: "e6", source: "Examples 7/8, Lemma 5", title: "quotient saturation derives flesh without new elements", run: e6 },
        Experiment { id: "e7", source: "Example 9, Lemmas 8/9", title: "tree quotient: undirected cycles, no short directed ones", run: e7 },
        Experiment { id: "e8", source: "Theorem 2", title: "FC pipeline: certified countermodel sizes", run: e8 },
        Experiment { id: "e9", source: "Section 5.5", title: "non-FC theories: bounded model search exhausts", run: e9 },
        Experiment { id: "e10", source: "Section 5.6", title: "guarded->binary translation size factors", run: e10 },
        Experiment { id: "e11", source: "Sections 5.2/5.3", title: "ternary & multi-head reduction size factors", run: e11 },
        Experiment { id: "e12", source: "Definition 2", title: "rewriting size/time vs query length", run: e12 },
        Experiment { id: "e13", source: "systems", title: "chase throughput and restricted-vs-oblivious sizes", run: e13 },
        Experiment { id: "e14", source: "systems", title: "type partition cost vs structure size and n", run: e14 },
        Experiment { id: "e15", source: "Lemma 13", title: "bounded-degree structures are conservative", run: e15 },
        Experiment { id: "e16", source: "Section 5.5, Conjecture 2", title: "the order-definability probe", run: e16 },
        Experiment { id: "e17", source: "Section 4", title: "query shapes, the normalization measure, derivation depth", run: e17 },
    ]
}

/// Runs one experiment by id; returns `None` for unknown ids.
pub fn run_experiment(id: &str) -> Option<Vec<String>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

fn e1() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<8} {:>8} {:>10} {:>10}",
        "input", "rounds", "E-atoms", "U-atoms"
    )];
    let prog = bddfc_zoo::example1();
    for rounds in [4u32, 8, 12] {
        let mut voc = prog.voc.clone();
        let res = chase(&prog.instance, &prog.theory, &mut voc, ChaseConfig::rounds(rounds));
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        rows.push(format!(
            "{:<8} {:>8} {:>10} {:>10}",
            "chain",
            rounds,
            res.instance.facts_with_pred(e).len(),
            res.instance.facts_with_pred(u).len()
        ));
    }
    for rounds in [4u32, 8, 12] {
        let mut voc = prog.voc.clone();
        let (_, mp, _) = parse_into("E(a,b). E(b,c). E(c,a).", &mut voc).unwrap();
        let res = chase(&mp, &prog.theory, &mut voc, ChaseConfig::rounds(rounds));
        let e = voc.find_pred("E").unwrap();
        let u = voc.find_pred("U").unwrap();
        rows.push(format!(
            "{:<8} {:>8} {:>10} {:>10}",
            "M'",
            rounds,
            res.instance.facts_with_pred(e).len(),
            res.instance.facts_with_pred(u).len()
        ));
    }
    rows.push("paper: chain chase has no U-atom; M' grows 3 U-chains forever".into());
    rows
}

fn e2() -> Vec<String> {
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let a = voc.constant("a");
    let mut chain_inst = Instance::new();
    let mut prev = a;
    for _ in 0..8 {
        let next = voc.fresh_null("c");
        chain_inst.insert(Fact::new(e, vec![prev, next]));
        prev = next;
    }
    let mut tri = Instance::new();
    let b = voc.fresh_null("b");
    let c = voc.fresh_null("c");
    tri.insert(Fact::new(e, vec![a, b]));
    tri.insert(Fact::new(e, vec![b, c]));
    tri.insert(Fact::new(e, vec![c, a]));
    let mut rows = vec![format!("{:<36} {:>8}", "inclusion", "holds")];
    for (label, n, reversed) in [
        ("ptp2(chain,a) <= ptp2(tri,a)", 2usize, false),
        ("ptp3(chain,a) <= ptp3(tri,a)", 3, false),
        ("ptp3(tri,a) <= ptp3(chain,a)", 3, true),
    ] {
        let holds = if reversed {
            TypeAnalyzer::new(&tri, &mut voc, n).ptp_included_in(a, &chain_inst, a)
        } else {
            TypeAnalyzer::new(&chain_inst, &mut voc, n).ptp_included_in(a, &tri, a)
        };
        rows.push(format!("{label:<36} {holds:>8}"));
    }
    rows.push("paper: the 3-variable cycle query separates the types at n = 3".into());
    rows
}

fn e3() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<4} {:>10} {:>12} {:>10}",
        "n", "chain len", "classes", "self-loop"
    )];
    for n in 2..=4usize {
        let mut voc = Vocabulary::new();
        let (inst, elems) = bddfc_zoo::anonymous_chain(&mut voc, 16);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, n);
        let partition = analyzer.partition();
        let classes = partition.len();
        let q = Quotient::new(&inst, partition, &mut voc);
        let e = voc.find_pred("E").unwrap();
        let interior = q.project(elems[8]);
        let has_loop = q.instance.contains(&Fact::new(e, vec![interior, interior]));
        rows.push(format!("{n:<4} {:>10} {classes:>12} {has_loop:>10}", 17));
    }
    rows.push(
        "paper (Def. 3 literal, finite prefix): 2(n-1)+1 classes, interior self-loop; \
         the infinite chain gives n classes — see EXPERIMENTS.md"
            .into(),
    );
    rows
}

fn e4() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<4} {:>6} {:>10} {:>10} {:>8}",
        "m", "n", "classes", "colors", "time ms"
    )];
    for m in 1..=3usize {
        let mut voc = Vocabulary::new();
        let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, 24);
        let t0 = Instant::now();
        match find_conservative_n(&inst, &mut voc, m, m.max(2)..=(m + 4)) {
            Some((n, check)) => rows.push(format!(
                "{m:<4} {n:>6} {:>10} {:>10} {:>8}",
                check.quotient.class_count(),
                check.coloring.color_count(),
                t0.elapsed().as_millis()
            )),
            None => rows.push(format!("{m:<4} {:>6}", "none")),
        }
    }
    rows.push("paper: some n works for every m (Main Lemma); quotient shrinks the chain".into());
    rows
}

fn e5() -> Vec<String> {
    // Example 6's claim is about *identification*: any quotient of a
    // strict total order that merges elements creates Lt(x,x), which no
    // element's ptp₁ contains. The natural coloring keeps all elements
    // apart (each has a different predecessor count => lightness), so it
    // is vacuously conservative; the trivial single-color coloring merges
    // and must fail.
    let mut rows = vec![format!(
        "{:<10} {:<10} {:>6} {:>14} {:>10} {:>8}",
        "order size", "coloring", "n", "conservative", "classes", "merges"
    )];
    for size in [6usize, 8] {
        let mut voc = Vocabulary::new();
        let lt = voc.pred("Lt", 2);
        let elems: Vec<_> = (0..size).map(|_| voc.fresh_null("o")).collect();
        let mut inst = Instance::new();
        for i in 0..size {
            for j in (i + 1)..size {
                inst.insert(Fact::new(lt, vec![elems[i], elems[j]]));
            }
        }
        let sigma: FxHashSet<_> = inst.used_preds().collect();
        let natural = natural_coloring(&inst, &mut voc, 1);
        let trivial = {
            let color = bddfc_types::Color { hue: 0, lightness: 0 };
            let mut color_of = bddfc_core::fxhash::FxHashMap::default();
            for e in inst.domain() {
                color_of.insert(e, color);
            }
            let mut pred_of = bddfc_core::fxhash::FxHashMap::default();
            pred_of.insert(color, voc.pred("K_triv", 1));
            bddfc_types::Coloring { color_of, pred_of }
        };
        for (name, coloring) in [("natural", &natural), ("trivial", &trivial)] {
            let n = 2;
            let check =
                bddfc_types::check_conservative(&inst, coloring, &mut voc, n, 1, &sigma);
            rows.push(format!(
                "{size:<10} {name:<10} {n:>6} {:>14} {:>10} {:>8}",
                check.is_conservative(),
                check.quotient.class_count(),
                check.quotient.class_count() < size
            ));
        }
    }
    rows.push("paper (Ex. 6): every coloring that merges anything fails at size 1".into());
    rows
}

fn e6() -> Vec<String> {
    let prog = bddfc_zoo::example7();
    let mut voc = prog.voc.clone();
    let query = parse_query("R(X,Y), E(X,Y)", &mut voc).unwrap();
    let out = finite_countermodel(&prog.instance, &prog.theory, &query, &mut voc, FcConfig::default());
    let mut rows = vec![format!(
        "{:<10} {:>8} {:>8} {:>10} {:>14} {:>12}",
        "theory", "|M|", "n", "kappa", "off-diag R", "lemma5"
    )];
    match out {
        FcOutcome::Countermodel(cert) => {
            let r = voc.find_pred("R").unwrap();
            let off = cert
                .model
                .facts_with_pred(r)
                .iter()
                .filter(|&&i| {
                    let f = cert.model.fact(i);
                    f.args[0] != f.args[1]
                })
                .count();
            rows.push(format!(
                "{:<10} {:>8} {:>8} {:>10} {:>14} {:>12}",
                "example7", cert.model_size, cert.n, cert.kappa, off, cert.lemma5_no_new_elements
            ));
        }
        other => rows.push(format!("example7: unexpected outcome {other:?}")),
    }
    rows.push("paper (Ex. 8): saturation derives R-atoms not projected from flesh;".into());
    rows.push("paper (Lemma 5): the final chase creates no new elements".into());
    rows
}

fn e7() -> Vec<String> {
    let prog = bddfc_zoo::example9();
    let mut voc = prog.voc.clone();
    let query = parse_query("F(X,X)", &mut voc).unwrap();
    let out = finite_countermodel(&prog.instance, &prog.theory, &query, &mut voc, FcConfig::default());
    let mut rows = vec![format!(
        "{:<10} {:>6} {:>16} {:>18}",
        "theory", "|M|", "directed 2-cyc", "undirected 4-cyc"
    )];
    if let FcOutcome::Countermodel(cert) = out {
        let dcyc = parse_query("F(X,Y), F(Y,X)", &mut voc).unwrap();
        let ucyc = parse_query("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc).unwrap();
        rows.push(format!(
            "{:<10} {:>6} {:>16} {:>18}",
            "example9",
            cert.model_size,
            hom::satisfies_cq(&cert.model, &dcyc),
            hom::satisfies_cq(&cert.model, &ucyc)
        ));
    } else {
        rows.push("example9: pipeline failed".into());
    }
    rows.push("paper (Lemma 9 / Ex. 9): no short directed cycles, undirected ones exist".into());
    rows
}

fn e8() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<10} {:<26} {:>8} {:>4} {:>6} {:>8} {:>9}",
        "theory", "query", "|M|", "n", "kappa", "prefix", "time ms"
    )];
    let cases: Vec<(&str, bddfc_core::Program, &str)> = vec![
        ("chain", bddfc_zoo::chain_theory(), "E(X,X)"),
        ("chain", bddfc_zoo::chain_theory(), "E(X,Y), E(Y,X)"),
        ("example7", bddfc_zoo::example7(), "R(X,Y), E(X,Y)"),
        ("example9", bddfc_zoo::example9(), "F(X,X)"),
        ("linear", bddfc_zoo::linear_ontology(), "HasParent(W,W)"),
    ];
    for (name, prog, q_src) in cases {
        let mut voc = prog.voc.clone();
        let q = parse_query(q_src, &mut voc).unwrap();
        let t0 = Instant::now();
        let out = finite_countermodel(&prog.instance, &prog.theory, &q, &mut voc, FcConfig::default());
        let ms = t0.elapsed().as_millis();
        match out {
            FcOutcome::Countermodel(cert) => rows.push(format!(
                "{name:<10} {q_src:<26} {:>8} {:>4} {:>6} {:>8} {ms:>9}",
                cert.model_size, cert.n, cert.kappa, cert.chase_depth
            )),
            FcOutcome::Entailed { depth } => {
                rows.push(format!("{name:<10} {q_src:<26} entailed at depth {depth}"))
            }
            FcOutcome::Inconclusive(r) => {
                rows.push(format!("{name:<10} {q_src:<26} inconclusive: {r}"))
            }
        }
    }
    rows.push("paper (Thm 2): a certified finite countermodel exists for each".into());
    rows
}

fn e9() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<12} {:>6} {:>26} {:>9}",
        "theory", "size", "outcome", "time ms"
    )];
    for (name, prog) in [
        ("order", bddfc_zoo::order_theory()),
        ("notorious", bddfc_zoo::notorious()),
    ] {
        let q = prog.queries[0].clone();
        for size in 2..=4usize {
            let mut voc = prog.voc.clone();
            let t0 = Instant::now();
            let out = countermodel(&prog.instance, &prog.theory, &mut voc, &q, size);
            let ms = t0.elapsed().as_millis();
            let desc = match out {
                SearchOutcome::Found(m) => format!("FOUND ({} facts)", m.len()),
                SearchOutcome::NoModelWithin(n) => format!("no model within {n}"),
                SearchOutcome::Budget => "budget".into(),
            };
            rows.push(format!("{name:<12} {size:>6} {desc:>26} {ms:>9}"));
        }
    }
    // Contrast: FC theory.
    let chain = bddfc_zoo::chain_theory();
    let mut voc = chain.voc.clone();
    let q = parse_query("E(X,X)", &mut voc).unwrap();
    let out = countermodel(&chain.instance, &chain.theory, &mut voc, &q, 4);
    rows.push(format!(
        "{:<12} {:>6} {:>26}",
        "chain(FC)",
        4,
        match out {
            SearchOutcome::Found(m) => format!("FOUND ({} facts)", m.len()),
            other => format!("{other:?}"),
        }
    ));
    rows.push("paper (§5.5): both theories have NO finite countermodel at any size".into());
    rows
}

fn e10() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<26} {:>8} {:>8} {:>10} {:>8} {:>10}",
        "guarded theory", "rules in", "rules out", "monadic", "binary", "thm3"
    )];
    let inputs = [
        ("R(X,Y,Z) -> exists W . S(Y,Z,W). S(X,Y,Z), P(X) -> P(Z).", "3-ary pair"),
        ("Mentors(X,Y) -> exists Z . Mentors(Y,Z). Mentors(X,Y), Senior(X) -> Senior(Y).", "mentors"),
        ("G(X,Y,Z,W) -> exists V . H(X,Y,Z,V).", "4-ary single"),
    ];
    for (src, name) in inputs {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(src, &mut voc).unwrap();
        match bddfc_classes::guarded_to_binary(&theory, &mut voc) {
            Ok(tr) => rows.push(format!(
                "{name:<26} {:>8} {:>8} {:>10} {:>8} {:>10}",
                theory.len(),
                tr.theory.len(),
                tr.monadic.len(),
                bddfc_classes::is_binary(&tr.theory, &voc),
                bddfc_classes::is_theorem3_fragment(&tr.theory)
            )),
            Err(e) => rows.push(format!("{name:<26} rejected: {e}")),
        }
    }
    rows.push("paper (§5.6): guarded programs are binary in disguise; output is Thm-3 shaped".into());
    rows
}

fn e11() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<16} {:>9} {:>9} {:>12}",
        "reduction", "rules in", "rules out", "preds added"
    )];
    {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "P(X,Y,Z,X) -> exists T . R(X,Y,Z,T). R(X,Y,Z,T) -> S(X,T).",
            &mut voc,
        )
        .unwrap();
        let before = voc.pred_count();
        let red = bddfc_classes::to_ternary(&theory, &mut voc);
        rows.push(format!(
            "{:<16} {:>9} {:>9} {:>12}",
            "ternary(5.2)",
            theory.len(),
            red.theory.len(),
            voc.pred_count() - before
        ));
    }
    {
        let mut voc = Vocabulary::new();
        let (theory, _, _) =
            parse_into("P(X) -> E(X,Z), U(Z). E(X,Y), U(Y) -> M(X), N(Y).", &mut voc).unwrap();
        let before = voc.pred_count();
        let single = bddfc_classes::eliminate_multi_heads(&theory, &mut voc);
        rows.push(format!(
            "{:<16} {:>9} {:>9} {:>12}",
            "multihead(5.3)",
            theory.len(),
            single.len(),
            voc.pred_count() - before
        ));
    }
    rows.push("paper: both reductions are polynomial and preserve certain answers".into());
    rows
}

fn e12() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<14} {:>10} {:>10} {:>10} {:>9}",
        "unfold depth", "disjuncts", "steps", "depth", "time ms"
    )];
    // A rule chain A0 -> A1 -> ... -> A_k plus a side entry per level: the
    // rewriting of the last predicate unfolds k levels with a union per
    // level, so both size and depth grow linearly in k.
    for k in [2usize, 4, 6, 8] {
        let mut voc = Vocabulary::new();
        let mut src = String::new();
        for i in 0..k {
            src.push_str(&format!("A{i}(X) -> A{}(X). ", i + 1));
            src.push_str(&format!("B{i}(X,Y) -> A{}(Y). ", i + 1));
        }
        let (theory, _, _) = parse_into(&src, &mut voc).unwrap();
        let ak = voc.find_pred(&format!("A{k}")).unwrap();
        let w = voc.var("W");
        let q = bddfc_core::ConjunctiveQuery::with_free(
            vec![bddfc_core::Atom::new(ak, vec![bddfc_core::Term::Var(w)])],
            vec![w],
        );
        let t0 = Instant::now();
        let res = rewrite_query(&q, &theory, &mut voc, RewriteConfig::default()).unwrap();
        assert!(res.saturated);
        rows.push(format!(
            "{k:<14} {:>10} {:>10} {:>10} {:>9}",
            res.ucq.len(),
            res.steps,
            res.max_depth,
            t0.elapsed().as_millis()
        ));
    }
    let mut voc = Vocabulary::new();
    let (theory, _, _) = parse_into(
        "P(X) -> exists Z . E(X,Z). A(X) -> P(X). E(X,Y) -> U(Y).",
        &mut voc,
    )
    .unwrap();
    let kap = kappa(&theory, &mut voc, RewriteConfig::default());
    rows.push(format!("kappa of the linear ontology: {kap:?}"));
    rows.push("paper (Def. 2): BDD theories rewrite into finite UCQs; kappa is finite".into());
    rows
}

fn e13() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<8} {:>8} {:>10} {:>12} {:>12} {:>9}",
        "nodes", "edges", "variant", "facts out", "facts/s", "time ms"
    )];
    for nodes in [30usize, 100, 300] {
        let edges = nodes * 2;
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let mut voc = Vocabulary::new();
            let db = bddfc_zoo::random_graph(&mut voc, nodes, edges, 42);
            let (theory, _, _) = parse_into(
                "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z).",
                &mut voc,
            )
            .unwrap();
            let t0 = Instant::now();
            let res = chase(
                &db,
                &theory,
                &mut voc,
                ChaseConfig { max_rounds: 4, max_facts: 2_000_000, variant, ..Default::default() },
            );
            let dt = t0.elapsed();
            let per_s = (res.instance.len() as f64 / dt.as_secs_f64()) as u64;
            rows.push(format!(
                "{nodes:<8} {edges:>8} {:>10} {:>12} {per_s:>12} {:>9}",
                format!("{variant:?}"),
                res.instance.len(),
                dt.as_millis()
            ));
        }
    }
    // Restricted vs oblivious on the cycle (Section 1.1's contrast).
    let mut voc = Vocabulary::new();
    let (theory, db, _) = parse_into(
        "E(X,Y) -> exists Z . E(Y,Z). E(a,b). E(b,c). E(c,a).",
        &mut voc,
    )
    .unwrap();
    let (r, o) = chase_size_comparison(&db, &theory, &mut voc, ChaseConfig::rounds(6));
    rows.push(format!("cycle D: restricted = {r} facts, oblivious = {o} facts"));
    rows.push("paper (§1.1): the non-oblivious chase creates witnesses only if needed".into());
    rows
}

fn e14() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<8} {:>6} {:>10} {:>9}",
        "chain", "n", "classes", "time ms"
    )];
    for len in [20usize, 40, 80] {
        for n in [2usize, 3, 4] {
            let mut voc = Vocabulary::new();
            let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, len);
            let t0 = Instant::now();
            let analyzer = TypeAnalyzer::new(&inst, &mut voc, n);
            let classes = analyzer.partition().len();
            rows.push(format!(
                "{len:<8} {n:>6} {classes:>10} {:>9}",
                t0.elapsed().as_millis()
            ));
        }
    }
    rows.push("systems: partition cost grows with n (neighbourhood radius), classes stay 2(n-1)+1".into());
    rows
}

fn e15() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<10} {:>6} {:>6} {:>12} {:>9}",
        "structure", "m", "n", "conservative", "time ms"
    )];
    // Bounded-degree structure: chain plus doubling chords (the §5.5
    // chase shape, degree ≤ 4).
    let mut voc = Vocabulary::new();
    let e = voc.pred("E", 2);
    let r = voc.pred("R", 2);
    let elems: Vec<_> = (0..20).map(|_| voc.fresh_null("x")).collect();
    let mut inst = Instance::new();
    for i in 0..19 {
        inst.insert(Fact::new(e, vec![elems[i], elems[i + 1]]));
    }
    for i in 0..10 {
        inst.insert(Fact::new(r, vec![elems[i], elems[2 * i]]));
    }
    for m in [1usize, 2] {
        let t0 = Instant::now();
        match find_conservative_n(&inst, &mut voc, m, m.max(2)..=6) {
            Some((n, check)) => rows.push(format!(
                "{:<10} {m:>6} {n:>6} {:>12} {:>9}",
                "chords",
                check.is_conservative(),
                t0.elapsed().as_millis()
            )),
            None => rows.push(format!("{:<10} {m:>6} none", "chords")),
        }
    }
    rows.push("paper (Lemma 13): bounded degree => ptp-conservative".into());
    rows
}


fn e16() -> Vec<String> {
    let mut rows = vec![format!(
        "{:<12} {:>14} {:>12} {:>10}",
        "theory", "defines order", "chain len", "is FC"
    )];
    // Conjecture 2 (refuted): non-FC iff defines an ordering. The "if"
    // half is a sound non-FC detector; the notorious example breaks the
    // "only if" half.
    let cases: [(&str, bddfc_core::Program, bool); 3] = [
        ("order", bddfc_zoo::order_theory(), false),
        ("notorious", bddfc_zoo::notorious(), false),
        ("chain", bddfc_zoo::chain_theory(), true),
    ];
    for (name, prog, is_fc) in cases {
        let mut voc = prog.voc.clone();
        let witness = bddfc_classes::order_probe(&prog.instance, &prog.theory, &mut voc, 10, 6);
        rows.push(format!(
            "{name:<12} {:>14} {:>12} {:>10}",
            witness.is_some(),
            witness.as_ref().map(|w| w.chain.len()).unwrap_or(0),
            is_fc
        ));
    }
    rows.push("paper: 'order' defines one (=> not FC); 'notorious' does NOT yet is".into());
    rows.push("still not FC (see e9) — Conjecture 2's 'only if' fails, as claimed".into());
    rows
}

fn e17() -> Vec<String> {
    use bddfc_rewrite::{find_fork, measure, resolve_fork_with, shape};
    let mut rows = vec![format!("{:<44} {:>22} {:>9}", "query", "shape", "measure")];
    let mut voc = Vocabulary::new();
    let _ = voc.pred("P", 2);
    for src in [
        "E(X,Y), E(Y,Z), F(Y,W)",
        "E(X,Y), E(Y,Z), E(Z,X)",
        "F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)",
        "E(X,X)",
    ] {
        let q = parse_query(src, &mut voc).unwrap();
        rows.push(format!("{src:<44} {:>22} {:>9}", format!("{:?}", shape(&q)), measure(&q)));
    }
    // One Lemma 11 normalization step on the Example 9 diamond.
    let diamond = parse_query("F(X1,Y1), F(X2,Y1), G(X2,Y2), G(X1,Y2)", &mut voc).unwrap();
    let fork = find_fork(&diamond).expect("diamond has a fork");
    let p = voc.find_pred("P").unwrap();
    let resolved = resolve_fork_with(&diamond, &fork, p);
    rows.push(format!(
        "normalization step: measure {} -> {} (strictly decreasing, Lemma 10)",
        measure(&diamond),
        measure(&resolved)
    ));
    // Derivation-depth trace (the object BDD bounds).
    let prog = bddfc_core::parse_program(
        "E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c). E(c,d). E(d,e2).",
    )
    .unwrap();
    let mut voc2 = prog.voc.clone();
    let traced = bddfc_chase::traced_chase(&prog.instance, &prog.theory, &mut voc2, 8);
    let max_h = traced
        .instance
        .facts()
        .iter()
        .map(|f| traced.explain(f).map(|t| t.height()).unwrap_or(0))
        .max()
        .unwrap_or(0);
    rows.push(format!(
        "derivation trees over TC of a 4-edge chain: {} facts, max height {max_h}",
        traced.instance.len()
    ));
    rows.push("paper (Sec. 4): trees are harmless, directed cycles impossible,".into());
    rows.push("undirected cycles are normalized away with a decreasing measure".into());
    rows
}

/// Run a single experiment and saturate datalog as a warmup sanity check
/// (exercised by the bench harness tests).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs() {
        for exp in all_experiments() {
            let rows = (exp.run)();
            assert!(rows.len() >= 2, "experiment {} produced no rows", exp.id);
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope").is_none());
        assert!(run_experiment("e3").is_some());
    }

    #[test]
    fn saturation_smoke() {
        let mut voc = Vocabulary::new();
        let (theory, db, _) =
            parse_into("E(X,Y), E(Y,Z) -> E(X,Z). E(a,b). E(b,c).", &mut voc).unwrap();
        let res = bddfc_chase::saturate_datalog(&db, &theory);
        assert_eq!(res.instance.len(), 3);
    }
}
