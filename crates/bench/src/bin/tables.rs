//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run -p bddfc-bench --bin tables            # all experiments
//! cargo run -p bddfc-bench --bin tables -- --exp e3
//! ```

use bddfc_bench::{all_experiments, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--exp") {
        let id = args.get(pos + 1).map(String::as_str).unwrap_or("");
        match run_experiment(id) {
            Some(rows) => {
                println!("== {id} ==");
                for row in rows {
                    println!("{row}");
                }
            }
            None => {
                eprintln!("unknown experiment id {id:?}; known ids:");
                for e in all_experiments() {
                    eprintln!("  {} — {} ({})", e.id, e.title, e.source);
                }
                std::process::exit(1);
            }
        }
        return;
    }
    for exp in all_experiments() {
        println!("== {} — {} ({}) ==", exp.id, exp.title, exp.source);
        for row in (exp.run)() {
            println!("{row}");
        }
        println!();
    }
}
