//! `bench_diff` — compares two `BENCH_<target>.json` files and fails on
//! regressions.
//!
//! ```text
//! bench_diff old.json new.json [--metric median_ns] [--threshold 10]
//! ```
//!
//! Rows are matched by `(name, threads)`; when a file contains several
//! rows for a pair (benches append), the last one wins. Exits 1 when any
//! matched row's metric grew by more than `--threshold` percent, 2 on
//! usage or parse errors — so CI can gate on perf with
//! `bench_diff baseline.json current.json --threshold 25`.

use bddfc_bench::diff::diff_files;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <old.json> <new.json> [--metric median_ns] [--threshold PCT]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut metric = "median_ns".to_string();
    let mut threshold: u64 = 10;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metric" => metric = it.next().unwrap_or_else(|| usage()),
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with("--") => files.push(other.to_string()),
            _ => usage(),
        }
    }
    if files.len() != 2 {
        usage()
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read {path}: {e}");
            std::process::exit(2)
        })
    };
    let (old_text, new_text) = (read(&files[0]), read(&files[1]));
    let report = match diff_files(&old_text, &new_text, &metric) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };

    println!("comparing {} -> {} on {metric} (threshold {threshold}%)", files[0], files[1]);
    for row in &report.compared {
        let ratio = row
            .ratio_permille()
            .map(|p| format!("{}.{:03}x", p / 1000, p % 1000))
            .unwrap_or_else(|| "-".to_string());
        let flag = if row.regressed(threshold) { "  REGRESSION" } else { "" };
        println!(
            "  {:<44} t={} {:>12} -> {:>12}  {}{}",
            row.name, row.threads, row.old, row.new, ratio, flag
        );
    }
    for (name, threads) in &report.only_old {
        println!("  {name:<44} t={threads} only in old file");
    }
    for (name, threads) in &report.only_new {
        println!("  {name:<44} t={threads} only in new file");
    }

    let regressions = report.regressions(threshold);
    if regressions.is_empty() {
        println!("ok: {} rows compared, no regression past {threshold}%", report.compared.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {}/{} rows regressed past {threshold}%",
            regressions.len(),
            report.compared.len()
        );
        ExitCode::FAILURE
    }
}
