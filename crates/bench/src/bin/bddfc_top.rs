//! `bddfc-top` — a terminal view of a running `bddfc-serve`'s metrics.
//!
//! ```text
//! bddfc-top --addr 127.0.0.1:9100             # refreshing table
//! bddfc-top --addr 127.0.0.1:9100 --once      # one table, then exit
//! bddfc-top --addr 127.0.0.1:9100 --raw       # one raw exposition, then exit
//! bddfc-top --addr 127.0.0.1:9100 --interval 5
//! ```
//!
//! Scrapes the `--metrics-tcp` Prometheus endpoint over plain
//! HTTP/1.0 (std `TcpStream` only, like the endpoint itself) and
//! renders [`bddfc_bench::top::render`]'s table. `--once` output is a
//! pure function of a single scrape; the default mode redraws every
//! `--interval` seconds (ANSI clear-screen between draws), keeping the
//! previous scrape so each lifetime counter also shows its windowed
//! per-second rate ([`bddfc_bench::top::render_with_rates`]).

use bddfc_bench::top::{parse_exposition, render, render_with_rates, Scrape};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    once: bool,
    raw: bool,
    interval: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-top --addr HOST:PORT [--once | --raw] [--interval SECS]\n\
         \n\
         --addr HOST:PORT   the bddfc-serve --metrics-tcp endpoint\n\
         --once             print one rendered table and exit\n\
         --raw              print one raw Prometheus exposition and exit\n\
         --interval SECS    refresh period (default 2)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args { addr: String::new(), once: false, raw: false, interval: 2 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--interval" => {
                args.interval = value("--interval").parse().unwrap_or_else(|e| {
                    eprintln!("--interval: {e}");
                    usage()
                })
            }
            "--once" => args.once = true,
            "--raw" => args.raw = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    if args.addr.is_empty() {
        eprintln!("--addr is required");
        usage()
    }
    args
}

/// One HTTP/1.0 scrape: returns the response body, or an error naming
/// what failed (connect, non-200 status, missing body).
fn scrape(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("request: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("response: {e}"))?;
    let status = response.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("scrape failed: {status}"));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| "response carried no body".into())
}

fn main() -> ExitCode {
    let args = parse_args();
    // The previous scrape backs the interactive mode's windowed rate
    // columns; the first draw (and `--once`) has none.
    let mut prev: Option<Scrape> = None;
    loop {
        let body = match scrape(&args.addr) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bddfc-top: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.raw {
            print!("{body}");
            return ExitCode::SUCCESS;
        }
        let parsed = match parse_exposition(&body) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bddfc-top: {e}");
                return ExitCode::FAILURE;
            }
        };
        if args.once {
            print!("{}", render(&parsed));
            return ExitCode::SUCCESS;
        }
        let table = render_with_rates(&parsed, prev.as_ref(), args.interval.max(1));
        prev = Some(parsed);
        // Clear screen + home, then the fresh table.
        print!("\x1b[2J\x1b[H{table}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs(args.interval.max(1)));
    }
}
