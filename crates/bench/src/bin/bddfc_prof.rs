//! `bddfc-prof` — hierarchical span profiler over the zoo workloads.
//!
//! Runs one workload with every engine wired to a recording
//! [`Memory`](bddfc_core::obs::Memory) sink, then renders the per-rule /
//! per-predicate attribution tables, the span tree, a log2 latency
//! histogram, and (on request) a collapsed-stack flamegraph file and a
//! JSONL trace.
//!
//! ```text
//! bddfc-prof --list
//! bddfc-prof --workload e13
//! bddfc-prof --workload e13 --flame e13.folded --trace e13.jsonl
//! bddfc-prof --workload e13 --check      # deterministic output + invariants
//! ```
//!
//! `--check` suppresses every gauge-derived number (wall times,
//! percentages, the histogram) so its stdout is byte-identical at any
//! `BDDFC_THREADS` setting, and cross-checks the telemetry against the
//! engines' legacy counters; any violation exits nonzero.

use bddfc_bench::prof::{run_workload, Report, WORKLOADS};
use bddfc_core::obs::Memory;
use std::process::ExitCode;

struct Args {
    workload: Option<String>,
    list: bool,
    check: bool,
    flame: Option<String>,
    trace: Option<String>,
    cap: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-prof --workload <name> [--check] [--flame PATH] [--trace PATH] [--cap N]\n\
         \x20      bddfc-prof --list\n\
         \n\
         --workload <name>  zoo workload to profile (see --list)\n\
         --check            deterministic output only; verify telemetry invariants\n\
         --flame PATH       write collapsed stacks (flamegraph.pl / inferno format)\n\
         --trace PATH       write the recorded telemetry as JSON lines\n\
         --cap N            event/span log capacity (default 65536)\n\
         --list             list available workloads"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: None,
        list: false,
        check: false,
        flame: None,
        trace: None,
        cap: 1 << 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        });
        match a.as_str() {
            "--workload" => args.workload = Some(value("--workload")),
            "--flame" => args.flame = Some(value("--flame")),
            "--trace" => args.trace = Some(value("--trace")),
            "--cap" => {
                args.cap = value("--cap").parse().unwrap_or_else(|e| {
                    eprintln!("--cap: {e}");
                    usage()
                })
            }
            "--check" => args.check = true,
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.list {
        println!("available workloads:");
        for &(name, summary) in WORKLOADS {
            println!("  {name:<10} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let Some(workload) = args.workload.as_deref() else { usage() };

    let sink = Memory::new(args.cap);
    let Some(run) = run_workload(workload, &sink) else {
        eprintln!("unknown workload {workload:?}; try --list");
        return ExitCode::from(2);
    };
    if sink.dropped() > 0 || sink.spans_dropped() > 0 {
        eprintln!(
            "warning: log capacity {} exceeded ({} events, {} spans dropped); \
             raise --cap for a complete profile",
            args.cap,
            sink.dropped(),
            sink.spans_dropped()
        );
    }
    let report = Report::new(&sink, run, !args.check);

    println!("workload: {workload}");
    println!();
    print!("{}", report.render_tables());
    print!("{}", report.render_span_tree());
    if !args.check {
        println!();
        print!("{}", report.render_histogram());
    }

    if let Some(path) = &args.flame {
        let folded = report.render_folded();
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
        println!("wrote {} collapsed stacks to {path}", folded.lines().count());
    }
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, report.render_trace()) {
            eprintln!("could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote telemetry trace to {path}");
    }

    if args.check {
        println!();
        match report.reconcile() {
            Ok(lines) => {
                for l in lines {
                    println!("check: {l}");
                }
                println!("check: ok");
            }
            Err(e) => {
                eprintln!("check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
