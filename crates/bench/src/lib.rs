//! # bddfc-bench — experiment harness
//!
//! The paper has no empirical evaluation section (it is a theory paper),
//! so the reproducible quantitative surface is the set of checkable
//! claims its examples and lemmas make, plus a systems-style evaluation
//! of each component. The [`experiments`] module regenerates every row of
//! EXPERIMENTS.md; `cargo run -p bddfc-bench --bin tables` prints them,
//! and the Criterion benches under `benches/` measure the hot paths.

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::{all_experiments, run_experiment, Experiment};
