//! # bddfc-bench — experiment harness
//!
//! The paper has no empirical evaluation section (it is a theory paper),
//! so the reproducible quantitative surface is the set of checkable
//! claims its examples and lemmas make, plus a systems-style evaluation
//! of each component. The [`experiments`] module regenerates every row of
//! EXPERIMENTS.md; `cargo run -p bddfc-bench --bin tables` prints them,
//! and the dependency-free benches under `benches/` (run with
//! `cargo bench`) measure the hot paths using the in-tree [`timing`]
//! harness.

#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod prof;
pub mod timing;
pub mod top;

pub use diff::{diff_files, parse_bench_file, BenchRecord, DiffReport, DiffRow};
pub use experiments::{all_experiments, run_experiment, Experiment};
pub use prof::{run_workload, Report, WorkloadRun, WORKLOADS};
pub use timing::{bench, black_box, format_row, init_json, BenchRow, SCHEMA_VERSION};
