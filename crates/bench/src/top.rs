//! `bddfc-top` support: a parser for the Prometheus text exposition the
//! `bddfc-serve --metrics-tcp` endpoint emits, and a pure renderer that
//! turns one scrape into the refreshing table the binary shows.
//!
//! The renderer is deliberately a pure function of a single parsed
//! scrape ([`render`]): `bddfc-top --once` prints exactly one render, so
//! its output is testable and diffable. The interactive mode keeps the
//! previous scrape and renders through [`render_with_rates`], which
//! adds a windowed per-second rate column next to every lifetime
//! counter — still a pure function, now of two scrapes and the window
//! length.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One sample line from an exposition: series name, labels in source
/// order, integer value (the bddfc exposition only emits integers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The metric name (without labels).
    pub name: String,
    /// `{key="value"}` pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: u64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// One parsed scrape: family types from `# TYPE` lines plus every
/// sample in source order.
#[derive(Clone, Debug, Default)]
pub struct Scrape {
    /// `# TYPE` declarations: family name → `counter`/`gauge`/`histogram`.
    pub types: BTreeMap<String, String>,
    /// All samples, in source order.
    pub samples: Vec<Sample>,
}

impl Scrape {
    /// The single unlabelled sample of `name`, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The sample of `name` carrying `label`, if present.
    pub fn labelled(&self, name: &str, label: (&str, &str)) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.label(label.0) == Some(label.1))
            .map(|s| s.value)
    }
}

/// Parses Prometheus text exposition. Unknown comment lines are
/// skipped; a malformed sample line is an error naming the line.
pub fn parse_exposition(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                scrape.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        scrape.samples.push(parse_sample(line)?);
    }
    Ok(scrape)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bad = || format!("malformed sample line: {line}");
    let (series, value) = line.rsplit_once(' ').ok_or_else(bad)?;
    // The latency histogram's `le` bounds are integers too, but a
    // `+Inf` bucket value position never holds — only the *value*
    // column is parsed here, and it is always an integer count.
    let value: u64 = value.trim().parse().map_err(|_| bad())?;
    let series = series.trim();
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or_else(bad)?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').ok_or_else(bad)?;
                let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')).ok_or_else(bad)?;
                labels.push((k.to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
    };
    Ok(Sample { name, labels, value })
}

/// The per-command protocol verbs `bddfc-serve` labels its request
/// series with, in display order.
const COMMANDS: &[&str] =
    &["insert", "retract", "query", "explain", "stats", "metrics", "slowlog", "quit", "invalid"];

/// Renders one scrape as the `bddfc-top` table — a pure function of the
/// scrape, so `--once` output is reproducible from a saved exposition.
pub fn render(scrape: &Scrape) -> String {
    render_with_rates(scrape, None, 1)
}

/// Windowed per-second rate of a counter between two scrapes: the
/// delta (clamped at zero — a restarted server resets its counters)
/// divided by the window length.
fn rate(cur: u64, prev: u64, window_secs: u64) -> u64 {
    cur.saturating_sub(prev) / window_secs.max(1)
}

/// Like [`render`], but when `prev` holds the previous scrape every
/// lifetime counter (including the per-command request/error series)
/// gains a windowed `/s` column: the counter delta over `window_secs`
/// divided by the window. Still a pure function — of two scrapes and
/// the window — which is what keeps the interactive mode testable.
/// With `prev` absent the output is byte-identical to [`render`].
pub fn render_with_rates(scrape: &Scrape, prev: Option<&Scrape>, window_secs: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bddfc-top — {} series", scrape.samples.len());
    out.push('\n');

    let _ = writeln!(out, "{:<36} {:>12}", "gauge", "value");
    for s in &scrape.samples {
        if scrape.types.get(&s.name).map(String::as_str) == Some("gauge") {
            let _ = writeln!(out, "{:<36} {:>12}", s.name, s.value);
        }
    }
    out.push('\n');

    match prev {
        None => {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>10} {:>14}",
                "command", "requests", "errors", "mean_us"
            );
        }
        Some(_) => {
            let _ = writeln!(
                out,
                "{:<10} {:>10} {:>8} {:>10} {:>8} {:>14}",
                "command", "requests", "req/s", "errors", "err/s", "mean_us"
            );
        }
    }
    for cmd in COMMANDS {
        let label = ("command", *cmd);
        let Some(requests) = scrape.labelled("bddfc_requests_total", label) else {
            continue;
        };
        let errors = scrape.labelled("bddfc_request_errors_total", label).unwrap_or(0);
        let count = scrape.labelled("bddfc_request_latency_ns_count", label).unwrap_or(0);
        let sum = scrape.labelled("bddfc_request_latency_ns_sum", label).unwrap_or(0);
        let mean_us = if count == 0 { 0 } else { sum / count / 1_000 };
        match prev {
            None => {
                let _ = writeln!(out, "{cmd:<10} {requests:>10} {errors:>10} {mean_us:>14}");
            }
            Some(p) => {
                let rps = rate(
                    requests,
                    p.labelled("bddfc_requests_total", label).unwrap_or(0),
                    window_secs,
                );
                let eps = rate(
                    errors,
                    p.labelled("bddfc_request_errors_total", label).unwrap_or(0),
                    window_secs,
                );
                let _ = writeln!(
                    out,
                    "{cmd:<10} {requests:>10} {rps:>8} {errors:>10} {eps:>8} {mean_us:>14}"
                );
            }
        }
    }
    out.push('\n');

    match prev {
        None => {
            let _ = writeln!(out, "{:<36} {:>12}", "counter", "value");
        }
        Some(_) => {
            let _ = writeln!(out, "{:<36} {:>12} {:>10}", "counter", "value", "per_s");
        }
    }
    for s in &scrape.samples {
        let is_counter = scrape.types.get(&s.name).map(String::as_str) == Some("counter");
        if is_counter && s.labels.is_empty() {
            match prev {
                None => {
                    let _ = writeln!(out, "{:<36} {:>12}", s.name, s.value);
                }
                Some(p) => {
                    let per_s = rate(s.value, p.value(&s.name).unwrap_or(0), window_secs);
                    let _ = writeln!(out, "{:<36} {:>12} {:>10}", s.name, s.value, per_s);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXPOSITION: &str = "\
# HELP bddfc_epoch Current published epoch id.
# TYPE bddfc_epoch gauge
bddfc_epoch 3
# TYPE bddfc_facts_resident gauge
bddfc_facts_resident 42
# TYPE bddfc_requests_total counter
bddfc_requests_total{command=\"insert\"} 1
bddfc_requests_total{command=\"query\"} 5
# TYPE bddfc_request_errors_total counter
bddfc_request_errors_total{command=\"query\"} 2
# TYPE bddfc_chase_rounds_total counter
bddfc_chase_rounds_total 7
# TYPE bddfc_request_latency_ns histogram
bddfc_request_latency_ns_bucket{command=\"query\",le=\"1024\"} 3
bddfc_request_latency_ns_bucket{command=\"query\",le=\"+Inf\"} 5
bddfc_request_latency_ns_sum{command=\"query\"} 10000
bddfc_request_latency_ns_count{command=\"query\"} 5
";

    #[test]
    fn parses_types_labels_and_values() {
        let s = parse_exposition(EXPOSITION).unwrap();
        assert_eq!(s.types.get("bddfc_epoch").unwrap(), "gauge");
        assert_eq!(s.value("bddfc_epoch"), Some(3));
        assert_eq!(s.labelled("bddfc_requests_total", ("command", "query")), Some(5));
        assert_eq!(
            s.labelled("bddfc_request_latency_ns_count", ("command", "query")),
            Some(5)
        );
        // The +Inf bucket line parses (value column is the count).
        assert!(s
            .samples
            .iter()
            .any(|x| x.name == "bddfc_request_latency_ns_bucket" && x.label("le") == Some("+Inf")));
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        assert!(parse_exposition("bddfc_epoch three").is_err());
        assert!(parse_exposition("bddfc_epoch{command=\"q\" 3").is_err());
        assert!(parse_exposition("just-one-token").is_err());
    }

    #[test]
    fn rates_appear_only_against_a_previous_scrape() {
        let prev = parse_exposition(EXPOSITION).unwrap();
        // 10 seconds later: 25 more queries, 20 more errors, 50 more
        // chase rounds.
        let cur = parse_exposition(
            &EXPOSITION
                .replace("bddfc_requests_total{command=\"query\"} 5", "bddfc_requests_total{command=\"query\"} 30")
                .replace("bddfc_request_errors_total{command=\"query\"} 2", "bddfc_request_errors_total{command=\"query\"} 22")
                .replace("bddfc_chase_rounds_total 7", "bddfc_chase_rounds_total 57"),
        )
        .unwrap();

        // Without a previous scrape the output is byte-identical to the
        // `--once` renderer — the ci contract.
        assert_eq!(render_with_rates(&cur, None, 10), render(&cur));

        let t = render_with_rates(&cur, Some(&prev), 10);
        assert_eq!(t, render_with_rates(&cur, Some(&prev), 10), "must be pure");
        // query row: 30 requests at 2/s, 22 errors at 2/s, mean 2 us
        // (the latency series is unchanged between scrapes).
        let query_row = t.lines().find(|l| l.starts_with("query ")).unwrap();
        assert_eq!(
            query_row.split_whitespace().collect::<Vec<_>>(),
            vec!["query", "30", "2", "22", "2", "2"],
            "{t}"
        );
        // insert row is unchanged between scrapes: rate 0.
        let insert_row = t.lines().find(|l| l.starts_with("insert ")).unwrap();
        assert_eq!(
            insert_row.split_whitespace().collect::<Vec<_>>(),
            vec!["insert", "1", "0", "0", "0", "0"],
            "{t}"
        );
        // unlabelled counter: 50 more rounds over 10 s = 5/s.
        let rounds_row = t.lines().find(|l| l.starts_with("bddfc_chase_rounds_total")).unwrap();
        assert_eq!(
            rounds_row.split_whitespace().collect::<Vec<_>>(),
            vec!["bddfc_chase_rounds_total", "57", "5"],
            "{t}"
        );
        // A counter reset (restarted server) clamps to 0, not underflow.
        let t = render_with_rates(&prev, Some(&cur), 10);
        let rounds_row = t.lines().find(|l| l.starts_with("bddfc_chase_rounds_total")).unwrap();
        assert_eq!(
            rounds_row.split_whitespace().collect::<Vec<_>>(),
            vec!["bddfc_chase_rounds_total", "7", "0"],
            "{t}"
        );
    }

    #[test]
    fn render_is_a_pure_table_of_one_scrape() {
        let s = parse_exposition(EXPOSITION).unwrap();
        let a = render(&s);
        assert_eq!(a, render(&s), "render must be pure");
        assert!(a.contains("bddfc_epoch"), "{a}");
        assert!(a.contains("bddfc_chase_rounds_total"), "{a}");
        // query row: 5 requests, 2 errors, mean 10000/5/1000 = 2 us.
        let query_row = a.lines().find(|l| l.starts_with("query ")).unwrap();
        let cols: Vec<&str> = query_row.split_whitespace().collect();
        assert_eq!(cols, vec!["query", "5", "2", "2"], "{a}");
        // insert row has no latency series: mean 0.
        let insert_row = a.lines().find(|l| l.starts_with("insert ")).unwrap();
        assert_eq!(
            insert_row.split_whitespace().collect::<Vec<_>>(),
            vec!["insert", "1", "0", "0"],
            "{a}"
        );
    }
}
