//! Benches for the positive-type machinery (experiments E3, E4 and E14).

use bddfc_bench::bench;
use bddfc_core::Vocabulary;
use bddfc_types::{find_conservative_n, Quotient, TypeAnalyzer};

/// E14 — ≡ₙ partition cost vs. chain length and n.
fn pebble_scaling() {
    for len in [20usize, 60] {
        for n in [2usize, 3] {
            let mut voc = Vocabulary::new();
            let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, len);
            bench(&format!("partition/n{n}/{len}"), 10, || {
                let mut v = voc.clone();
                let analyzer = TypeAnalyzer::new(&inst, &mut v, n);
                analyzer.partition().len()
            });
        }
    }
}

/// E3 — quotient construction on the chain.
fn quotient_chain() {
    for len in [20usize, 60] {
        let mut voc = Vocabulary::new();
        let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, len);
        let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
        let partition = analyzer.partition();
        bench(&format!("quotient_chain/{len}"), 10, || {
            let mut v = voc.clone();
            Quotient::new(&inst, partition.clone(), &mut v)
                .instance
                .len()
        });
    }
}

/// E4 — the conservative-n search with the natural coloring.
fn conservative_search() {
    for m in [1usize, 2] {
        let mut voc = Vocabulary::new();
        let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, 24);
        bench(&format!("conservative_n/{m}"), 10, || {
            let mut v = voc.clone();
            find_conservative_n(&inst, &mut v, m, m.max(2)..=(m + 4)).map(|(n, _)| n)
        });
    }
}

fn main() {
    bddfc_bench::init_json("types");
    pebble_scaling();
    quotient_chain();
    conservative_search();
}
