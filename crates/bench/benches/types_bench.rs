//! Criterion benches for the positive-type machinery (experiments E3, E4
//! and E14).

use bddfc_core::Vocabulary;
use bddfc_types::{find_conservative_n, Quotient, TypeAnalyzer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// E14 — ≡ₙ partition cost vs. chain length and n.
fn pebble_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for len in [20usize, 60] {
        for n in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), len),
                &(len, n),
                |b, &(len, n)| {
                    let mut voc = Vocabulary::new();
                    let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, len);
                    b.iter(|| {
                        let mut v = voc.clone();
                        let analyzer = TypeAnalyzer::new(&inst, &mut v, n);
                        analyzer.partition().len()
                    });
                },
            );
        }
    }
    group.finish();
}

/// E3 — quotient construction on the chain.
fn quotient_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient_chain");
    group.sample_size(10);
    for len in [20usize, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut voc = Vocabulary::new();
            let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, len);
            let analyzer = TypeAnalyzer::new(&inst, &mut voc, 3);
            let partition = analyzer.partition();
            b.iter(|| {
                let mut v = voc.clone();
                Quotient::new(&inst, partition.clone(), &mut v)
                    .instance
                    .len()
            });
        });
    }
    group.finish();
}

/// E4 — the conservative-n search with the natural coloring.
fn conservative_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("conservative_n");
    group.sample_size(10);
    for m in [1usize, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut voc = Vocabulary::new();
            let (inst, _) = bddfc_zoo::anonymous_chain(&mut voc, 24);
            b.iter(|| {
                let mut v = voc.clone();
                find_conservative_n(&inst, &mut v, m, m.max(2)..=(m + 4))
                    .map(|(n, _)| n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pebble_scaling, quotient_chain, conservative_search);
criterion_main!(benches);
