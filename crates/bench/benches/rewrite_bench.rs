//! Benches for UCQ rewriting (experiment E12).

use bddfc_bench::bench;
use bddfc_core::{parse_into, Vocabulary};
use bddfc_rewrite::{kappa, rewrite_query, RewriteConfig};

/// E12 — rewriting time vs. query path length on a linear theory.
fn rewrite_scaling() {
    for len in [1usize, 2, 3, 4] {
        let mut voc = Vocabulary::new();
        let (theory, _, _) = parse_into(
            "P(X) -> exists Z . E(X,Z).
             A(X) -> P(X).
             E(X,Y) -> U(Y).",
            &mut voc,
        )
        .unwrap();
        let q = bddfc_zoo::path_query(&mut voc, len);
        bench(&format!("rewrite_scaling/{len}"), 10, || {
            let mut v = voc.clone();
            rewrite_query(&q, &theory, &mut v, RewriteConfig::default())
                .unwrap()
                .ucq
                .len()
        });
    }
}

/// E12b — the κ computation over the zoo's BDD theories.
fn kappa_cost() {
    for (name, prog) in [
        ("chain", bddfc_zoo::chain_theory()),
        ("example7", bddfc_zoo::example7()),
        ("linear", bddfc_zoo::linear_ontology()),
    ] {
        bench(&format!("kappa/{name}"), 10, || {
            let mut v = prog.voc.clone();
            kappa(&prog.theory, &mut v, RewriteConfig::default())
        });
    }
}

fn main() {
    bddfc_bench::init_json("rewrite");
    rewrite_scaling();
    kappa_cost();
}
