//! Criterion benches for UCQ rewriting (experiment E12).

use bddfc_core::{parse_into, Vocabulary};
use bddfc_rewrite::{kappa, rewrite_query, RewriteConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// E12 — rewriting time vs. query path length on a linear theory.
fn rewrite_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_scaling");
    group.sample_size(10);
    for len in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut voc = Vocabulary::new();
            let (theory, _, _) = parse_into(
                "P(X) -> exists Z . E(X,Z).
                 A(X) -> P(X).
                 E(X,Y) -> U(Y).",
                &mut voc,
            )
            .unwrap();
            let q = bddfc_zoo::path_query(&mut voc, len);
            b.iter(|| {
                let mut v = voc.clone();
                rewrite_query(&q, &theory, &mut v, RewriteConfig::default())
                    .unwrap()
                    .ucq
                    .len()
            });
        });
    }
    group.finish();
}

/// E12b — the κ computation over the zoo's BDD theories.
fn kappa_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("kappa");
    group.sample_size(10);
    for (name, prog) in [
        ("chain", bddfc_zoo::chain_theory()),
        ("example7", bddfc_zoo::example7()),
        ("linear", bddfc_zoo::linear_ontology()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut v = prog.voc.clone();
                kappa(&prog.theory, &mut v, RewriteConfig::default())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, rewrite_scaling, kappa_cost);
criterion_main!(benches);
