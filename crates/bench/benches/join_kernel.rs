//! Batched hash-join kernel vs tuple-at-a-time oracle, pinned to one
//! worker thread so the comparison isolates the join strategy rather
//! than the scheduler.
//!
//! `e13/*` measures the kernels directly: both modes re-enumerate every
//! rule-body homomorphism of the E13 theory over the same frozen chased
//! instance — the work `collect_repairs` does each round — with no
//! admission, null invention or insertion in the loop. The batch kernel
//! must beat the tuple engine by at least 2× on the median there (a
//! conservative floor — the roadmap target is 5×; the actual ratio is
//! printed so `BENCH_join.json` tracks the real trajectory). `tc/*`
//! keeps an end-to-end chase comparison on a join-heavy datalog theory,
//! where the kernel difference survives the shared insertion costs.

use bddfc_bench::{bench, black_box};
use bddfc_chase::{chase, ChaseConfig, ChaseVariant};
use bddfc_core::hom::{self, Binding};
use bddfc_core::join::{eval_body, with_join_mode, JoinMode};
use bddfc_core::{par, parse_into, Vocabulary};
use std::ops::ControlFlow;

/// The two kernel configurations under comparison, with stable labels.
const MODES: [(JoinMode, &str); 2] =
    [(JoinMode::Tuple, "tuple"), (JoinMode::Batch, "batch")];

/// Body-match enumeration over the chased E13 instance per kernel,
/// single-threaded. Returns `(tuple_median_ns, batch_median_ns)`.
fn e13_kernel() -> (f64, f64) {
    let mut voc = Vocabulary::new();
    let db = bddfc_zoo::random_graph(&mut voc, 100, 200, 42);
    let (theory, _, _) = parse_into(
        "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z).",
        &mut voc,
    )
    .unwrap();
    // One chase materializes the frozen instance both kernels sweep.
    let inst = chase(
        &db,
        &theory,
        &mut voc,
        ChaseConfig {
            max_rounds: 3,
            max_facts: 2_000_000,
            variant: ChaseVariant::Restricted,
            ..Default::default()
        },
    )
    .instance;
    let mut medians = [0f64; 2];
    for (slot, (mode, label)) in MODES.into_iter().enumerate() {
        let row = par::with_thread_count(1, || {
            bench(&format!("join_kernel/e13/{label}"), 10, || {
                let mut matches = 0u64;
                for rule in &theory.rules {
                    match mode {
                        JoinMode::Tuple => {
                            let _ = hom::for_each_hom(
                                &inst,
                                &rule.body,
                                &Binding::default(),
                                |_| {
                                    matches += 1;
                                    ControlFlow::<()>::Continue(())
                                },
                            );
                        }
                        JoinMode::Batch => {
                            matches += eval_body(inst.columnar(), &rule.body, None, None)
                                .rows() as u64;
                        }
                    }
                }
                black_box(matches)
            })
        });
        medians[slot] = row.median().as_nanos() as f64;
    }
    (medians[0], medians[1])
}

/// Transitive closure on a dense-ish graph — the pure-join hot path the
/// kernel was built for (two-atom self-join, no existentials), end to
/// end through the chase.
fn tc_throughput() {
    let mut voc = Vocabulary::new();
    let db = bddfc_zoo::random_graph(&mut voc, 60, 180, 13);
    let (theory, _, _) = parse_into("E(X,Y), E(Y,Z) -> E(X,Z).", &mut voc).unwrap();
    for (mode, label) in MODES {
        par::with_thread_count(1, || {
            with_join_mode(mode, || {
                bench(&format!("join_kernel/tc/{label}"), 5, || {
                    let mut v = voc.clone();
                    chase(
                        &db,
                        &theory,
                        &mut v,
                        ChaseConfig { max_rounds: 8, max_facts: 200_000, ..Default::default() },
                    )
                    .instance
                    .len()
                })
            })
        });
    }
}

fn main() {
    bddfc_bench::init_json("join");
    let (tuple_ns, batch_ns) = e13_kernel();
    tc_throughput();
    let speedup = tuple_ns / batch_ns;
    println!("join_kernel_speedup: {speedup:.2}x (e13, 1 thread, tuple/batch medians)");
    assert!(
        speedup >= 2.0,
        "batched join kernel must be at least 2x faster than the tuple \
         oracle on e13 (got {speedup:.2}x)"
    );
}
