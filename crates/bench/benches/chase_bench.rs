//! Criterion benches for the chase engine (experiments E1 and E13).

use bddfc_chase::{chase, ChaseConfig, ChaseVariant};
use bddfc_core::{parse_into, Vocabulary};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// E13 — chase throughput over random graphs, restricted vs. oblivious.
fn chase_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_throughput");
    group.sample_size(10);
    for nodes in [30usize, 100] {
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            group.bench_with_input(
                BenchmarkId::new(format!("{variant:?}"), nodes),
                &nodes,
                |b, &nodes| {
                    let mut voc = Vocabulary::new();
                    let db = bddfc_zoo::random_graph(&mut voc, nodes, nodes * 2, 42);
                    let (theory, _, _) = parse_into(
                        "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z).",
                        &mut voc,
                    )
                    .unwrap();
                    b.iter(|| {
                        let mut v = voc.clone();
                        chase(
                            &db,
                            &theory,
                            &mut v,
                            ChaseConfig { max_rounds: 3, max_facts: 2_000_000, variant },
                        )
                        .instance
                        .len()
                    });
                },
            );
        }
    }
    group.finish();
}

/// E1 — divergence of Example 1 on the triangle image, per prefix depth.
fn chase_divergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_divergence_example1");
    group.sample_size(10);
    for rounds in [6u32, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &rounds| {
            let prog = bddfc_zoo::example1();
            let mut voc = prog.voc.clone();
            let (_, mp, _) = parse_into("E(a,b). E(b,c). E(c,a).", &mut voc).unwrap();
            b.iter(|| {
                let mut v = voc.clone();
                chase(&mp, &prog.theory, &mut v, ChaseConfig::rounds(rounds))
                    .instance
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, chase_throughput, chase_divergence);
criterion_main!(benches);
