//! Benches for the chase engine (experiments E1 and E13), plus the
//! semi-naive work-ratio check: on Example 1's transitive-closure
//! program the semi-naive engine must attempt at least 2× fewer body
//! matches per run than the naive oracle.

use bddfc_bench::bench;
use bddfc_chase::{chase, ChaseConfig, ChaseStrategy, ChaseVariant};
use bddfc_core::{par, parse_into, parse_program, Vocabulary};

/// E13 — chase throughput over random graphs, restricted vs. oblivious.
fn chase_throughput() {
    for nodes in [30usize, 100] {
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let mut voc = Vocabulary::new();
            let db = bddfc_zoo::random_graph(&mut voc, nodes, nodes * 2, 42);
            let (theory, _, _) = parse_into(
                "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z).",
                &mut voc,
            )
            .unwrap();
            bench(&format!("chase_throughput/{variant:?}/{nodes}"), 10, || {
                let mut v = voc.clone();
                chase(
                    &db,
                    &theory,
                    &mut v,
                    ChaseConfig {
                        max_rounds: 3,
                        max_facts: 2_000_000,
                        variant,
                        ..Default::default()
                    },
                )
                .instance
                .len()
            });
        }
    }
}

/// E1 — divergence of Example 1 on the triangle image, per prefix depth.
fn chase_divergence() {
    for rounds in [6u32, 12] {
        let prog = bddfc_zoo::example1();
        let mut voc = prog.voc.clone();
        let (_, mp, _) = parse_into("E(a,b). E(b,c). E(c,a).", &mut voc).unwrap();
        bench(&format!("chase_divergence_example1/{rounds}"), 10, || {
            let mut v = voc.clone();
            chase(&mp, &prog.theory, &mut v, ChaseConfig::rounds(rounds))
                .instance
                .len()
        });
    }
}

/// Semi-naive vs naive trigger counts on Example 1's transitive-closure
/// rule over a chain — the engine's own work metric, asserted ≥2×.
fn seminaive_work_ratio() {
    let edges: String = (1..=24).map(|i| format!("E(v{i},v{}). ", i + 1)).collect();
    let prog =
        parse_program(&format!("E(X,Y), E(Y,Z) -> E(X,Z). {edges}")).unwrap();
    let mut totals = [0u64; 2];
    for (slot, strategy) in [ChaseStrategy::SemiNaive, ChaseStrategy::Naive]
        .into_iter()
        .enumerate()
    {
        let mut voc = prog.voc.clone();
        let res = chase(
            &prog.instance,
            &prog.theory,
            &mut voc,
            ChaseConfig::default().with_strategy(strategy),
        );
        totals[slot] = res.stats.total_body_matches();
        bench(&format!("seminaive_ratio/{strategy:?}"), 3, || {
            let mut v = prog.voc.clone();
            chase(
                &prog.instance,
                &prog.theory,
                &mut v,
                ChaseConfig::default().with_strategy(strategy),
            )
            .instance
            .len()
        });
    }
    let [semi, naive] = totals;
    println!("seminaive_ratio: {naive} naive vs {semi} semi-naive body matches");
    assert!(
        naive >= 2 * semi,
        "semi-naive must do at least 2x fewer body matches ({naive} vs {semi})"
    );
}

/// Multi-thread speedup on the E13 throughput workload: 4 worker threads
/// must beat 1 thread by ≥1.3× on the median. Skipped with a notice on
/// machines with fewer than 4 cores, where the comparison is meaningless.
fn thread_speedup() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        println!(
            "chase_thread_speedup: SKIPPED — {cores} core(s) available, \
             need >= 4 for the 4-vs-1 thread comparison"
        );
        return;
    }
    let mut voc = Vocabulary::new();
    let db = bddfc_zoo::random_graph(&mut voc, 300, 600, 42);
    let (theory, _, _) = parse_into(
        "E(X,Y) -> exists Z . E(Y,Z). E(X,Y), E(Y,Z) -> R(X,Z).",
        &mut voc,
    )
    .unwrap();
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            bench(&format!("chase_thread_speedup/{threads}"), 5, || {
                let mut v = voc.clone();
                chase(
                    &db,
                    &theory,
                    &mut v,
                    ChaseConfig { max_rounds: 3, max_facts: 2_000_000, ..Default::default() },
                )
                .instance
                .len()
            })
        })
    };
    let single = run(1);
    let quad = run(4);
    let (m1, m4) = (single.median().as_nanos() as f64, quad.median().as_nanos() as f64);
    println!(
        "chase_thread_speedup: {:.2}x (1 thread {:?}, 4 threads {:?})",
        m1 / m4,
        single.median(),
        quad.median()
    );
    assert!(
        m1 >= 1.3 * m4,
        "expected a >=1.3x median speedup with 4 threads over 1, got {:.2}x",
        m1 / m4
    );
}

fn main() {
    bddfc_bench::init_json("chase");
    chase_throughput();
    chase_divergence();
    seminaive_work_ratio();
    thread_speedup();
}
