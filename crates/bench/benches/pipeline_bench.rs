//! Benches for the end-to-end Theorem 2 pipeline and the bounded model
//! finder (experiments E8 and E9).

use bddfc_bench::bench;
use bddfc_chase::countermodel;
use bddfc_core::parse_query;
use bddfc_finite::{finite_countermodel, FcConfig};

/// E8 — the full FC pipeline on the paper's theories.
fn fc_pipeline() {
    let cases = [
        ("chain", bddfc_zoo::chain_theory(), "E(X,X)"),
        ("example7", bddfc_zoo::example7(), "R(X,Y), E(X,Y)"),
    ];
    for (name, prog, q_src) in cases {
        let mut voc = prog.voc.clone();
        let q = parse_query(q_src, &mut voc).unwrap();
        bench(&format!("fc_pipeline/{name}"), 10, || {
            let mut v = voc.clone();
            finite_countermodel(&prog.instance, &prog.theory, &q, &mut v, FcConfig::default())
                .model()
                .map(|m| m.model_size)
        });
    }
}

/// E9 — exhaustive bounded model search on the notorious example.
fn model_finder() {
    for size in [3usize, 4] {
        let prog = bddfc_zoo::notorious();
        let q = prog.queries[0].clone();
        bench(&format!("model_finder_notorious/size{size}"), 10, || {
            let mut v = prog.voc.clone();
            countermodel(&prog.instance, &prog.theory, &mut v, &q, size)
        });
    }
}

fn main() {
    bddfc_bench::init_json("pipeline");
    fc_pipeline();
    model_finder();
}
