//! Criterion benches for the end-to-end Theorem 2 pipeline and the
//! bounded model finder (experiments E8 and E9).

use bddfc_chase::countermodel;
use bddfc_core::parse_query;
use bddfc_finite::{finite_countermodel, FcConfig};
use criterion::{criterion_group, criterion_main, Criterion};

/// E8 — the full FC pipeline on the paper's theories.
fn fc_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fc_pipeline");
    group.sample_size(10);
    let cases = [
        ("chain", bddfc_zoo::chain_theory(), "E(X,X)"),
        ("example7", bddfc_zoo::example7(), "R(X,Y), E(X,Y)"),
    ];
    for (name, prog, q_src) in cases {
        group.bench_function(name, |b| {
            let mut voc = prog.voc.clone();
            let q = parse_query(q_src, &mut voc).unwrap();
            b.iter(|| {
                let mut v = voc.clone();
                finite_countermodel(&prog.instance, &prog.theory, &q, &mut v, FcConfig::default())
                    .model()
                    .map(|m| m.model_size)
            });
        });
    }
    group.finish();
}

/// E9 — exhaustive bounded model search on the notorious example.
fn model_finder(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_finder_notorious");
    group.sample_size(10);
    for size in [3usize, 4] {
        group.bench_function(format!("size{size}"), |b| {
            let prog = bddfc_zoo::notorious();
            let q = prog.queries[0].clone();
            b.iter(|| {
                let mut v = prog.voc.clone();
                countermodel(&prog.instance, &prog.theory, &mut v, &q, size)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fc_pipeline, model_finder);
criterion_main!(benches);
