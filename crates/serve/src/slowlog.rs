//! The slow-query log: a bounded ring of JSONL entries for requests
//! that crossed the `--slow-ms` threshold.
//!
//! Every slow request is recorded with its full telemetry capture — the
//! request's span tree (parent-linked, as recorded by a per-request
//! [`Memory`] sink teed onto the session sink) and per-rule attribution
//! aggregated from the maintenance chase's keyed `("rule", i)` events —
//! so a slow insert can be blamed on the rule that did the work without
//! re-running it under a profiler. Entries are pre-rendered one-line
//! JSON (`{"schema":1,"req":...,...}`), dumped oldest-first by the
//! `slowlog` protocol command; once the ring is full the oldest entry
//! is evicted and counted in [`SlowLog::dropped`].
//!
//! ## The non-panicking writer
//!
//! [`bddfc_core::obs::JsonLines`] panics on I/O errors — right for a
//! trace you asked for explicitly, wrong for a diagnostic side-channel:
//! a full disk must not take the service down. When a stream writer is
//! attached ([`SlowLog::set_writer`], the `--slow-log FILE` flag), each
//! entry is *also* appended there through [`LossyWriter`], which
//! swallows I/O errors and counts them ([`LossyWriter::failures`],
//! exported as the `bddfc_slowlog_write_failures_total` metric) instead
//! of panicking or silently lying.

use bddfc_core::obs::{json_escape, Memory, OwnedEvent, SCHEMA_VERSION};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A JSONL writer that never panics: I/O errors increment a counter
/// and drop the line. The failure counter is shared, so it stays
/// readable (for metrics export) while the writer is owned by the log.
pub struct LossyWriter {
    writer: Mutex<Box<dyn Write + Send>>,
    failures: Arc<AtomicU64>,
}

impl LossyWriter {
    /// Wraps `writer`; each [`LossyWriter::write_line`] appends one
    /// `\n`-terminated line and flushes.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        LossyWriter { writer: Mutex::new(writer), failures: Arc::new(AtomicU64::new(0)) }
    }

    /// A shared handle to the failure counter.
    pub fn failures_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.failures)
    }

    /// Total write attempts that failed (each counted once, whether the
    /// write or the flush failed).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Writes one line; on any I/O error, counts it and returns.
    pub fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("slowlog writer lock poisoned");
        let ok = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_ok();
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Ring {
    entries: VecDeque<String>,
    dropped: u64,
}

/// The bounded slow-query log (see the module docs).
pub struct SlowLog {
    threshold_ns: u64,
    cap: usize,
    ring: Mutex<Ring>,
    writer: Option<LossyWriter>,
}

impl SlowLog {
    /// A log recording requests at or above `threshold_ms`, keeping at
    /// most `cap` entries.
    pub fn new(threshold_ms: u64, cap: usize) -> Self {
        SlowLog {
            threshold_ns: threshold_ms.saturating_mul(1_000_000),
            cap: cap.max(1),
            ring: Mutex::new(Ring { entries: VecDeque::new(), dropped: 0 }),
            writer: None,
        }
    }

    /// Attaches a stream writer: every future entry is also appended
    /// there as one JSONL line (lossily — see [`LossyWriter`]).
    pub fn set_writer(&mut self, writer: Box<dyn Write + Send>) {
        self.writer = Some(LossyWriter::new(writer));
    }

    /// The recording threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Entries currently resident in the ring.
    pub fn len(&self) -> u64 {
        self.ring.lock().expect("slowlog lock poisoned").entries.len() as u64
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries the ring evicted to stay within its bound.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("slowlog lock poisoned").dropped
    }

    /// Stream-writer failures so far (0 when no writer is attached).
    pub fn write_failures(&self) -> u64 {
        self.writer.as_ref().map_or(0, |w| w.failures())
    }

    /// Snapshot of the resident entries, oldest first.
    pub fn entries(&self) -> Vec<String> {
        self.ring.lock().expect("slowlog lock poisoned").entries.iter().cloned().collect()
    }

    /// Records one slow request from its per-request telemetry capture.
    pub fn record(
        &self,
        req: u64,
        command: &str,
        wall_ns: u64,
        reply: Option<&str>,
        capture: &Memory,
    ) {
        let entry = render_entry(req, command, wall_ns, reply, capture);
        if let Some(w) = &self.writer {
            w.write_line(&entry);
        }
        let mut ring = self.ring.lock().expect("slowlog lock poisoned");
        if ring.entries.len() == self.cap {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(entry);
    }
}

/// Renders one slow-query entry as a single JSON line: request id,
/// command, wall time, the reply's first line, the captured span tree
/// (parent-linked, ids local to the request) and per-rule attribution
/// aggregated from `("rule", i)`-keyed events.
pub fn render_entry(
    req: u64,
    command: &str,
    wall_ns: u64,
    reply: Option<&str>,
    capture: &Memory,
) -> String {
    let mut out = format!(
        "{{\"schema\":{SCHEMA_VERSION},\"req\":{req},\"command\":\"{}\",\"wall_ns\":{wall_ns}",
        json_escape(command)
    );
    if let Some(r) = reply {
        let first = r.lines().next().unwrap_or("");
        let _ = write!(out, ",\"reply\":\"{}\"", json_escape(first));
    }
    out.push_str(",\"spans\":[");
    let mut sep = "";
    for s in capture.spans() {
        let _ = write!(
            out,
            "{sep}{{\"id\":{},\"parent\":{},\"engine\":\"{}\",\"name\":\"{}\"",
            s.id,
            s.parent,
            json_escape(s.engine),
            json_escape(s.name)
        );
        if let Some((k, v)) = s.key {
            let _ = write!(out, ",\"{}\":{v}", json_escape(k));
        }
        let _ = write!(out, ",\"wall_ns\":{}}}", s.wall_ns());
        sep = ",";
    }
    out.push_str("],\"rules\":[");
    let mut rules: BTreeMap<u64, RuleAgg> = BTreeMap::new();
    for e in capture.events() {
        if let Some(("rule", idx)) = e.key {
            let agg = rules.entry(idx).or_default();
            agg.events += 1;
            agg.fired += field(&e, "triggers_fired");
            agg.wall_ns += e.gauge("wall_ns").unwrap_or(0);
        }
    }
    let mut sep = "";
    for (idx, agg) in &rules {
        let _ = write!(
            out,
            "{sep}{{\"rule\":{idx},\"events\":{},\"fired\":{},\"wall_ns\":{}}}",
            agg.events, agg.fired, agg.wall_ns
        );
        sep = ",";
    }
    out.push_str("]}");
    out
}

#[derive(Default)]
struct RuleAgg {
    events: u64,
    fired: u64,
    wall_ns: u64,
}

fn field(e: &OwnedEvent, name: &str) -> u64 {
    e.field(name).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::obs::{Event, EventSink};

    fn capture_with_spans_and_rules() -> Memory {
        let m = Memory::new(64);
        let run = m.span_open("serve", "request", 0, Some(("req", 1)));
        let round = m.span_open("chase", "round", run, Some(("round", 1)));
        m.record(Event {
            engine: "chase",
            name: "trigger",
            parent: round,
            key: Some(("rule", 0)),
            fields: &[("triggers_fired", 2)],
            gauges: &[("wall_ns", 500)],
        });
        m.record(Event {
            engine: "chase",
            name: "trigger",
            parent: round,
            key: Some(("rule", 0)),
            fields: &[("triggers_fired", 1)],
            gauges: &[("wall_ns", 300)],
        });
        m.span_close(round);
        m.span_close(run);
        m
    }

    #[test]
    fn entries_carry_span_tree_and_rule_attribution() {
        let m = capture_with_spans_and_rules();
        let entry = render_entry(7, "insert", 9_000_000, Some("ok epoch=2"), &m);
        assert!(entry.starts_with("{\"schema\":1,\"req\":7,\"command\":\"insert\",\"wall_ns\":9000000"), "{entry}");
        assert!(entry.contains("\"reply\":\"ok epoch=2\""), "{entry}");
        assert!(entry.contains("\"name\":\"request\""), "{entry}");
        assert!(entry.contains("\"parent\":1"), "span tree must be parent-linked: {entry}");
        assert!(entry.contains("{\"rule\":0,\"events\":2,\"fired\":3,\"wall_ns\":800}"), "{entry}");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let log = SlowLog::new(0, 2);
        let m = Memory::new(4);
        for i in 0..5 {
            log.record(i, "query", 100 + i, Some("true"), &m);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let entries = log.entries();
        assert!(entries[0].contains("\"req\":3") && entries[1].contains("\"req\":4"), "{entries:?}");
    }

    struct FailingWriter;
    impl Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::Other, "disk full"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lossy_writer_counts_failures_instead_of_panicking() {
        let mut log = SlowLog::new(0, 8);
        log.set_writer(Box::new(FailingWriter));
        let m = Memory::new(4);
        log.record(1, "query", 5, None, &m);
        log.record(2, "query", 5, None, &m);
        assert_eq!(log.write_failures(), 2);
        // The ring still recorded both entries.
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn working_writer_streams_jsonl() {
        // Shared buffer so we can inspect what the owned writer wrote.
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let mut log = SlowLog::new(0, 8);
        log.set_writer(Box::new(shared.clone()));
        log.record(1, "query", 42, Some("true"), &Memory::new(4));
        assert_eq!(log.write_failures(), 0);
        let written = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        assert!(written.ends_with("}\n"), "{written}");
        assert!(written.contains("\"req\":1"), "{written}");
    }
}
