//! `bddfc-serve` — serve a Datalog∃ program incrementally.
//!
//! ```text
//! bddfc-serve [PROGRAM.dlg] [--oracle] [--tcp ADDR]
//!             [--max-rounds N] [--max-facts N] [--deny-unbounded]
//!             [--metrics-tcp ADDR] [--no-metrics]
//!             [--slow-ms N] [--slow-log FILE]
//! ```
//!
//! Loads `PROGRAM.dlg` (rules + initial facts; optional — without it the
//! service starts empty and rule-free), chases the initial facts, then
//! speaks the line protocol of `bddfc_serve::proto` on stdin/stdout.
//! With `--tcp ADDR` it instead listens on `ADDR` and serves each
//! connection as its own session over one shared instance — reads are
//! snapshot-isolated, so sessions never observe each other's
//! half-applied mutations.
//!
//! `--oracle` replays every query through a from-scratch chase and turns
//! decided disagreements into `err oracle-mismatch ...` responses (the
//! differential-testing mode `ci.sh` smokes).
//!
//! At load the program runs through `bddfc-analyze`. When the analyzer
//! certifies termination (weak acyclicity) and `--max-rounds` was not
//! given, the round budget is sized from the certified bound — raised
//! to `round_bound + 1` when that exceeds the default, so a certified
//! program always closes to fixpoint. When no certificate exists the
//! service warns on stderr (mutations may stop at the budget), or
//! refuses to start under `--deny-unbounded`. The `analyze` protocol
//! command returns the full analysis as one JSON line.
//!
//! `--metrics-tcp ADDR` additionally serves Prometheus text exposition
//! over a hand-rolled HTTP/1.0 endpoint on `ADDR` (`0` or
//! `127.0.0.1:0` for an ephemeral port; the bound address is announced
//! on stderr as `bddfc-serve: metrics on ADDR`). `--no-metrics` turns
//! the registry off entirely. `--slow-ms N` arms the slow-query log at
//! an `N`-millisecond threshold (dump it with the `slowlog` command);
//! `--slow-log FILE` also streams every slow entry to `FILE` as JSONL,
//! lossily — write failures are counted, never fatal.

use bddfc_core::parser::Program;
use bddfc_serve::{run_session, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-serve [PROGRAM.dlg] [--oracle] [--tcp ADDR] \
         [--max-rounds N] [--max-facts N] [--deny-unbounded] \
         [--metrics-tcp ADDR] [--no-metrics] [--slow-ms N] [--slow-log FILE]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // Fail misconfigured env knobs loudly at startup, not mid-session on
    // the first chase round.
    let _ = bddfc_core::join_mode();
    let _ = bddfc_core::par::num_threads();

    let mut program_path: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut metrics_tcp: Option<String> = None;
    let mut slow_log: Option<String> = None;
    let mut deny_unbounded = false;
    let mut max_rounds_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--oracle" => config.oracle = true,
            "--deny-unbounded" => deny_unbounded = true,
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-tcp" => metrics_tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--no-metrics" => config.metrics = false,
            "--slow-ms" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.slow_ms = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--slow-log" => slow_log = Some(args.next().unwrap_or_else(|| usage())),
            "--max-rounds" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.max_rounds = v.parse().unwrap_or_else(|_| usage());
                max_rounds_set = true;
            }
            "--max-facts" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.max_facts = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if program_path.replace(other.to_string()).is_some() {
                    usage();
                }
            }
        }
    }

    let program = match &program_path {
        None => Program {
            voc: bddfc_core::Vocabulary::new(),
            theory: bddfc_core::Theory::default(),
            instance: bddfc_core::Instance::new(),
            queries: Vec::new(),
        },
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bddfc-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match bddfc_core::parse_program(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bddfc-serve: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // Pre-flight static analysis: refuse (or warn) when termination is
    // not certified, and size the default round budget from the
    // certified bound. The +1 is the engine's final empty round that
    // *observes* the fixpoint.
    let analysis = bddfc_analyze::analyze(&program);
    match &analysis.certificate {
        Some(cert) => {
            if !max_rounds_set {
                let need =
                    u32::try_from(cert.round_bound.saturating_add(1)).unwrap_or(u32::MAX);
                if need > config.max_rounds {
                    eprintln!(
                        "bddfc-serve: round budget raised to {need} from the \
                         certified static bound"
                    );
                    config.max_rounds = need;
                }
            }
        }
        None => {
            if deny_unbounded {
                eprintln!(
                    "bddfc-serve: no termination certificate (not provably weakly \
                     acyclic); refusing to start under --deny-unbounded"
                );
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bddfc-serve: no termination certificate (not provably weakly \
                 acyclic); mutations may stop at the round/fact budget"
            );
        }
    }

    let mut server = Server::new(&program, config);

    if let Some(path) = &slow_log {
        if config.slow_ms.is_none() {
            eprintln!("bddfc-serve: --slow-log has no effect without --slow-ms");
        }
        match std::fs::OpenOptions::new().create(true).append(true).open(path) {
            Ok(file) => server.set_slow_writer(Box::new(file)),
            Err(e) => {
                eprintln!("bddfc-serve: cannot open slow log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The metrics endpoint runs on a detached thread sharing the server
    // via Arc; it dies with the process.
    let server = std::sync::Arc::new(server);
    if let Some(addr) = &metrics_tcp {
        // `--metrics-tcp 0` is shorthand for an ephemeral localhost port.
        let addr = if addr == "0" { "127.0.0.1:0" } else { addr.as_str() };
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("bddfc-serve: cannot bind metrics endpoint {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match listener.local_addr() {
            Ok(bound) => eprintln!("bddfc-serve: metrics on {bound}"),
            Err(e) => eprintln!("bddfc-serve: metrics on {addr} (local_addr failed: {e})"),
        }
        let srv = std::sync::Arc::clone(&server);
        std::thread::spawn(move || bddfc_serve::http::serve_metrics(listener, &*srv));
    }

    match tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = run_session(&*server, stdin.lock(), stdout.lock()) {
                eprintln!("bddfc-serve: session error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bddfc-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("bddfc-serve: listening on {addr}");
            std::thread::scope(|scope| {
                for conn in listener.incoming() {
                    match conn {
                        Ok(stream) => {
                            let server = &*server;
                            scope.spawn(move || {
                                let reader = BufReader::new(&stream);
                                let mut writer = &stream;
                                let _ = run_session(server, reader, &mut writer);
                                let _ = writer.flush();
                            });
                        }
                        Err(e) => eprintln!("bddfc-serve: accept failed: {e}"),
                    }
                }
            });
        }
    }
    ExitCode::SUCCESS
}
