//! `bddfc-serve` — serve a Datalog∃ program incrementally.
//!
//! ```text
//! bddfc-serve [PROGRAM.dlg] [--oracle] [--tcp ADDR]
//!             [--max-rounds N] [--max-facts N]
//! ```
//!
//! Loads `PROGRAM.dlg` (rules + initial facts; optional — without it the
//! service starts empty and rule-free), chases the initial facts, then
//! speaks the line protocol of `bddfc_serve::proto` on stdin/stdout.
//! With `--tcp ADDR` it instead listens on `ADDR` and serves each
//! connection as its own session over one shared instance — reads are
//! snapshot-isolated, so sessions never observe each other's
//! half-applied mutations.
//!
//! `--oracle` replays every query through a from-scratch chase and turns
//! decided disagreements into `err oracle-mismatch ...` responses (the
//! differential-testing mode `ci.sh` smokes).

use bddfc_core::parser::Program;
use bddfc_serve::{run_session, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bddfc-serve [PROGRAM.dlg] [--oracle] [--tcp ADDR] \
         [--max-rounds N] [--max-facts N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // Fail misconfigured env knobs loudly at startup, not mid-session on
    // the first chase round.
    let _ = bddfc_core::join_mode();
    let _ = bddfc_core::par::num_threads();

    let mut program_path: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut tcp: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--oracle" => config.oracle = true,
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--max-rounds" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.max_rounds = v.parse().unwrap_or_else(|_| usage());
            }
            "--max-facts" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.max_facts = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if program_path.replace(other.to_string()).is_some() {
                    usage();
                }
            }
        }
    }

    let program = match &program_path {
        None => Program {
            voc: bddfc_core::Vocabulary::new(),
            theory: bddfc_core::Theory::default(),
            instance: bddfc_core::Instance::new(),
            queries: Vec::new(),
        },
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bddfc-serve: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match bddfc_core::parse_program(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("bddfc-serve: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let server = Server::new(&program, config);

    match tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = run_session(&server, stdin.lock(), stdout.lock()) {
                eprintln!("bddfc-serve: session error: {e}");
                return ExitCode::FAILURE;
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("bddfc-serve: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("bddfc-serve: listening on {addr}");
            std::thread::scope(|scope| {
                for conn in listener.incoming() {
                    match conn {
                        Ok(stream) => {
                            let server = &server;
                            scope.spawn(move || {
                                let reader = BufReader::new(&stream);
                                let mut writer = &stream;
                                let _ = run_session(server, reader, &mut writer);
                                let _ = writer.flush();
                            });
                        }
                        Err(e) => eprintln!("bddfc-serve: accept failed: {e}"),
                    }
                }
            });
        }
    }
    ExitCode::SUCCESS
}
