//! The line-oriented serve protocol: one command in, one (usually
//! one-line) response out.
//!
//! Grammar, one command per line:
//!
//! ```text
//! insert <facts>      e.g.  insert E(a,b). E(b,c).
//! retract <facts>     e.g.  retract E(a,b).
//! query <body>        e.g.  query E(X,Y), E(Y,X)
//! explain <fact>      e.g.  explain E(a,c)
//! analyze
//! stats
//! metrics
//! slowlog
//! quit
//! ```
//!
//! Blank lines and lines starting with `#` are ignored (so scripted
//! sessions can be annotated). Responses are deterministic pure
//! functions of the session history — no timestamps, no machine state —
//! which is what makes golden-transcript testing and the
//! serve-vs-scratch differential possible. The two exceptions carry the
//! service's *timing* telemetry and say so up front: `metrics` isolates
//! every timing-derived datum in one trailing `"timing"` object (the
//! line's deterministic prefix keeps the contract), and `slowlog` dumps
//! wall-clock slow-query entries, which are timing through and through.

/// One parsed protocol command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Add base facts (the payload is Datalog∃ fact syntax).
    Insert(String),
    /// Remove base facts.
    Retract(String),
    /// Evaluate one conjunctive-query body against the current epoch.
    Query(String),
    /// Print the derivation tree of one resident fact.
    Explain(String),
    /// Report the static analysis of the loaded program (termination
    /// certificate, cost model, perf lints) as one JSON line.
    Analyze,
    /// Report service counters as one schema-versioned JSON line.
    Stats,
    /// Dump the full metrics snapshot as one schema-versioned JSON line
    /// (deterministic prefix, trailing `"timing"` object).
    Metrics,
    /// Dump the slow-query log, oldest first (`ok n=K` then K JSONL
    /// lines).
    Slowlog,
    /// End the session.
    Quit,
    /// Blank line or comment: no command, no response.
    Nop,
}

/// Parses one protocol line. Unknown verbs and empty payloads are
/// errors naming the offending input.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let s = line.trim();
    if s.is_empty() || s.starts_with('#') {
        return Ok(Command::Nop);
    }
    let (verb, rest) = match s.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (s, ""),
    };
    let payload_of = |cmd: &str| -> Result<String, String> {
        if rest.is_empty() {
            Err(format!("`{cmd}` needs a payload"))
        } else {
            Ok(rest.to_string())
        }
    };
    match verb {
        "insert" => Ok(Command::Insert(payload_of("insert")?)),
        "retract" => Ok(Command::Retract(payload_of("retract")?)),
        "query" => Ok(Command::Query(payload_of("query")?)),
        "explain" => Ok(Command::Explain(payload_of("explain")?)),
        "analyze" => Ok(Command::Analyze),
        "stats" => Ok(Command::Stats),
        "metrics" => Ok(Command::Metrics),
        "slowlog" => Ok(Command::Slowlog),
        "quit" => Ok(Command::Quit),
        other => Err(format!(
            "unknown command `{other}` \
             (expected insert/retract/query/explain/analyze/stats/metrics/slowlog/quit)"
        )),
    }
}

/// Terminates a fact/rule payload: the parser wants a trailing `.`,
/// interactive users routinely omit it.
pub fn ensure_terminated(payload: &str) -> String {
    let t = payload.trim();
    if t.ends_with('.') {
        t.to_string()
    } else {
        format!("{t}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command("insert E(a,b)."),
            Ok(Command::Insert("E(a,b).".into()))
        );
        assert_eq!(
            parse_command("  query E(X,Y), E(Y,X)  "),
            Ok(Command::Query("E(X,Y), E(Y,X)".into()))
        );
        assert_eq!(parse_command("analyze"), Ok(Command::Analyze));
        assert_eq!(parse_command("stats"), Ok(Command::Stats));
        assert_eq!(parse_command("metrics"), Ok(Command::Metrics));
        assert_eq!(parse_command("slowlog"), Ok(Command::Slowlog));
        assert_eq!(parse_command("quit"), Ok(Command::Quit));
        assert_eq!(parse_command(""), Ok(Command::Nop));
        assert_eq!(parse_command("# a comment"), Ok(Command::Nop));
    }

    #[test]
    fn unknown_verbs_and_empty_payloads_are_named_errors() {
        let err = parse_command("frobnicate E(a,b)").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        let err = parse_command("insert").unwrap_err();
        assert!(err.contains("insert"), "{err}");
    }

    #[test]
    fn payloads_get_terminated_once() {
        assert_eq!(ensure_terminated("E(a,b)"), "E(a,b).");
        assert_eq!(ensure_terminated("E(a,b)."), "E(a,b).");
        assert_eq!(ensure_terminated(" E(a,b). E(b,c). "), "E(a,b). E(b,c).");
    }
}
