//! Epoched snapshots: how readers get snapshot isolation.
//!
//! The writer (the single mutation path in [`crate::Server`]) owns a
//! mutable working state — the *tail*. At each commit boundary it seals
//! the tail into an immutable [`Epoch`] and publishes it through the
//! [`EpochStore`]; readers pin the current epoch with one
//! `Arc`-clone under a read lock and evaluate against it lock-free for
//! as long as they like. A query therefore observes either the state
//! before a mutation or after it — never a half-applied round, and
//! never a torn instance, because an [`Epoch`]'s instance is immutable
//! from the moment it is published.
//!
//! The sealed state also records its *segment boundaries*: each
//! successful insert commit seals the facts it appended as one more
//! segment (the fact store is append-only, so a segment is a contiguous
//! fact range and `segments` is a cumulative-length vector). A
//! retraction rebuilds the store and reseals it as a single segment.
//! Readers can use the boundaries to attribute facts to commits; the
//! `stats` protocol command reports the segment count.

use bddfc_chase::BudgetExhausted;
use bddfc_core::{Instance, Vocabulary};
use std::sync::{Arc, RwLock};

/// One published, immutable snapshot of the service state.
#[derive(Clone)]
pub struct Epoch {
    /// Monotone epoch id: 0 is the pre-load empty state, each committed
    /// mutation bumps it by one.
    pub id: u64,
    /// The vocabulary as of this epoch (queries parse against a clone,
    /// so reader-side interning never leaks into the shared state).
    pub voc: Arc<Vocabulary>,
    /// The chased instance as of this epoch.
    pub instance: Arc<Instance>,
    /// Cumulative sealed-segment boundaries into `instance.facts()`:
    /// `facts()[segments[i-1]..segments[i]]` is the i-th sealed batch
    /// (with an implicit leading 0). The last entry equals
    /// `instance.len()`.
    pub segments: Arc<Vec<usize>>,
    /// Whether the instance is at a fixpoint of the theory — required
    /// for a non-witnessed query to read as certainly false.
    pub complete: bool,
    /// `Some` iff `!complete`: which budget stopped the closure.
    pub exhausted: Option<BudgetExhausted>,
}

impl Epoch {
    /// The empty epoch 0 over an initial vocabulary.
    pub fn empty(voc: Vocabulary) -> Self {
        Epoch {
            id: 0,
            voc: Arc::new(voc),
            instance: Arc::new(Instance::new()),
            segments: Arc::new(vec![0]),
            complete: true,
            exhausted: None,
        }
    }
}

/// The single-writer/multi-reader publication point for [`Epoch`]s.
pub struct EpochStore {
    current: RwLock<Arc<Epoch>>,
}

impl EpochStore {
    /// A store whose current epoch is `initial`.
    pub fn new(initial: Epoch) -> Self {
        EpochStore { current: RwLock::new(Arc::new(initial)) }
    }

    /// Pins the current epoch: one `Arc` clone under a read lock. The
    /// returned snapshot stays valid (and immutable) however many
    /// epochs are published after it.
    pub fn snapshot(&self) -> Arc<Epoch> {
        self.current.read().expect("epoch lock poisoned").clone()
    }

    /// Publishes `epoch` as the new current state. Called only by the
    /// writer, after the working state is fully closed — readers never
    /// see intermediate rounds.
    pub fn publish(&self, epoch: Epoch) {
        *self.current.write().expect("epoch lock poisoned") = Arc::new(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_survive_later_publishes() {
        let store = EpochStore::new(Epoch::empty(Vocabulary::new()));
        let pinned = store.snapshot();
        assert_eq!(pinned.id, 0);
        let mut voc = Vocabulary::new();
        let p = voc.pred("P", 1);
        let c = voc.constant("c");
        let mut inst = Instance::new();
        inst.insert(bddfc_core::Fact::new(p, vec![c]));
        store.publish(Epoch {
            id: 1,
            voc: Arc::new(voc),
            instance: Arc::new(inst),
            segments: Arc::new(vec![1]),
            complete: true,
            exhausted: None,
        });
        // The old pin still reads the old state; a fresh pin the new.
        assert_eq!(pinned.instance.len(), 0);
        let fresh = store.snapshot();
        assert_eq!(fresh.id, 1);
        assert_eq!(fresh.instance.len(), 1);
        assert_eq!(*fresh.segments, vec![1]);
    }
}
