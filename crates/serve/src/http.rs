//! A hand-rolled HTTP/1.0 metrics endpoint: `std::net::TcpListener`
//! only, no dependencies, serving Prometheus text exposition format.
//!
//! The endpoint implements exactly what a scraper needs and nothing
//! more: it reads one request line (the method is checked, the path is
//! not — every `GET` is a scrape), drains headers until the blank line,
//! and answers with a complete `HTTP/1.0` response carrying
//! `Content-Type: text/plain; version=0.0.4` and a `Content-Length`.
//! `HTTP/1.0` semantics mean the connection closes after one exchange —
//! no keep-alive state machine, which is why the whole server fits in a
//! page of std.
//!
//! [`serve_metrics`] loops on `accept` forever; the binary runs it on a
//! detached thread that dies with the process.

use crate::Server;
use bddfc_core::obs::EventSink;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Serves Prometheus scrapes from `listener` forever. Each connection
/// is one request/response exchange; malformed requests get a 4xx and
/// the loop continues. Accept errors are logged to stderr and skipped.
pub fn serve_metrics<S: EventSink>(listener: TcpListener, server: &Server<'_, S>) {
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                if let Err(e) = handle_scrape(stream, server) {
                    eprintln!("bddfc-serve: metrics request failed: {e}");
                }
            }
            Err(e) => eprintln!("bddfc-serve: metrics accept failed: {e}"),
        }
    }
}

/// Handles one scrape exchange on an accepted connection.
pub fn handle_scrape<S: EventSink>(
    stream: TcpStream,
    server: &Server<'_, S>,
) -> std::io::Result<()> {
    // A wedged client must not wedge the endpoint.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(&stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line (HTTP/1.0 requests may omit
    // them entirely — an EOF here is fine too).
    let mut header = String::new();
    loop {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut out = &stream;
    if !request_line.starts_with("GET ") {
        return respond(&mut out, "405 Method Not Allowed", "text/plain", "only GET is served\n");
    }
    match server.metrics_snapshot() {
        None => respond(&mut out, "503 Service Unavailable", "text/plain", "metrics disabled\n"),
        Some(snap) => respond(
            &mut out,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &snap.to_prometheus(),
        ),
    }
}

fn respond(out: &mut impl Write, status: &str, content_type: &str, body: &str) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{transcript, ServeConfig};
    use bddfc_core::parse_program;
    use std::io::Read;
    use std::sync::Arc;

    fn scrape(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn scrapes_expose_request_counters() {
        let prog = parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c).",
        )
        .unwrap();
        let server = Arc::new(Server::new(&prog, ServeConfig::default()));
        transcript(&server, "query E(a,c)\nquery E(a,b)\n");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        std::thread::spawn(move || serve_metrics(listener, &*srv));

        let response = scrape(addr, "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("Content-Type: text/plain; version=0.0.4"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE bddfc_requests_total counter"), "{body}");
        assert!(body.contains("bddfc_requests_total{command=\"query\"} 2"), "{body}");
        // Content-Length matches the body exactly (HTTP/1.0 scrapers
        // trust it).
        let len: usize = response
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());

        // Non-GET requests are refused but do not kill the endpoint.
        let bad = scrape(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.0 405"), "{bad}");
        let again = scrape(addr, "GET / HTTP/1.0\r\n\r\n");
        assert!(again.starts_with("HTTP/1.0 200"), "{again}");
    }

    #[test]
    fn disabled_metrics_scrape_is_503() {
        let prog = parse_program("E(a,b).").unwrap();
        let config = ServeConfig { metrics: false, ..ServeConfig::default() };
        let server = Arc::new(Server::new(&prog, config));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let srv = Arc::clone(&server);
        std::thread::spawn(move || serve_metrics(listener, &*srv));
        let response = scrape(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 503"), "{response}");
    }
}
