//! # bddfc-serve — the incremental chase service
//!
//! A long-running engine that keeps a chased instance *resident* and
//! answers certain-answer queries without re-chasing from scratch on
//! every call (ROADMAP item 1):
//!
//! * **Inserts** are semi-naive delta rounds: the new facts become the
//!   next delta batch and only rules whose bodies can touch them
//!   re-fire ([`bddfc_chase::IncrementalChase`], resuming the engine's
//!   `ChaseStepper`). Rounds already applied are never re-run.
//! * **Retracts** are DRed-style over-delete/re-derive backed by the
//!   recorded derivations (`bddfc_chase::trace::Derivation`).
//! * **Reads** are snapshot-isolated: the writer publishes immutable
//!   [`epoch::Epoch`]s at commit boundaries and queries evaluate
//!   against a pinned epoch lock-free — a query never observes a
//!   half-applied round ([`epoch`]).
//!
//! The service speaks the line-oriented protocol in [`proto`]
//! (stdin/stdout by default, TCP behind a flag in the `bddfc-serve`
//! binary) and threads [`bddfc_core::obs`] through as per-request
//! telemetry: a `serve`/`request` span per command, `serve`/`commit`
//! events per epoch, and the underlying `chase`/`round` events of each
//! maintenance closure — which is how tests verify that an insert into
//! a chased instance runs only delta rounds.
//!
//! ## Query semantics
//!
//! Against a pinned epoch, a query answers
//!
//! * `true` — witnessed in the resident instance. Sound even before
//!   fixpoint: every resident fact carries a derivation tree over the
//!   current base, so the resident instance maps homomorphically into
//!   every model of (base, theory).
//! * `false` — not witnessed *and* the epoch is at fixpoint (the
//!   resident instance is then a universal model).
//! * `unknown reason=rounds|facts` — not witnessed and the closure was
//!   cut short by the named budget ([`bddfc_chase::BudgetExhausted`]).
//!
//! ## Static analysis at load
//!
//! Construction runs the loaded program through `bddfc-analyze`: the
//! cost model's static cardinality priors seed the maintenance
//! closures' batch join planner (tie-breakers under live postings —
//! provably invisible in the resident instance), and the full analysis
//! — termination certificate, cost model, perf lints — is kept as one
//! JSON line that the `analyze` protocol command returns. The
//! `bddfc-serve` binary additionally sizes the default round budget
//! from the certified bound and supports `--deny-unbounded`.
//!
//! ## Differential oracle mode
//!
//! With [`ServeConfig::oracle`] set, every query is additionally
//! replayed through a from-scratch [`bddfc_chase::certain_ucq_outcome`]
//! over the current base — the base set *is* the mutation log folded
//! down (inserts add, retracts remove) — and any decided/decided
//! disagreement turns the response into `err oracle-mismatch ...`.
//! Undecided oracle runs (budget) are skipped: certain answers are only
//! comparable when both sides settled. This is the serve-vs-scratch
//! differential property `bddfc-fuzz` drives.
//!
//! ## Live metrics and the slow-query log
//!
//! Unless disabled ([`ServeConfig::metrics`]), the server owns a
//! [`MetricsRegistry`]: per-command request counters and latency
//! histograms, gauges for resident facts / base facts / sealed segments
//! / current epoch / derivation-index size (refreshed at every commit,
//! under the writer lock, so they are deterministic), monotonic
//! counters for chase rounds and the DRed over-delete/re-derive cascade,
//! and a timing-derived writer-lock-wait counter. Hot paths accumulate
//! into a stack-local [`LocalMetrics`] and merge once per request. The
//! snapshot is exposed by the `metrics` protocol command (one JSON line,
//! timing-derived data isolated in a trailing `"timing"` object) and by
//! the `--metrics-tcp` Prometheus endpoint ([`http`]).
//!
//! With `--slow-ms` set, every request additionally runs under a
//! per-request [`Memory`] capture teed onto the session sink
//! ([`bddfc_core::obs::Tee`]); requests at or above the threshold land
//! in the bounded [`slowlog::SlowLog`] ring with their span tree and
//! per-rule attribution, dumpable via the `slowlog` command.

#![warn(missing_docs)]

pub mod epoch;
pub mod http;
pub mod proto;
pub mod slowlog;

use bddfc_chase::engine::ChaseConfig;
use bddfc_chase::{
    certain_ucq_outcome, BudgetExhausted, Certainty, IncrementalChase, MaintainConfig,
};
use bddfc_core::obs::metrics::{LocalMetrics, MetricsRegistry, MetricsSnapshot};
use bddfc_core::obs::{Event, EventSink, Memory, Null, SpanTimer, Tee, NULL};
use bddfc_core::parser::Program;
use bddfc_core::{hom, parse_into, parse_query, Fact, Instance, Ucq, Vocabulary};
use epoch::{Epoch, EpochStore};
use proto::{ensure_terminated, parse_command, Command};
use slowlog::SlowLog;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bounded per-request telemetry capture used for slow-query entries.
const SLOW_CAPTURE_CAP: usize = 4096;

/// Service configuration: per-mutation closure budgets and the oracle
/// switch.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Maximum closure rounds one mutation may run.
    pub max_rounds: u32,
    /// Stop (incomplete) once the instance exceeds this many facts.
    pub max_facts: usize,
    /// Replay every query through a from-scratch chase and flag
    /// decided/decided mismatches.
    pub oracle: bool,
    /// Whether the server keeps a live [`MetricsRegistry`] (on by
    /// default; the overhead guard in `tests/overhead.rs` pins the cost
    /// of leaving it on).
    pub metrics: bool,
    /// Slow-query threshold in milliseconds: requests at or above it are
    /// recorded in the slow-query log. `None` disables the log (and the
    /// per-request telemetry capture it needs).
    pub slow_ms: Option<u64>,
    /// Ring capacity of the slow-query log.
    pub slowlog_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_rounds: 64,
            max_facts: 1_000_000,
            oracle: false,
            metrics: true,
            slow_ms: None,
            slowlog_cap: 128,
        }
    }
}

/// The writer's working state — the mutable tail behind the epochs.
struct Writer {
    voc: Vocabulary,
    inc: IncrementalChase,
    /// Cumulative sealed-segment boundaries (see [`epoch::Epoch`]).
    segments: Vec<usize>,
    epoch_id: u64,
    inserts: u64,
    retracts: u64,
}

/// One response from [`Server::handle_line`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Blank line or comment: print nothing.
    None,
    /// A response to print (may span multiple lines for `explain`).
    Line(String),
    /// The goodbye line: print it, then end the session.
    Quit(String),
}

impl Reply {
    /// The response text, if any.
    pub fn text(&self) -> Option<&str> {
        match self {
            Reply::None => None,
            Reply::Line(s) | Reply::Quit(s) => Some(s),
        }
    }
}

/// The incremental chase service: one writer, any number of epoched
/// readers. All methods take `&self`; the struct is `Sync`, so a TCP
/// front-end can serve concurrent sessions off one shared instance.
pub struct Server<'s, S: EventSink = Null> {
    state: Mutex<Writer>,
    epochs: EpochStore,
    config: ServeConfig,
    sink: &'s S,
    requests: AtomicU64,
    queries: AtomicU64,
    metrics: Option<MetricsRegistry>,
    slowlog: Option<SlowLog>,
    /// One-line JSON of the load-time static analysis (the `analyze`
    /// protocol command). Fixed at construction: the theory never
    /// changes after load, and the analysis is a pure function of it.
    analysis_json: String,
}

/// Metric names the server registers. All `bddfc_`-prefixed; every
/// timing-derived series carries `_ns` in its name (the filtering rule
/// `obs::metrics` documents), except the `bddfc_slowlog_*` family,
/// which is timing-dependent by nature (what counts as *slow* is a
/// wall-clock judgement) and excluded from determinism comparisons as a
/// family.
mod names {
    pub const REQUESTS: &str = "bddfc_requests_total";
    pub const ERRORS: &str = "bddfc_request_errors_total";
    pub const LATENCY: &str = "bddfc_request_latency_ns";
    pub const FACTS: &str = "bddfc_facts_resident";
    pub const BASE: &str = "bddfc_base_facts";
    pub const SEGMENTS: &str = "bddfc_sealed_segments";
    pub const EPOCH: &str = "bddfc_epoch";
    pub const DERIV_INDEX: &str = "bddfc_derivation_index_entries";
    pub const ROUNDS: &str = "bddfc_chase_rounds_total";
    pub const OVERDELETED: &str = "bddfc_dred_overdeleted_total";
    pub const REDERIVED: &str = "bddfc_dred_rederived_total";
    pub const WRITER_WAIT: &str = "bddfc_writer_lock_wait_ns_total";
    pub const OBS_EVENTS_DROPPED: &str = "bddfc_obs_events_dropped";
    pub const OBS_SPANS_DROPPED: &str = "bddfc_obs_spans_dropped";
    pub const SLOW_ENTRIES: &str = "bddfc_slowlog_entries";
    pub const SLOW_DROPPED: &str = "bddfc_slowlog_dropped";
    pub const SLOW_WRITE_FAILURES: &str = "bddfc_slowlog_write_failures_total";
}

/// Builds the registry with `# HELP` text for every family.
fn new_registry() -> MetricsRegistry {
    let m = MetricsRegistry::new();
    m.describe(names::REQUESTS, "Protocol requests handled, by command.");
    m.describe(names::ERRORS, "Requests answered with an err reply, by command.");
    m.describe(names::LATENCY, "Request wall time in nanoseconds, by command.");
    m.describe(names::FACTS, "Facts resident in the published epoch.");
    m.describe(names::BASE, "Base (extensional) facts in the published epoch.");
    m.describe(names::SEGMENTS, "Sealed segments in the published epoch.");
    m.describe(names::EPOCH, "Current published epoch id.");
    m.describe(names::DERIV_INDEX, "Recorded derivations in the provenance index.");
    m.describe(names::ROUNDS, "Chase closure rounds run across all mutations.");
    m.describe(names::OVERDELETED, "Facts removed by DRed over-deletion cascades.");
    m.describe(names::REDERIVED, "Facts re-derived after DRed over-deletion.");
    m.describe(names::WRITER_WAIT, "Nanoseconds spent waiting on the writer lock.");
    m.describe(names::OBS_EVENTS_DROPPED, "Events elided by the bounded session sink.");
    m.describe(names::OBS_SPANS_DROPPED, "Spans elided by the bounded session sink.");
    m.describe(names::SLOW_ENTRIES, "Entries resident in the slow-query ring.");
    m.describe(names::SLOW_DROPPED, "Slow-query entries evicted from the ring.");
    m.describe(names::SLOW_WRITE_FAILURES, "Slow-query stream writes that failed.");
    m
}

impl Server<'static, Null> {
    /// Builds a service over `program` (its facts become the initial
    /// base, chased to fixpoint or budget before the first command)
    /// with telemetry disabled.
    pub fn new(program: &Program, config: ServeConfig) -> Self {
        Server::with_sink(program, config, &NULL)
    }
}

impl<'s, S: EventSink> Server<'s, S> {
    /// Like [`Server::new`], reporting request spans, commit events and
    /// the maintenance chase's own round events into `sink`.
    pub fn with_sink(program: &Program, config: ServeConfig, sink: &'s S) -> Self {
        // Static analysis of the loaded theory: the cost model's priors
        // seed every maintenance closure's join planner (tie-breakers
        // only — the resident instance is identical with or without
        // them), and the one-line JSON backs the `analyze` command.
        let analysis = bddfc_analyze::analyze(program);
        let writer = Writer {
            voc: program.voc.clone(),
            inc: IncrementalChase::new(&program.theory).with_priors(analysis.cost.priors()),
            segments: vec![0],
            epoch_id: 0,
            inserts: 0,
            retracts: 0,
        };
        let epochs = EpochStore::new(Epoch::empty(writer.voc.clone()));
        let server = Server {
            state: Mutex::new(writer),
            epochs,
            config,
            sink,
            requests: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            metrics: config.metrics.then(new_registry),
            slowlog: config.slow_ms.map(|ms| SlowLog::new(ms, config.slowlog_cap)),
            analysis_json: analysis.json("load", program),
        };
        // The initial facts go through the ordinary insert path, so epoch 1
        // is the chased load (epoch 0 stays the published empty state).
        if !program.instance.is_empty() {
            let facts: Vec<Fact> = program.instance.facts().to_vec();
            let mut w = server.state.lock().expect("writer lock poisoned");
            let out = server.maintain_insert(&mut w, &facts, server.sink);
            if let Some(m) = &server.metrics {
                m.counter_add(names::ROUNDS, None, u64::from(out.rounds));
            }
            server.commit(&mut w);
        }
        server
    }

    /// Attaches a stream writer for slow-query entries (the
    /// `--slow-log FILE` flag). No-op unless [`ServeConfig::slow_ms`]
    /// enabled the log.
    pub fn set_slow_writer(&mut self, writer: Box<dyn Write + Send>) {
        if let Some(sl) = &mut self.slowlog {
            sl.set_writer(writer);
        }
    }

    /// The slow-query log, if enabled.
    pub fn slow_log(&self) -> Option<&SlowLog> {
        self.slowlog.as_ref()
    }

    /// The one-line static-analysis JSON computed at load (what the
    /// `analyze` protocol command returns).
    pub fn analysis_json(&self) -> &str {
        &self.analysis_json
    }

    /// Refreshes snapshot-time gauges (sink drop counts, slowlog state)
    /// and returns the current metrics snapshot (`None` when metrics
    /// are disabled). This is what the `metrics` protocol command and
    /// the Prometheus endpoint serve.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let m = self.metrics.as_ref()?;
        m.gauge_set(names::OBS_EVENTS_DROPPED, None, self.sink.dropped_events());
        m.gauge_set(names::OBS_SPANS_DROPPED, None, self.sink.dropped_spans());
        if let Some(sl) = &self.slowlog {
            // The slowlog family is timing-dependent (see `names`), so
            // it goes to the timing side of the JSON rendering.
            m.gauge_set_ns(names::SLOW_ENTRIES, None, sl.len());
            m.gauge_set_ns(names::SLOW_DROPPED, None, sl.dropped());
            m.gauge_set_ns(names::SLOW_WRITE_FAILURES, None, sl.write_failures());
        }
        Some(m.snapshot())
    }

    fn maintain_config(&self) -> MaintainConfig {
        MaintainConfig { max_rounds: self.config.max_rounds, max_facts: self.config.max_facts }
    }

    /// Runs the insert closure; caller commits.
    fn maintain_insert<T: EventSink>(
        &self,
        w: &mut Writer,
        facts: &[Fact],
        sink: &T,
    ) -> bddfc_chase::MaintainOutcome {
        let before = w.inc.instance().len();
        let cfg = self.maintain_config();
        let Writer { voc, inc, .. } = w;
        let out = inc.insert_with(facts, voc, cfg, sink);
        if w.inc.instance().len() > before {
            w.segments.push(w.inc.instance().len());
        }
        out
    }

    /// Seals the working state into a new epoch and publishes it. Also
    /// refreshes the deterministic state gauges — under the writer
    /// lock, so a scrape never sees a gauge ahead of the published
    /// epoch's counters.
    fn commit(&self, w: &mut Writer) {
        w.epoch_id += 1;
        let epoch = Epoch {
            id: w.epoch_id,
            voc: Arc::new(w.voc.clone()),
            instance: Arc::new(w.inc.instance().clone()),
            segments: Arc::new(w.segments.clone()),
            complete: w.inc.complete(),
            exhausted: w.inc.exhausted(),
        };
        if let Some(m) = &self.metrics {
            m.gauge_set(names::EPOCH, None, w.epoch_id);
            m.gauge_set(names::FACTS, None, epoch.instance.len() as u64);
            m.gauge_set(names::BASE, None, w.inc.base().len() as u64);
            m.gauge_set(names::SEGMENTS, None, sealed_segments(w));
            m.gauge_set(names::DERIV_INDEX, None, w.inc.provenance_len() as u64);
        }
        if S::ENABLED {
            self.sink.record(Event {
                engine: "serve",
                name: "commit",
                parent: 0,
                key: Some(("epoch", w.epoch_id)),
                fields: &[
                    ("epoch", w.epoch_id),
                    ("facts", epoch.instance.len() as u64),
                    ("segments", epoch.segments.len() as u64),
                    ("fixpoint", u64::from(epoch.complete)),
                ],
                gauges: &[],
            });
        }
        self.epochs.publish(epoch);
    }

    /// Pins the current epoch (what a reader evaluates against).
    pub fn snapshot(&self) -> Arc<Epoch> {
        self.epochs.snapshot()
    }

    /// Handles one protocol line, returning the response.
    pub fn handle_line(&self, line: &str) -> Reply {
        let cmd = match parse_command(line) {
            Ok(Command::Nop) => return Reply::None,
            Ok(c) => c,
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.counter_add(names::REQUESTS, Some(("command", "invalid")), 1);
                    m.counter_add(names::ERRORS, Some(("command", "invalid")), 1);
                }
                return Reply::Line(format!("err {e}"));
            }
        };
        let verb = command_verb(&cmd);
        let req = self.requests.fetch_add(1, Ordering::SeqCst) + 1;
        let timer = SpanTimer::start();
        let mut local = LocalMetrics::new();
        // With the slow-query log armed, the request runs under a
        // per-request capture teed onto the session sink; otherwise it
        // talks to the session sink directly (no capture cost).
        let (reply, capture) = match &self.slowlog {
            Some(_) => {
                let capture = Memory::new(SLOW_CAPTURE_CAP);
                let tee = Tee::new(self.sink, &capture);
                (self.dispatch(&cmd, req, &tee, &mut local), Some(capture))
            }
            None => (self.dispatch(&cmd, req, self.sink, &mut local), None),
        };
        let wall_ns = timer.elapsed_ns();
        if let Some(m) = &self.metrics {
            local.counter_add(names::REQUESTS, Some(("command", verb)), 1);
            if reply.text().is_some_and(|t| t.starts_with("err ")) {
                local.counter_add(names::ERRORS, Some(("command", verb)), 1);
            }
            local.observe(names::LATENCY, Some(("command", verb)), wall_ns);
            m.merge(&local);
        }
        if let (Some(sl), Some(capture)) = (&self.slowlog, capture) {
            if wall_ns >= sl.threshold_ns() {
                sl.record(req, verb, wall_ns, reply.text(), &capture);
            }
        }
        reply
    }

    /// Runs one parsed command against the given sink, opening the
    /// per-request span. Generic over the sink so the slow-query path
    /// can substitute a [`Tee`] without the fast path paying for it.
    fn dispatch<T: EventSink>(
        &self,
        cmd: &Command,
        req: u64,
        sink: &T,
        local: &mut LocalMetrics,
    ) -> Reply {
        let span = if T::ENABLED {
            sink.span_open("serve", "request", 0, Some(("req", req)))
        } else {
            0
        };
        let reply = match cmd {
            Command::Nop => Reply::None,
            Command::Quit => Reply::Quit("bye".into()),
            Command::Insert(payload) => Reply::Line(self.do_insert(payload, span, sink, local)),
            Command::Retract(payload) => Reply::Line(self.do_retract(payload, span, sink, local)),
            Command::Query(payload) => Reply::Line(self.do_query(payload, span, sink)),
            Command::Explain(payload) => Reply::Line(self.do_explain(payload, local)),
            Command::Analyze => Reply::Line(self.analysis_json.clone()),
            Command::Stats => Reply::Line(self.do_stats(local)),
            Command::Metrics => Reply::Line(self.do_metrics()),
            Command::Slowlog => Reply::Line(self.do_slowlog()),
        };
        if T::ENABLED {
            sink.span_close(span);
        }
        reply
    }

    /// Locks the writer state, charging the wait to the lock-wait
    /// counter.
    fn lock_writer(&self, local: &mut LocalMetrics) -> std::sync::MutexGuard<'_, Writer> {
        let t = SpanTimer::start();
        let w = self.state.lock().expect("writer lock poisoned");
        local.counter_add_ns(names::WRITER_WAIT, None, t.elapsed_ns());
        w
    }

    /// Parses a payload that must contain only facts.
    fn parse_facts(&self, voc: &mut Vocabulary, payload: &str) -> Result<Vec<Fact>, String> {
        let src = ensure_terminated(payload);
        match parse_into(&src, voc) {
            Err(e) => Err(e.to_string()),
            Ok((theory, inst, queries)) => {
                if !theory.is_empty() || !queries.is_empty() {
                    Err("payload must contain facts only".into())
                } else if inst.is_empty() {
                    Err("payload contains no facts".into())
                } else {
                    Ok(inst.facts().to_vec())
                }
            }
        }
    }

    fn do_insert<T: EventSink>(
        &self,
        payload: &str,
        span: u64,
        sink: &T,
        local: &mut LocalMetrics,
    ) -> String {
        let mut w = self.lock_writer(local);
        let facts = match self.parse_facts(&mut w.voc, payload) {
            Ok(f) => f,
            Err(e) => return format!("err {e}"),
        };
        let out = self.maintain_insert(&mut w, &facts, sink);
        local.counter_add(names::ROUNDS, None, u64::from(out.rounds));
        w.inserts += 1;
        self.commit(&mut w);
        if T::ENABLED {
            sink.record(Event {
                engine: "serve",
                name: "insert",
                parent: span,
                key: Some(("epoch", w.epoch_id)),
                fields: &[
                    ("new_facts", out.new_facts as u64),
                    ("rounds", u64::from(out.rounds)),
                    ("facts_total", out.facts_total as u64),
                    ("fixpoint", u64::from(out.complete)),
                ],
                gauges: &[],
            });
        }
        format!(
            "ok epoch={} new={} rounds={} facts={} fixpoint={}",
            w.epoch_id, out.new_facts, out.rounds, out.facts_total, out.complete
        )
    }

    fn do_retract<T: EventSink>(
        &self,
        payload: &str,
        span: u64,
        sink: &T,
        local: &mut LocalMetrics,
    ) -> String {
        let mut w = self.lock_writer(local);
        let facts = match self.parse_facts(&mut w.voc, payload) {
            Ok(f) => f,
            Err(e) => return format!("err {e}"),
        };
        let cfg = self.maintain_config();
        let out = {
            let Writer { voc, inc, .. } = &mut *w;
            inc.retract_with(&facts, voc, cfg, sink)
        };
        local.counter_add(names::ROUNDS, None, u64::from(out.rounds));
        local.counter_add(names::OVERDELETED, None, out.overdeleted as u64);
        local.counter_add(names::REDERIVED, None, out.new_facts as u64);
        // A retraction rebuilds the fact store: reseal as one segment.
        w.segments = vec![w.inc.instance().len()];
        w.retracts += 1;
        self.commit(&mut w);
        if T::ENABLED {
            sink.record(Event {
                engine: "serve",
                name: "retract",
                parent: span,
                key: Some(("epoch", w.epoch_id)),
                fields: &[
                    ("retracted", out.retracted as u64),
                    ("overdeleted", out.overdeleted as u64),
                    ("rederived", out.new_facts as u64),
                    ("rounds", u64::from(out.rounds)),
                    ("facts_total", out.facts_total as u64),
                    ("fixpoint", u64::from(out.complete)),
                ],
                gauges: &[],
            });
        }
        format!(
            "ok epoch={} retracted={} overdeleted={} rederived={} rounds={} facts={} fixpoint={}",
            w.epoch_id,
            out.retracted,
            out.overdeleted,
            out.new_facts,
            out.rounds,
            out.facts_total,
            out.complete
        )
    }

    fn do_query<T: EventSink>(&self, payload: &str, span: u64, sink: &T) -> String {
        self.queries.fetch_add(1, Ordering::SeqCst);
        let epoch = self.epochs.snapshot();
        // Parse against a clone: reader-side interning (fresh variables,
        // unknown constants) must not leak into shared state.
        let mut voc = (*epoch.voc).clone();
        let cq = match parse_query(payload, &mut voc) {
            Ok(c) => c,
            Err(e) => return format!("err {e}"),
        };
        let ucq = Ucq::single(cq);
        let satisfied = hom::satisfies_ucq(&epoch.instance, &ucq);
        let resident = if satisfied {
            "true".to_string()
        } else if epoch.complete {
            "false".to_string()
        } else {
            format!("unknown reason={}", budget_name(epoch.exhausted))
        };
        if T::ENABLED {
            sink.record(Event {
                engine: "serve",
                name: "query",
                parent: span,
                key: Some(("epoch", epoch.id)),
                fields: &[
                    ("satisfied", u64::from(satisfied)),
                    ("decided", u64::from(satisfied || epoch.complete)),
                ],
                gauges: &[],
            });
        }
        if self.config.oracle {
            if let Some(err) = self.oracle_check(&ucq, &resident) {
                return err;
            }
        }
        resident
    }

    /// Replays the query through a from-scratch chase of the current
    /// base. Returns a mismatch error when both sides decided and
    /// disagree.
    fn oracle_check(&self, ucq: &Ucq, resident: &str) -> Option<String> {
        let w = self.state.lock().expect("writer lock poisoned");
        let mut base = Instance::new();
        for f in w.inc.base() {
            base.insert(f.clone());
        }
        let mut voc = w.voc.clone();
        let theory = w.inc.theory().clone();
        drop(w);
        let outcome = certain_ucq_outcome(
            &base,
            &theory,
            &mut voc,
            ucq,
            ChaseConfig {
                max_rounds: self.config.max_rounds,
                max_facts: self.config.max_facts,
                ..ChaseConfig::default()
            },
        );
        let scratch = match outcome.certainty {
            Certainty::True(_) => "true",
            Certainty::False => "false",
            Certainty::Unknown => "unknown",
        };
        let resident_kind = resident.split_whitespace().next().unwrap_or(resident);
        if resident_kind != "unknown" && scratch != "unknown" && resident_kind != scratch {
            return Some(format!(
                "err oracle-mismatch resident={resident_kind} scratch={scratch}"
            ));
        }
        None
    }

    fn do_explain(&self, payload: &str, local: &mut LocalMetrics) -> String {
        let w = self.lock_writer(local);
        let mut voc = w.voc.clone();
        let facts = match self.parse_facts(&mut voc, payload) {
            Ok(f) => f,
            Err(e) => return format!("err {e}"),
        };
        if facts.len() != 1 {
            return "err explain takes exactly one fact".into();
        }
        match w.inc.explain(&facts[0]) {
            None => format!("err not resident: {}", facts[0].display(&voc)),
            Some(tree) => {
                format!("ok depth={}\n{}", tree.height(), tree.display(&voc).trim_end())
            }
        }
    }

    fn do_stats(&self, local: &mut LocalMetrics) -> String {
        let w = self.lock_writer(local);
        format!(
            "{{\"schema\":1,\"epoch\":{},\"facts\":{},\"base\":{},\"segments\":{},\
             \"rounds_total\":{},\"fixpoint\":{},\"inserts\":{},\"retracts\":{},\"queries\":{}}}",
            w.epoch_id,
            w.inc.instance().len(),
            w.inc.base().len(),
            sealed_segments(&w),
            w.inc.rounds_total(),
            w.inc.complete(),
            w.inserts,
            w.retracts,
            self.queries.load(Ordering::SeqCst)
        )
    }

    fn do_metrics(&self) -> String {
        match self.metrics_snapshot() {
            None => "err metrics disabled".into(),
            Some(snap) => snap.to_json(),
        }
    }

    fn do_slowlog(&self) -> String {
        match &self.slowlog {
            None => "err slowlog disabled (start with --slow-ms)".into(),
            Some(sl) => {
                let entries = sl.entries();
                let mut out = format!("ok n={}", entries.len());
                for e in &entries {
                    out.push('\n');
                    out.push_str(e);
                }
                out
            }
        }
    }
}

/// Sealed segments in the working state (the leading `0` boundary is
/// bookkeeping, not a segment).
fn sealed_segments(w: &Writer) -> u64 {
    w.segments.len().saturating_sub(usize::from(w.segments.first() == Some(&0))) as u64
}

/// The metrics label for one parsed command.
fn command_verb(cmd: &Command) -> &'static str {
    match cmd {
        Command::Insert(_) => "insert",
        Command::Retract(_) => "retract",
        Command::Query(_) => "query",
        Command::Explain(_) => "explain",
        Command::Analyze => "analyze",
        Command::Stats => "stats",
        Command::Metrics => "metrics",
        Command::Slowlog => "slowlog",
        Command::Quit => "quit",
        Command::Nop => "nop",
    }
}

fn budget_name(e: Option<BudgetExhausted>) -> &'static str {
    match e {
        Some(BudgetExhausted::Facts) => "facts",
        _ => "rounds",
    }
}

/// Drives a whole session: reads protocol lines from `input`, writes
/// one response per command to `out` (flushing after each), stops at
/// `quit` or EOF.
pub fn run_session<S: EventSink>(
    server: &Server<'_, S>,
    input: impl BufRead,
    mut out: impl Write,
) -> std::io::Result<()> {
    for line in input.lines() {
        match server.handle_line(&line?) {
            Reply::None => {}
            Reply::Line(resp) => {
                writeln!(out, "{resp}")?;
                out.flush()?;
            }
            Reply::Quit(resp) => {
                writeln!(out, "{resp}")?;
                out.flush()?;
                break;
            }
        }
    }
    Ok(())
}

/// Runs a scripted session over an in-memory transcript: every response
/// line, concatenated. This is what the golden-transcript tests and the
/// fuzz differential drive.
pub fn transcript<S: EventSink>(server: &Server<'_, S>, commands: &str) -> String {
    let mut out = Vec::new();
    run_session(server, commands.as_bytes(), &mut out).expect("in-memory session cannot fail");
    String::from_utf8(out).expect("responses are utf-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_core::parse_program;

    fn tc_program() -> Program {
        parse_program(
            "E(X,Y), E(Y,Z) -> E(X,Z).
             E(a,b). E(b,c).",
        )
        .unwrap()
    }

    #[test]
    fn insert_query_retract_round_trip() {
        let prog = tc_program();
        let server = Server::new(&prog, ServeConfig::default());
        assert_eq!(
            transcript(&server, "query E(a,c)"),
            "true\n",
            "initial load must already be chased"
        );
        let t = transcript(
            &server,
            "insert E(c,d).\nquery E(a,d)\nretract E(b,c).\nquery E(a,d)\nquery E(a,b)\nquit",
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("ok epoch=2 new="), "{t}");
        assert_eq!(lines[1], "true");
        assert!(lines[2].starts_with("ok epoch=3 retracted=1"), "{t}");
        assert_eq!(lines[3], "false", "E(a,d) needed E(b,c)");
        assert_eq!(lines[4], "true");
        assert_eq!(lines[5], "bye");
    }

    #[test]
    fn queries_are_snapshot_isolated() {
        let prog = tc_program();
        let server = Server::new(&prog, ServeConfig::default());
        let pinned = server.snapshot();
        transcript(&server, "insert E(c,d).");
        // The pre-insert pin does not see the new fact; a fresh one does.
        let mut voc = (*pinned.voc).clone();
        let q = Ucq::single(parse_query("E(c,d)", &mut voc).unwrap());
        assert!(!hom::satisfies_ucq(&pinned.instance, &q));
        let fresh = server.snapshot();
        assert!(hom::satisfies_ucq(&fresh.instance, &q));
        assert!(fresh.id > pinned.id);
    }

    #[test]
    fn segments_accumulate_on_insert_and_reseal_on_retract() {
        let prog = tc_program();
        let server = Server::new(&prog, ServeConfig::default());
        assert_eq!(server.snapshot().segments.len(), 2); // [0, initial]
        transcript(&server, "insert E(c,d).");
        assert_eq!(server.snapshot().segments.len(), 3);
        transcript(&server, "retract E(a,b).");
        let sealed = server.snapshot();
        assert_eq!(sealed.segments.len(), 1);
        assert_eq!(*sealed.segments, vec![sealed.instance.len()]);
    }

    #[test]
    fn errors_name_the_offence_and_leave_state_intact() {
        let prog = tc_program();
        let server = Server::new(&prog, ServeConfig::default());
        let t = transcript(
            &server,
            "bogus\ninsert\ninsert E(X,Y) -> E(Y,X).\nquery E(\nstats",
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("err unknown command `bogus`"), "{t}");
        assert!(lines[1].starts_with("err `insert` needs a payload"), "{t}");
        assert!(lines[2].starts_with("err payload must contain facts only"), "{t}");
        assert!(lines[3].starts_with("err parse error"), "{t}");
        assert!(lines[4].starts_with("{\"schema\":1,\"epoch\":1,\"facts\":3,\"base\":2"), "{t}");
    }

    #[test]
    fn explain_prints_a_derivation_tree() {
        let prog = tc_program();
        let server = Server::new(&prog, ServeConfig::default());
        let t = transcript(&server, "explain E(a,c)\nexplain E(c,a)");
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "ok depth=1");
        assert!(lines[1].contains("E(a,c)") && lines[1].contains("[rule #0]"), "{t}");
        assert!(lines[2].contains("E(a,b)") && lines[2].contains("[database]"), "{t}");
        assert!(lines[4].starts_with("err not resident: E(c,a)"), "{t}");
    }

    #[test]
    fn oracle_mode_agrees_with_resident_answers() {
        let prog = tc_program();
        let server =
            Server::new(&prog, ServeConfig { oracle: true, ..ServeConfig::default() });
        let t = transcript(
            &server,
            "query E(a,c)\ninsert E(c,a).\nquery E(a,a)\nretract E(a,b).\nquery E(a,a)",
        );
        assert!(!t.contains("oracle-mismatch"), "{t}");
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "true");
        assert_eq!(lines[2], "true");
        assert_eq!(lines[4], "false");
    }

    #[test]
    fn unknown_carries_the_budget_reason() {
        let prog = parse_program(
            "E(X,Y) -> exists Z . E(Y,Z).
             E(a,b).",
        )
        .unwrap();
        let server = Server::new(
            &prog,
            ServeConfig { max_rounds: 2, ..ServeConfig::default() },
        );
        let t = transcript(&server, "query E(X,X)");
        assert_eq!(t, "unknown reason=rounds\n");
        let server = Server::new(
            &prog,
            ServeConfig { max_facts: 2, ..ServeConfig::default() },
        );
        let t = transcript(&server, "query E(X,X)");
        assert_eq!(t, "unknown reason=facts\n");
    }
}
