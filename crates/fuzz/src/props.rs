//! The differential property registry: every cross-engine invariant the
//! repository pins, as named, Result-returning checks over one parsed
//! program.
//!
//! Each [`Prop`] is a pure function of the case (plus the explicit
//! [`PropCtx`] budgets), so a failure replays from its seed alone. The
//! registry consolidates the oracle pairs that used to live scattered
//! across `tests/{differential,lint,determinism}.rs`:
//!
//! | property | engine pair |
//! |---|---|
//! | `chase_strategy_agreement` | naive vs semi-naive chase, both variants, roundwise + full-run |
//! | `chase_restricted_embeds` | restricted chase embeds homomorphically into oblivious |
//! | `chase_certainty_strategy_blind` | `certain_ucq` verdicts + depth `k` across strategies |
//! | `chase_thread_invariance` | chase outputs + obs counters at `BDDFC_THREADS` ∈ {1,2,7} |
//! | `join_kernel_vs_tuple_oracle` | batched hash-join chase vs tuple-at-a-time engine, all variants × strategies |
//! | `classes_witness_oracle` | witness-producing recognizers vs legacy boolean oracles |
//! | `rewrite_vs_chase` | UCQ-rewriting certain answers vs chase certain answers |
//! | `lint_stability` | linting is deterministic and panic-free |
//! | `serve_vs_scratch_chase` | bddfc-serve incremental sessions vs from-scratch chase of the folded base |
//! | `static_bound_vs_observed_rounds` | bddfc-analyze termination certificates vs the real chase |
//!
//! [`Mutation`] deliberately breaks one engine side — the seeded
//! known-bad mutations behind `bddfc-fuzz --mutate` that prove the
//! harness catches and shrinks real discrepancies.

use crate::gen::FuzzCase;
use crate::proptest_lite::{ensure, ensure_eq, PropResult};
use bddfc_analyze::{analyze as static_analyze, domain::DomainAnalysis};
use bddfc_chase::{
    certain_ucq, certain_ucq_outcome, chase, chase_with, Certainty, ChaseConfig, ChaseStatus,
    ChaseStepper, ChaseStrategy, ChaseVariant,
};
use bddfc_classes::{
    guard_violations, is_guarded, is_sticky, is_theorem3_fragment, is_weakly_acyclic,
    sticky_violations, theorem3_violations, weak_acyclicity_violation,
};
use bddfc_core::fxhash::FxHashMap;
use bddfc_core::join::{with_join_mode, JoinMode};
use bddfc_core::obs::Memory;
use bddfc_core::{
    hom, par, Atom, Binding, ConjunctiveQuery, Fact, Instance, PredId, Program, Term, Theory,
    Ucq, Vocabulary,
};
use bddfc_lint::lint_source;
use bddfc_rewrite::{certainly_entailed_rewriting, RewriteConfig};
use bddfc_serve::{transcript as serve_transcript, ServeConfig, Server};

/// A deliberate, deterministic engine defect, injected on the
/// *secondary* side of a differential pair (`bddfc-fuzz --mutate`).
/// [`Mutation::None`] is the production configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Mutation {
    /// Healthy engines.
    #[default]
    None,
    /// The secondary engine silently forgets the last rule of the theory
    /// (models a lost delta batch).
    SkipLastRule,
    /// The secondary engine reorders the first two body atoms of every
    /// multi-atom rule (perturbs the canonical repair order, so fresh
    /// null names drift).
    SwapBodyAtoms,
}

impl Mutation {
    /// Parses a `--mutate` argument.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "skip-last-rule" => Some(Mutation::SkipLastRule),
            "swap-body-atoms" => Some(Mutation::SwapBodyAtoms),
            _ => None,
        }
    }

    /// Stable name (inverse of [`Mutation::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipLastRule => "skip-last-rule",
            Mutation::SwapBodyAtoms => "swap-body-atoms",
        }
    }

    /// The mutated theory the secondary engine side runs with.
    pub fn apply(self, theory: &Theory) -> Theory {
        match self {
            Mutation::None => theory.clone(),
            Mutation::SkipLastRule => {
                let mut rules = theory.rules.clone();
                rules.pop();
                Theory::new(rules)
            }
            Mutation::SwapBodyAtoms => {
                let rules = theory
                    .rules
                    .iter()
                    .map(|r| {
                        let mut body = r.body.clone();
                        if body.len() >= 2 {
                            body.swap(0, 1);
                        }
                        bddfc_core::Rule::new(body, r.head.clone())
                    })
                    .collect();
                Theory::new(rules)
            }
        }
    }
}

/// Budgets and mutation configuration shared by every property check.
#[derive(Clone, Copy, Debug)]
pub struct PropCtx {
    /// Round cap for chase comparisons.
    pub max_rounds: u32,
    /// Fact cap for chase comparisons.
    pub max_facts: usize,
    /// Injected engine defect ([`Mutation::None`] in production).
    pub mutation: Mutation,
}

impl Default for PropCtx {
    fn default() -> Self {
        PropCtx { max_rounds: 5, max_facts: 4_000, mutation: Mutation::None }
    }
}

/// One registered differential property.
pub struct Prop {
    /// Stable CLI-addressable name (`bddfc-fuzz --prop <name>`).
    pub name: &'static str,
    /// One-line description for `--list-props`.
    pub describe: &'static str,
    /// The check itself. `Err` is a finding; panics inside are caught by
    /// the runner and reported the same way.
    pub check: fn(&FuzzCase, &Program, &PropCtx) -> PropResult,
}

/// The registry, in fixed execution order.
pub static PROPS: &[Prop] = &[
    Prop {
        name: "chase_strategy_agreement",
        describe: "naive and semi-naive chase agree round-by-round and end-to-end",
        check: chase_strategy_agreement,
    },
    Prop {
        name: "chase_restricted_embeds",
        describe: "the restricted chase result embeds homomorphically into the oblivious one",
        check: chase_restricted_embeds,
    },
    Prop {
        name: "chase_certainty_strategy_blind",
        describe: "certain-answer verdicts and depth k are identical across chase strategies",
        check: chase_certainty_strategy_blind,
    },
    Prop {
        name: "chase_thread_invariance",
        describe: "chase outputs and obs counters are byte-identical at 1/2/7 threads",
        check: chase_thread_invariance,
    },
    Prop {
        name: "join_kernel_vs_tuple_oracle",
        describe: "batched hash-join chase agrees with the tuple-at-a-time oracle engine",
        check: join_kernel_vs_tuple_oracle,
    },
    Prop {
        name: "classes_witness_oracle",
        describe: "witness-producing class recognizers agree with the boolean oracles",
        check: classes_witness_oracle,
    },
    Prop {
        name: "rewrite_vs_chase",
        describe: "UCQ-rewriting certain answers agree with chase certain answers",
        check: rewrite_vs_chase,
    },
    Prop {
        name: "lint_stability",
        describe: "linting is deterministic (identical reports on identical input)",
        check: lint_stability,
    },
    Prop {
        name: "serve_vs_scratch_chase",
        describe: "bddfc-serve sessions agree with a from-scratch chase and are thread-invariant",
        check: serve_vs_scratch_chase,
    },
    Prop {
        name: "static_bound_vs_observed_rounds",
        describe: "bddfc-analyze termination certificates dominate the observed chase",
        check: static_bound_vs_observed_rounds,
    },
];

/// Looks a property up by its stable name.
pub fn find_prop(name: &str) -> Option<&'static Prop> {
    PROPS.iter().find(|p| p.name == name)
}

fn chase_config(ctx: &PropCtx, variant: ChaseVariant, strategy: ChaseStrategy) -> ChaseConfig {
    ChaseConfig {
        max_rounds: ctx.max_rounds,
        max_facts: ctx.max_facts,
        variant,
        strategy,
    }
}

/// Compact instance comparison: equality or a bounded message naming one
/// differing fact (full instances can be thousands of facts — the
/// shrinker, not the message, is the readable artifact).
fn ensure_same_instance(a: &Instance, b: &Instance, voc: &Vocabulary, what: &str) -> PropResult {
    if a == b {
        return Ok(());
    }
    let missing = a
        .facts()
        .iter()
        .find(|f| !b.contains(f))
        .or_else(|| b.facts().iter().find(|f| !a.contains(f)));
    Err(format!(
        "{what}: instances differ ({} vs {} facts; e.g. {})",
        a.len(),
        b.len(),
        missing.map_or_else(|| "same fact set?".into(), |f| f.display(voc).to_string()),
    ))
}

/// `chase_strategy_agreement`: naive vs semi-naive, both variants,
/// stepped round-by-round (same new facts in the same order, hence the
/// same fresh-null names) and through the public `chase` entry point.
/// The mutation runs on the semi-naive side.
fn chase_strategy_agreement(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
        let mut voc_n = prog.voc.clone();
        let mut voc_s = prog.voc.clone();
        let mut naive =
            ChaseStepper::new(&prog.instance, &prog.theory, variant, ChaseStrategy::Naive);
        let mut semi =
            ChaseStepper::new(&prog.instance, &mutated, variant, ChaseStrategy::SemiNaive);
        for round in 1..=ctx.max_rounds {
            let new_n = naive.step(&mut voc_n);
            let new_s = semi.step(&mut voc_s);
            if new_n != new_s {
                return Err(format!(
                    "{variant:?}: round {round} facts differ (naive {} vs semi-naive {})",
                    new_n.len(),
                    new_s.len()
                ));
            }
            ensure_same_instance(
                &naive.instance,
                &semi.instance,
                &voc_n,
                &format!("{variant:?}: round {round}"),
            )?;
            if new_n.is_empty() || naive.instance.len() > ctx.max_facts {
                break;
            }
        }

        let res_n = chase(
            &prog.instance,
            &prog.theory,
            &mut prog.voc.clone(),
            chase_config(ctx, variant, ChaseStrategy::Naive),
        );
        let res_s = chase(
            &prog.instance,
            &mutated,
            &mut prog.voc.clone(),
            chase_config(ctx, variant, ChaseStrategy::SemiNaive),
        );
        ensure_same_instance(&res_n.instance, &res_s.instance, &prog.voc, &format!("{variant:?}: full run"))?;
        ensure_eq(res_n.depth_map(), res_s.depth_map(), &format!("{variant:?}: depth map"))?;
        ensure_eq(res_n.rounds, res_s.rounds, &format!("{variant:?}: rounds"))?;
        ensure_eq(res_n.status, res_s.status, &format!("{variant:?}: status"))?;
    }
    Ok(())
}

/// `chase_restricted_embeds`: the restricted-chase result (nulls turned
/// into existential variables) maps homomorphically into the oblivious
/// result at the same budget. The mutation runs on the oblivious side.
fn chase_restricted_embeds(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    let mut voc_r = prog.voc.clone();
    let restricted = chase(
        &prog.instance,
        &prog.theory,
        &mut voc_r,
        chase_config(ctx, ChaseVariant::Restricted, ChaseStrategy::SemiNaive),
    );
    let oblivious = chase(
        &prog.instance,
        &mutated,
        &mut prog.voc.clone(),
        chase_config(ctx, ChaseVariant::Oblivious, ChaseStrategy::SemiNaive),
    );
    let mut null_var = FxHashMap::default();
    let mut atoms = Vec::new();
    for fact in restricted.instance.facts() {
        let args = fact
            .args
            .iter()
            .map(|&c| {
                if voc_r.is_null(c) {
                    Term::Var(*null_var.entry(c).or_insert_with(|| voc_r.fresh_var("h")))
                } else {
                    Term::Const(c)
                }
            })
            .collect();
        atoms.push(Atom::new(fact.pred, args));
    }
    ensure(
        hom::hom_exists(&oblivious.instance, &atoms, &Binding::default()),
        &format!(
            "restricted chase ({} facts) does not embed into oblivious chase ({} facts)",
            restricted.instance.len(),
            oblivious.instance.len()
        ),
    )
}

/// The queries a case is probed with: its own `?-` queries plus two-atom
/// join queries over the (at most three first) binary predicates it
/// mentions.
fn derived_queries(prog: &Program) -> (Vocabulary, Vec<Ucq>) {
    let mut voc = prog.voc.clone();
    let mut queries: Vec<Ucq> = prog.queries.iter().cloned().map(Ucq::single).collect();
    let mut binary: Vec<PredId> = voc
        .preds()
        .filter(|&(_, arity)| arity == 2)
        .map(|(p, _)| p)
        .collect();
    binary.truncate(3);
    for &p in &binary {
        for &q in &binary {
            let (x, y, z) = (voc.fresh_var("dx"), voc.fresh_var("dy"), voc.fresh_var("dz"));
            queries.push(Ucq::single(ConjunctiveQuery::boolean(vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(q, vec![Term::Var(y), Term::Var(z)]),
            ])));
        }
    }
    (voc, queries)
}

/// `chase_certainty_strategy_blind`: the `Certainty` verdict — including
/// the witnessing depth `k` in `True(k)` — must not depend on the chase
/// strategy. The mutation runs on the semi-naive side.
fn chase_certainty_strategy_blind(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    let (voc, queries) = derived_queries(prog);
    for (qi, query) in queries.iter().enumerate() {
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let c_n = certain_ucq(
                &prog.instance,
                &prog.theory,
                &mut voc.clone(),
                query,
                chase_config(ctx, variant, ChaseStrategy::Naive),
            );
            let c_s = certain_ucq(
                &prog.instance,
                &mutated,
                &mut voc.clone(),
                query,
                chase_config(ctx, variant, ChaseStrategy::SemiNaive),
            );
            ensure_eq(
                c_n,
                c_s,
                &format!("{variant:?}: Certainty diverged between strategies on query #{qi}"),
            )?;
        }
    }
    Ok(())
}

/// `chase_thread_invariance`: the chase result *and* the aggregated obs
/// counters/event counts are identical at 1, 2 and 7 worker threads —
/// the executable form of the fields-vs-gauges contract. The mutation
/// runs at every thread count above 1.
fn chase_thread_invariance(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    let run = |threads: usize, theory: &Theory| {
        par::with_thread_count(threads, || {
            let sink = Memory::new(1 << 14);
            let res = chase_with(
                &prog.instance,
                theory,
                &mut prog.voc.clone(),
                chase_config(ctx, ChaseVariant::Restricted, ChaseStrategy::SemiNaive),
                &sink,
            );
            (res, sink.counters(), sink.event_counts())
        })
    };
    let base = run(1, &prog.theory);
    for threads in [2usize, 7] {
        let other = run(threads, &mutated);
        ensure_same_instance(
            &base.0.instance,
            &other.0.instance,
            &prog.voc,
            &format!("{threads} threads"),
        )?;
        ensure_eq(base.0.depth_map(), other.0.depth_map(), &format!("{threads} threads: depth map"))?;
        ensure_eq(base.0.rounds, other.0.rounds, &format!("{threads} threads: rounds"))?;
        ensure_eq(base.0.status, other.0.status, &format!("{threads} threads: status"))?;
        ensure_eq(base.1.clone(), other.1, &format!("{threads} threads: obs counters"))?;
        ensure_eq(base.2.clone(), other.2, &format!("{threads} threads: obs event counts"))?;
    }
    Ok(())
}

/// `join_kernel_vs_tuple_oracle`: the batched hash-join kernel
/// ([`JoinMode::Batch`]) produces exactly the chase the tuple-at-a-time
/// engine produces — same instance, depth map, round count, status and
/// per-round body-match counts — over every variant × strategy. The
/// mutation runs on the batch side.
fn join_kernel_vs_tuple_oracle(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
        for strategy in [ChaseStrategy::Naive, ChaseStrategy::SemiNaive] {
            let cfg = chase_config(ctx, variant, strategy);
            let tuple = with_join_mode(JoinMode::Tuple, || {
                chase(&prog.instance, &prog.theory, &mut prog.voc.clone(), cfg)
            });
            let batch = with_join_mode(JoinMode::Batch, || {
                chase(&prog.instance, &mutated, &mut prog.voc.clone(), cfg)
            });
            let what = format!("{variant:?}/{strategy:?} batch-vs-tuple");
            ensure_same_instance(&tuple.instance, &batch.instance, &prog.voc, &what)?;
            ensure_eq(tuple.depth_map(), batch.depth_map(), &format!("{what}: depth map"))?;
            ensure_eq(tuple.rounds, batch.rounds, &format!("{what}: rounds"))?;
            ensure_eq(tuple.status, batch.status, &format!("{what}: status"))?;
            ensure_eq(
                tuple.stats.body_matches_per_round.clone(),
                batch.stats.body_matches_per_round.clone(),
                &format!("{what}: per-round body matches"),
            )?;
        }
    }
    Ok(())
}

/// `classes_witness_oracle`: every witness-producing recognizer agrees
/// with its legacy boolean oracle, and every witness re-validates
/// against the theory from scratch. The mutation checks the *mutated*
/// theory both ways (witnesses must stay self-consistent on any input).
fn classes_witness_oracle(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let theory = ctx.mutation.apply(&prog.theory);

    let guards = guard_violations(&theory);
    ensure(
        is_guarded(&theory) == guards.is_empty(),
        "guard witness/oracle disagree",
    )?;
    for v in &guards {
        v.validate(&theory).map_err(|e| format!("bogus guard witness: {e}"))?;
    }

    let sticky = sticky_violations(&theory);
    ensure(
        is_sticky(&theory) == sticky.is_empty(),
        "sticky witness/oracle disagree",
    )?;
    for v in &sticky {
        v.validate(&theory).map_err(|e| format!("bogus sticky witness: {e}"))?;
    }

    let wa = weak_acyclicity_violation(&theory);
    ensure(
        is_weakly_acyclic(&theory) == wa.is_none(),
        "weak-acyclicity witness/oracle disagree",
    )?;
    if let Some(v) = &wa {
        v.validate(&theory).map_err(|e| format!("bogus WA witness: {e}"))?;
    }

    let t3 = theorem3_violations(&theory);
    ensure(
        is_theorem3_fragment(&theory) == t3.is_empty(),
        "theorem3 witness/oracle disagree",
    )?;
    for v in &t3 {
        v.validate(&theory).map_err(|e| format!("bogus theorem3 witness: {e}"))?;
    }
    Ok(())
}

/// `rewrite_vs_chase`: where the UCQ rewriting saturates (Definition 2
/// applies), evaluating the rewriting over `D` must agree with the
/// chase-based certain answer whenever the chase decides within budget.
/// Single-head theories only (the rewriter's contract). The mutation
/// runs on the rewriting side.
fn rewrite_vs_chase(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    if !prog.theory.is_single_head() {
        return Ok(());
    }
    let mutated = ctx.mutation.apply(&prog.theory);
    let (voc, queries) = derived_queries(prog);
    let config = RewriteConfig { max_disjuncts: 15, max_steps: 300, max_piece: 2 };
    for (qi, ucq) in queries.iter().enumerate() {
        // The rewriter takes single CQs; probe each disjunct separately.
        for cq in &ucq.disjuncts {
            let via_rw = certainly_entailed_rewriting(
                &prog.instance,
                &mutated,
                &mut voc.clone(),
                cq,
                config,
            );
            let Some(rw) = via_rw else { continue }; // did not saturate
            let chase_verdict = certain_ucq(
                &prog.instance,
                &prog.theory,
                &mut voc.clone(),
                &Ucq::single(cq.clone()),
                chase_config(ctx, ChaseVariant::Restricted, ChaseStrategy::SemiNaive),
            );
            if !chase_verdict.is_decided() {
                continue;
            }
            ensure_eq(
                rw,
                chase_verdict.is_true(),
                &format!("rewriting and chase disagree on query #{qi}"),
            )?;
        }
    }
    Ok(())
}

/// `serve_vs_scratch_chase`: an incremental `bddfc-serve` session
/// (insert half the facts, query, insert the rest, query, retract the
/// first half, query) produces certain answers that agree with a
/// from-scratch chase of the *folded base* — the mutation log replayed
/// into a plain fact set — at every query point where both sides
/// decided, and the whole-session transcript is byte-identical at 1, 2
/// and 7 worker threads. The mutation runs on the resident (serve)
/// side.
fn serve_vs_scratch_chase(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let mutated = ctx.mutation.apply(&prog.theory);
    // The case's own queries plus two-atom join probes — like
    // `derived_queries`, but with parser-friendly variable names, since
    // these queries travel through the serve protocol as *text*.
    let mut qvoc = prog.voc.clone();
    let mut queries: Vec<Ucq> = prog.queries.iter().cloned().map(Ucq::single).collect();
    let mut binary: Vec<PredId> =
        qvoc.preds().filter(|&(_, arity)| arity == 2).map(|(p, _)| p).collect();
    binary.truncate(3);
    let (x, y, z) = (qvoc.var("SVX"), qvoc.var("SVY"), qvoc.var("SVZ"));
    for &p in &binary {
        for &q in &binary {
            queries.push(Ucq::single(ConjunctiveQuery::boolean(vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(q, vec![Term::Var(y), Term::Var(z)]),
            ])));
        }
    }
    let facts = prog.instance.facts();
    let (first, second) = facts.split_at(facts.len() / 2);

    enum Step<'a> {
        Ins(&'a [Fact]),
        Ret(&'a [Fact]),
        Query(usize),
    }
    let mut steps: Vec<Step<'_>> = Vec::new();
    let probe_all = |steps: &mut Vec<Step<'_>>| {
        for qi in 0..queries.len() {
            steps.push(Step::Query(qi));
        }
    };
    if !first.is_empty() {
        steps.push(Step::Ins(first));
    }
    probe_all(&mut steps);
    if !second.is_empty() {
        steps.push(Step::Ins(second));
    }
    probe_all(&mut steps);
    if !first.is_empty() {
        steps.push(Step::Ret(first));
    }
    probe_all(&mut steps);

    let payload = |fs: &[Fact]| -> String {
        fs.iter().map(|f| format!("{}.", f.display(&qvoc))).collect::<Vec<_>>().join(" ")
    };
    let mut script = String::new();
    for step in &steps {
        match step {
            Step::Ins(fs) => script.push_str(&format!("insert {}\n", payload(fs))),
            Step::Ret(fs) => script.push_str(&format!("retract {}\n", payload(fs))),
            Step::Query(qi) => {
                let body = queries[*qi].disjuncts[0]
                    .atoms
                    .iter()
                    .map(|a| a.display(&qvoc).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                script.push_str(&format!("query {body}\n"));
            }
        }
    }
    script.push_str("stats\n");

    let serve_prog = Program {
        voc: qvoc.clone(),
        theory: mutated,
        instance: Instance::new(),
        queries: Vec::new(),
    };
    let config = ServeConfig {
        max_rounds: ctx.max_rounds,
        max_facts: ctx.max_facts,
        oracle: false,
        ..ServeConfig::default()
    };
    let run = |threads: usize| {
        par::with_thread_count(threads, || {
            let server = Server::new(&serve_prog, config);
            serve_transcript(&server, &script)
        })
    };
    let transcript = run(1);
    for threads in [2usize, 7] {
        ensure_eq(
            transcript.clone(),
            run(threads),
            &format!("serve transcript at {threads} threads"),
        )?;
    }

    // Differential: replay the mutation log into a plain base instance
    // and ask the from-scratch chase at every query point.
    let lines: Vec<&str> = transcript.lines().collect();
    ensure_eq(lines.len(), steps.len() + 1, "one response line per command (plus stats)")?;
    let mut base = Instance::new();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Ins(fs) => {
                for f in *fs {
                    base.insert(f.clone());
                }
                ensure(lines[i].starts_with("ok "), &format!("insert failed: {}", lines[i]))?;
            }
            Step::Ret(fs) => {
                let kept: Vec<Fact> =
                    base.facts().iter().filter(|f| !fs.contains(f)).cloned().collect();
                base = Instance::new();
                for f in kept {
                    base.insert(f);
                }
                ensure(lines[i].starts_with("ok "), &format!("retract failed: {}", lines[i]))?;
            }
            Step::Query(qi) => {
                let resident = lines[i];
                if resident != "true" && resident != "false" {
                    ensure(
                        resident.starts_with("unknown"),
                        &format!("unexpected query reply: {resident}"),
                    )?;
                    continue;
                }
                let outcome = certain_ucq_outcome(
                    &base,
                    &prog.theory,
                    &mut qvoc.clone(),
                    &queries[*qi],
                    chase_config(ctx, ChaseVariant::Restricted, ChaseStrategy::SemiNaive),
                );
                let scratch = match outcome.certainty {
                    Certainty::True(_) => "true",
                    Certainty::False => "false",
                    Certainty::Unknown => continue, // scratch budget ran out first
                };
                ensure_eq(
                    resident,
                    scratch,
                    &format!("serve and scratch chase disagree on query #{qi} at step {i}"),
                )?;
            }
        }
    }
    Ok(())
}

/// `static_bound_vs_observed_rounds`: the static analyzer is sound
/// against the real chase —
///
/// * the counting-lattice weak-acyclicity verdict agrees with the
///   position-graph oracle of `bddfc-classes`;
/// * a termination certificate implies weak acyclicity, and every
///   emitted certificate passes its own independent validator;
/// * the restricted semi-naive chase never exceeds a certified bound:
///   a fixpoint within the session budgets stays within `round_bound`
///   rounds and `fact_bound` distinct facts, and a budget stop with the
///   budget at or past the certified bound is a soundness violation;
/// * the analysis JSON is byte-identical at 1, 2 and 7 worker threads.
///
/// The mutation runs on the analyzer side: bounds computed from a
/// defective view of the theory must be caught by the real chase.
fn static_bound_vs_observed_rounds(_case: &FuzzCase, prog: &Program, ctx: &PropCtx) -> PropResult {
    let analyzed = Program {
        voc: prog.voc.clone(),
        theory: ctx.mutation.apply(&prog.theory),
        instance: prog.instance.clone(),
        queries: prog.queries.clone(),
    };
    let dom = DomainAnalysis::analyze(&analyzed);
    ensure_eq(
        dom.weakly_acyclic,
        bddfc_classes::is_weakly_acyclic(&analyzed.theory),
        "domain analysis disagrees with the weak-acyclicity oracle",
    )?;

    let a = static_analyze(&analyzed);
    let render = |threads: usize| {
        par::with_thread_count(threads, || static_analyze(&analyzed).json("fuzz", &analyzed))
    };
    let one = render(1);
    ensure_eq(one.clone(), a.json("fuzz", &analyzed), "analysis JSON is unstable")?;
    for threads in [2usize, 7] {
        ensure_eq(
            one.clone(),
            render(threads),
            &format!("analysis JSON diverged at {threads} threads"),
        )?;
    }

    // No certificate is always permitted for a WA theory (the counting
    // lattice may have saturated), never the other way around.
    let Some(cert) = &a.certificate else {
        return Ok(());
    };
    ensure(dom.weakly_acyclic, "certificate emitted for a non-weakly-acyclic theory")?;
    cert.validate(&analyzed).map_err(|e| format!("certificate fails its own validator: {e}"))?;

    let res = chase(
        &prog.instance,
        &prog.theory,
        &mut prog.voc.clone(),
        chase_config(ctx, ChaseVariant::Restricted, ChaseStrategy::SemiNaive),
    );
    match res.status {
        ChaseStatus::Fixpoint => {
            ensure(
                u64::from(res.rounds) <= cert.round_bound,
                &format!("observed {} rounds > certified {}", res.rounds, cert.round_bound),
            )?;
            ensure(
                res.instance.len() as u64 <= cert.fact_bound,
                &format!(
                    "observed {} facts > certified {}",
                    res.instance.len(),
                    cert.fact_bound
                ),
            )?;
        }
        // A budget stop is only consistent with the certificate when
        // the budget ran out *before* the bound: the engine needs
        // `round_bound` productive rounds plus one empty round to
        // observe the fixpoint the certificate promises.
        ChaseStatus::RoundBudget => {
            ensure(
                u64::from(ctx.max_rounds) < cert.round_bound.saturating_add(1),
                &format!(
                    "no fixpoint within {} rounds despite certified round bound {}",
                    ctx.max_rounds, cert.round_bound
                ),
            )?;
        }
        ChaseStatus::FactBudget => {
            ensure(
                (ctx.max_facts as u64) < cert.fact_bound,
                &format!(
                    "fact budget {} overrun despite certified fact bound {}",
                    ctx.max_facts, cert.fact_bound
                ),
            )?;
        }
    }
    Ok(())
}

/// `lint_stability`: linting the case source twice gives byte-identical
/// reports (text and JSON) and never panics. (Panic-freedom is enforced
/// by the runner's catch-unwind; this check makes it a named property.)
fn lint_stability(case: &FuzzCase, _prog: &Program, _ctx: &PropCtx) -> PropResult {
    let a = lint_source("fuzz-case", &case.src);
    let b = lint_source("fuzz-case", &case.src);
    ensure(a.json() == b.json(), "lint JSON output is unstable")?;
    ensure(a.render() == b.render(), "lint rendered output is unstable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_case;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for p in PROPS {
            assert!(std::ptr::eq(find_prop(p.name).unwrap(), p));
        }
        let mut names: Vec<_> = PROPS.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PROPS.len());
    }

    #[test]
    fn healthy_engines_pass_all_props_on_sample_seeds() {
        let ctx = PropCtx::default();
        for seed in 0..30 {
            let case = gen_case(seed);
            let prog = case.program().unwrap();
            for prop in PROPS {
                (prop.check)(&case, &prog, &ctx).unwrap_or_else(|e| {
                    panic!("seed {seed}, prop {}: {e}\n{}", prop.name, case.src)
                });
            }
        }
    }

    #[test]
    fn skip_last_rule_mutation_is_caught_somewhere() {
        let ctx = PropCtx { mutation: Mutation::SkipLastRule, ..PropCtx::default() };
        let caught = (0..40).any(|seed| {
            let case = gen_case(seed);
            let prog = case.program().unwrap();
            PROPS.iter().any(|p| {
                crate::proptest_lite::run_case_caught(|| (p.check)(&case, &prog, &ctx)).is_err()
            })
        });
        assert!(caught, "the known-bad mutation must be caught within 40 seeds");
    }
}
