//! Seeded, stratified generation of random Datalog∃ programs.
//!
//! Every case is rendered as parseable `.dlg` source (one statement per
//! line — the granularity the shrinker works at), so a failing case *is*
//! its own reproducer and corpus files diff cleanly in review.
//!
//! Generation is stratified across the recognized classes: each seed
//! deterministically picks a [`Strat`] and a class-shaped template that
//! *guarantees* membership by construction (pinned by tests against the
//! `bddfc_classes` recognizers), so the differential properties keep
//! exercising guarded/sticky/weakly-acyclic/Theorem-3 ground instead of
//! drifting into the unrestricted soup.
//!
//! This module also hosts the two generators that used to be duplicated
//! inline across `tests/{differential,determinism,lint}.rs`:
//! [`random_program`] and [`random_program_source`].

use crate::proptest_lite::Gen;
use bddfc_core::prng::SplitMix64;
use bddfc_core::{parse_program, Fact, Instance, Program, Vocabulary};

/// The generator strata: one per recognized Datalog∃ class, plus the
/// anything-goes stratum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Strat {
    /// Every rule body has a guard atom containing all body variables.
    Guarded,
    /// Linear rules with repetition-free bodies (sticky by construction:
    /// no variable ever occurs twice in a body, so no marked join exists).
    Sticky,
    /// Layered rules (head predicate strictly above every body
    /// predicate), so the dependency graph is acyclic.
    WeaklyAcyclic,
    /// Every TGD has at most one frontier variable (the Theorem 3 shape
    /// `Ψ(x̄,y) ⇒ ∃z̄ Φ(y,z̄)`); datalog rules are unrestricted.
    Theorem3,
    /// Unrestricted: joins, multi-heads, constants, repeated variables.
    Unrestricted,
}

impl Strat {
    /// All strata, in the order seeds cycle through them.
    pub const ALL: [Strat; 5] = [
        Strat::Guarded,
        Strat::Sticky,
        Strat::WeaklyAcyclic,
        Strat::Theorem3,
        Strat::Unrestricted,
    ];

    /// Stable lower-case name (used in reports and corpus headers).
    pub fn name(self) -> &'static str {
        match self {
            Strat::Guarded => "guarded",
            Strat::Sticky => "sticky",
            Strat::WeaklyAcyclic => "weakly-acyclic",
            Strat::Theorem3 => "theorem3",
            Strat::Unrestricted => "unrestricted",
        }
    }
}

/// One generated (or replayed) fuzz case: a seed, the stratum it was
/// drawn from, and parseable `.dlg` source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// The case seed ([`gen_case`] is a pure function of it).
    pub seed: u64,
    /// The stratum the template was drawn from (`None` for corpus
    /// replays, where only the text is known).
    pub strat: Option<Strat>,
    /// The program as `.dlg` source, one statement per line.
    pub src: String,
}

impl FuzzCase {
    /// Parses the case. Generated cases always parse; replayed corpus
    /// files might not (that is a corpus error, not a finding).
    pub fn program(&self) -> Result<Program, bddfc_core::ParseError> {
        parse_program(&self.src)
    }
}

/// The fixed signature every generated case draws from. Keeping one
/// arity per predicate name means concatenating any generated statements
/// can never produce an arity clash.
const UNARY: &[&str] = &["A", "B"];
const BINARY: &[&str] = &["P", "Q", "R"];
const TERNARY: &[&str] = &["T"];
/// Body/frontier variable pool.
const VARS: &[&str] = &["X", "Y", "Z", "W"];
/// Existential variable pool (disjoint from `VARS` so templates can
/// introduce head-only variables without capturing a body variable).
const EVARS: &[&str] = &["V0", "V1"];
const CONSTS: &[&str] = &["a", "b", "c"];

/// A predicate of the given arity from the fixed signature.
fn pred_of_arity(rng: &mut SplitMix64, arity: usize) -> &'static str {
    match arity {
        1 => UNARY[rng.below(UNARY.len())],
        2 => BINARY[rng.below(BINARY.len())],
        3 => TERNARY[rng.below(TERNARY.len())],
        _ => unreachable!("signature has arities 1..=3"),
    }
}

fn render_atom(pred: &str, args: &[String]) -> String {
    format!("{pred}({})", args.join(","))
}

/// A ground fact over the signature.
fn random_fact(rng: &mut SplitMix64) -> String {
    let arity = rng.range(1, 4);
    let pred = pred_of_arity(rng, arity);
    let args: Vec<String> = (0..arity)
        .map(|_| CONSTS[rng.below(CONSTS.len())].to_string())
        .collect();
    format!("{}.", render_atom(pred, &args))
}

/// A guarded rule: a guard atom over `k` distinct variables plus up to
/// two side atoms over subsets of them; single head over the guard
/// variables, possibly introducing an existential.
fn guarded_rule(rng: &mut SplitMix64) -> String {
    let k = rng.range(1, 4);
    let vars: Vec<&str> = VARS[..k].to_vec();
    let guard = {
        // A permutation of the k body variables fills the arity-k guard.
        let mut perm = vars.clone();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.below(i + 1));
        }
        let args: Vec<String> = perm.iter().map(|v| v.to_string()).collect();
        render_atom(pred_of_arity(rng, k), &args)
    };
    let mut body = vec![guard];
    for _ in 0..rng.below(3) {
        let arity = rng.range(1, k + 1);
        let args: Vec<String> = (0..arity)
            .map(|_| vars[rng.below(vars.len())].to_string())
            .collect();
        body.push(render_atom(pred_of_arity(rng, arity), &args));
    }
    let head_arity = rng.range(1, 4);
    let exist = rng.flip();
    let args: Vec<String> = (0..head_arity)
        .map(|i| {
            if exist && i == head_arity - 1 {
                EVARS[rng.below(EVARS.len())].to_string()
            } else {
                vars[rng.below(vars.len())].to_string()
            }
        })
        .collect();
    let head = render_atom(pred_of_arity(rng, head_arity), &args);
    format!("{} -> {}.", body.join(", "), head)
}

/// A sticky rule: single repetition-free body atom, head over distinct
/// variables (body subset plus optional existentials).
fn sticky_rule(rng: &mut SplitMix64) -> String {
    let arity = rng.range(1, 4);
    let body_vars: Vec<&str> = VARS[..arity].to_vec();
    let body = render_atom(
        pred_of_arity(rng, arity),
        &body_vars.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
    );
    let head_arity = rng.range(1, 4);
    // Draw head args without repetition from body vars then existentials,
    // so no variable ever occurs twice anywhere in the rule.
    let mut pool: Vec<String> = body_vars.iter().map(|v| v.to_string()).collect();
    for e in EVARS {
        pool.push((*e).to_string());
    }
    let mut args = Vec::new();
    for _ in 0..head_arity {
        let i = rng.below(pool.len());
        args.push(pool.swap_remove(i));
    }
    let head = render_atom(pred_of_arity(rng, head_arity), &args);
    format!("{body} -> {head}.")
}

/// A weakly acyclic rule set: predicates are layered `A,B < P,Q,R < T`
/// by arity, and every head predicate sits strictly above every body
/// predicate, so the position dependency graph is a DAG.
fn weakly_acyclic_rule(rng: &mut SplitMix64) -> String {
    // Body from layer 1 or 2, head strictly above.
    let body_arity = rng.range(1, 3);
    let nbody = rng.range(1, 3);
    let vars: Vec<&str> = VARS[..body_arity.max(2)].to_vec();
    let body: Vec<String> = (0..nbody)
        .map(|_| {
            let a = rng.range(1, body_arity + 1);
            let args: Vec<String> = (0..a)
                .map(|_| vars[rng.below(vars.len())].to_string())
                .collect();
            render_atom(pred_of_arity(rng, a), &args)
        })
        .collect();
    let head_arity = body_arity + 1; // strictly higher layer
    let exist = rng.flip();
    let args: Vec<String> = (0..head_arity)
        .map(|i| {
            if exist && i == 0 {
                EVARS[rng.below(EVARS.len())].to_string()
            } else {
                vars[rng.below(vars.len())].to_string()
            }
        })
        .collect();
    let head = render_atom(pred_of_arity(rng, head_arity), &args);
    format!("{} -> {}.", body.join(", "), head)
}

/// A Theorem 3 fragment rule: either an unrestricted datalog rule or a
/// TGD whose head shares at most one (frontier) variable with the body.
fn theorem3_rule(rng: &mut SplitMix64) -> String {
    let nbody = rng.range(1, 3);
    let body: Vec<String> = (0..nbody)
        .map(|_| {
            let a = rng.range(1, 4);
            let args: Vec<String> = (0..a)
                .map(|_| VARS[rng.below(VARS.len())].to_string())
                .collect();
            render_atom(pred_of_arity(rng, a), &args)
        })
        .collect();
    let body_text = body.join(", ");
    if rng.flip() {
        // Datalog rule (no existentials): unrestricted frontier. Reuse
        // only body variables.
        let body_vars: Vec<&str> = VARS
            .iter()
            .filter(|v| body.iter().any(|a| has_var(a, v)))
            .copied()
            .collect();
        let a = rng.range(1, 4);
        let args: Vec<String> = (0..a)
            .map(|_| body_vars[rng.below(body_vars.len())].to_string())
            .collect();
        format!("{body_text} -> {}.", render_atom(pred_of_arity(rng, a), &args))
    } else {
        // TGD: one frontier variable, everything else existential or
        // constant.
        let body_vars: Vec<&str> = VARS
            .iter()
            .filter(|v| body.iter().any(|a| has_var(a, v)))
            .copied()
            .collect();
        let frontier = body_vars[rng.below(body_vars.len())];
        let a = rng.range(1, 4);
        let fpos = rng.below(a);
        let args: Vec<String> = (0..a)
            .map(|i| {
                if i == fpos {
                    frontier.to_string()
                } else if rng.flip() {
                    EVARS[rng.below(EVARS.len())].to_string()
                } else {
                    CONSTS[rng.below(CONSTS.len())].to_string()
                }
            })
            .collect();
        format!("{body_text} -> {}.", render_atom(pred_of_arity(rng, a), &args))
    }
}

/// Does the rendered atom mention the variable? Exact-token check: all
/// argument names in the pools are single-token and comma-separated.
fn has_var(atom: &str, var: &str) -> bool {
    let inner = &atom[atom.find('(').map_or(0, |i| i + 1)..atom.len().saturating_sub(1)];
    inner.split(',').any(|t| t == var)
}

/// An unrestricted rule: any body/head shapes, repeated variables,
/// constants, multi-heads.
fn unrestricted_rule(rng: &mut SplitMix64) -> String {
    let atom = |rng: &mut SplitMix64, pool: usize| {
        let a = rng.range(1, 4);
        let args: Vec<String> = (0..a)
            .map(|_| {
                let k = rng.below(pool + CONSTS.len());
                if k < pool {
                    VARS[k].to_string()
                } else {
                    CONSTS[k - pool].to_string()
                }
            })
            .collect();
        render_atom(pred_of_arity(rng, a), &args)
    };
    let pool = rng.range(1, VARS.len() + 1);
    let nbody = rng.range(1, 4);
    let body: Vec<String> = (0..nbody).map(|_| atom(rng, pool)).collect();
    let nhead = rng.range(1, 3);
    let head: Vec<String> = (0..nhead).map(|_| atom(rng, VARS.len())).collect();
    format!("{} -> {}.", body.join(", "), head.join(", "))
}

/// Generates the fuzz case for a seed: stratum, theory, instance and
/// (sometimes) a query, rendered one statement per line. Pure function
/// of the seed — byte-identical across runs, platforms and thread
/// counts.
pub fn gen_case(seed: u64) -> FuzzCase {
    let mut rng = SplitMix64::new(seed);
    let strat = Strat::ALL[rng.below(Strat::ALL.len())];
    let nrules = rng.range(1, 7);
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("% bddfc-fuzz seed={seed:#x} strat={}", strat.name()));
    for _ in 0..nrules {
        lines.push(match strat {
            Strat::Guarded => guarded_rule(&mut rng),
            Strat::Sticky => sticky_rule(&mut rng),
            Strat::WeaklyAcyclic => weakly_acyclic_rule(&mut rng),
            Strat::Theorem3 => theorem3_rule(&mut rng),
            Strat::Unrestricted => unrestricted_rule(&mut rng),
        });
    }
    let nfacts = rng.range(2, 9);
    for _ in 0..nfacts {
        lines.push(random_fact(&mut rng));
    }
    if rng.flip() {
        // A two-atom join query over binary predicates, for parser
        // coverage and the certain-answer properties.
        let p = BINARY[rng.below(BINARY.len())];
        let q = BINARY[rng.below(BINARY.len())];
        lines.push(format!("?- {p}(X,Y), {q}(Y,Z)."));
    }
    let mut src = lines.join("\n");
    src.push('\n');
    FuzzCase { seed, strat: Some(strat), src }
}

/// A seeded random program over three binary predicates: a random linear
/// theory plus a random instance. Promoted from the identical copies in
/// `tests/differential.rs` and `tests/determinism.rs` — seeds produce
/// the same programs they always did.
pub fn random_program(seed: u64) -> Program {
    let mut voc = Vocabulary::new();
    let theory = random_linear_theory(&mut voc, 3, 6, seed);
    let mut rng = SplitMix64::new(seed ^ 0x5eed);
    let preds: Vec<_> = (0..3).map(|i| voc.pred(&format!("R{i}"), 2)).collect();
    let consts: Vec<_> = (0..5).map(|i| voc.constant(&format!("c{i}"))).collect();
    let mut instance = Instance::new();
    for _ in 0..8 {
        let p = preds[rng.below(preds.len())];
        let a = consts[rng.below(consts.len())];
        let b = consts[rng.below(consts.len())];
        instance.insert(Fact::new(p, vec![a, b]));
    }
    Program { voc, theory, instance, queries: vec![] }
}

/// A random *linear* Datalog∃ theory over `preds` binary predicates —
/// the same construction as `bddfc_zoo::random_linear_theory`, inlined
/// here so the fuzz crate does not depend on the zoo (the zoo's corpus
/// is replay input, not a generator dependency).
fn random_linear_theory(
    voc: &mut Vocabulary,
    preds: usize,
    rules: usize,
    seed: u64,
) -> bddfc_core::Theory {
    use bddfc_core::{Atom, Rule, Term, Theory};
    let mut rng = SplitMix64::new(seed);
    let ps: Vec<_> = (0..preds).map(|i| voc.pred(&format!("R{i}"), 2)).collect();
    let x = voc.var("Xg");
    let y = voc.var("Yg");
    let z = voc.var("Zg");
    let mut out = Vec::new();
    for _ in 0..rules {
        let pb = ps[rng.below(preds)];
        let ph = ps[rng.below(preds)];
        let body = vec![Atom::new(pb, vec![Term::Var(x), Term::Var(y)])];
        let head = if rng.flip() {
            Atom::new(ph, vec![Term::Var(y), Term::Var(z)])
        } else {
            Atom::new(ph, vec![Term::Var(y), Term::Var(x)])
        };
        out.push(Rule::single(body, head));
    }
    Theory::new(out)
}

/// A random Datalog∃ program as source text: 1–5 rules over a small fixed
/// signature, bodies of 1–3 atoms with shared variables (joins), heads
/// that reuse body variables, drop them (existentials arise implicitly)
/// or mention constants. Promoted verbatim from `tests/lint.rs`.
pub fn random_program_source(g: &mut Gen) -> String {
    const PREDS: &[(&str, usize)] = &[("A", 1), ("B", 2), ("C", 3), ("D", 2)];
    const VARS: &[&str] = &["X", "Y", "Z", "W"];
    const CONSTS: &[&str] = &["a", "b"];
    let nrules = g.usize_in("rules", 1, 6);
    let mut out = String::new();
    for r in 0..nrules {
        let atom = |g: &mut Gen, kind: &str, pool: usize| {
            let (name, arity) = PREDS[g.usize_in(&format!("r{r}/{kind}/pred"), 0, PREDS.len())];
            let args: Vec<&str> = (0..arity)
                .map(|i| {
                    let k = g.usize_in(&format!("r{r}/{kind}/arg{i}"), 0, pool + CONSTS.len());
                    if k < pool {
                        VARS[k]
                    } else {
                        CONSTS[k - pool]
                    }
                })
                .collect();
            format!("{name}({})", args.join(","))
        };
        let nbody = g.usize_in(&format!("r{r}/body_atoms"), 1, 4);
        let body_pool = g.usize_in(&format!("r{r}/body_pool"), 1, VARS.len());
        let body: Vec<String> = (0..nbody).map(|_| atom(g, "body", body_pool)).collect();
        let head = atom(g, "head", VARS.len());
        out.push_str(&format!("{} -> {}.\n", body.join(", "), head));
    }
    out.push_str("A(a). B(a,b).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bddfc_classes::{is_guarded, is_linear, is_sticky, is_theorem3_fragment, is_weakly_acyclic};

    #[test]
    fn every_seed_parses() {
        for seed in 0..500 {
            let case = gen_case(seed);
            case.program()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", case.src));
        }
    }

    #[test]
    fn strata_templates_guarantee_membership() {
        let (mut g, mut s, mut w, mut t) = (0, 0, 0, 0);
        for seed in 0..500 {
            let case = gen_case(seed);
            let prog = case.program().unwrap();
            match case.strat.unwrap() {
                Strat::Guarded => {
                    g += 1;
                    assert!(is_guarded(&prog.theory), "seed {seed}:\n{}", case.src);
                }
                Strat::Sticky => {
                    s += 1;
                    assert!(is_linear(&prog.theory), "seed {seed}:\n{}", case.src);
                    assert!(is_sticky(&prog.theory), "seed {seed}:\n{}", case.src);
                }
                Strat::WeaklyAcyclic => {
                    w += 1;
                    assert!(is_weakly_acyclic(&prog.theory), "seed {seed}:\n{}", case.src);
                }
                Strat::Theorem3 => {
                    t += 1;
                    assert!(is_theorem3_fragment(&prog.theory), "seed {seed}:\n{}", case.src);
                }
                Strat::Unrestricted => {}
            }
        }
        assert!(g > 50 && s > 50 && w > 50 && t > 50, "strata coverage: {g}/{s}/{w}/{t}");
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            assert_eq!(gen_case(seed), gen_case(seed));
        }
    }

    #[test]
    fn random_program_matches_historical_construction() {
        // The promoted generator must keep producing what the inline
        // test copies produced (they seeded the zoo's linear theory).
        let mut voc = Vocabulary::new();
        let theory = random_linear_theory(&mut voc, 3, 6, 42);
        let prog = random_program(42);
        assert_eq!(prog.theory, theory);
        assert_eq!(prog.instance.len() <= 8, true);
    }
}
