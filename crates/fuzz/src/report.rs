//! Deterministic fuzz-run reports.
//!
//! The stdout report is a **pure function of the run's inputs and
//! verdicts** — base seed, property selection, mutation, corpus file
//! verdicts, failures. Anything timing- or speed-dependent (cases
//! executed within a wall-clock budget, elapsed time) is deliberately
//! excluded; the runner prints those to stderr. That is what makes
//! `bddfc-fuzz --seed S --budget-ms T` byte-identical across
//! `BDDFC_THREADS` settings and machine speeds whenever the engines are
//! healthy, and it is pinned by `tests/fuzz_cli.rs`.

use crate::props::Mutation;
use bddfc_core::obs::json_escape;

/// One minimized, replayable finding.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The violated property's registry name.
    pub prop: &'static str,
    /// Where the case came from: `seed 0x…` or a corpus path.
    pub origin: String,
    /// Failure message of the minimized case.
    pub message: String,
    /// Minimized, parseable program source.
    pub shrunk: String,
    /// Ready-to-paste reproduction command.
    pub repro: String,
}

/// The full report of one `bddfc-fuzz` invocation.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// `fuzz`, `case` or `replay`.
    pub mode: &'static str,
    /// Base seed (absent in pure replay mode).
    pub seed: Option<u64>,
    /// `--budget-ms` value, when one was set.
    pub budget_ms: Option<u64>,
    /// Names of the properties checked, in registry order.
    pub props: Vec<&'static str>,
    /// Injected mutation (`none` in production).
    pub mutation: Mutation,
    /// Per-file replay verdicts, in replay order: `(path, "ok"/"fail")`.
    pub corpus: Vec<(String, &'static str)>,
    /// Minimized findings, in discovery order.
    pub failures: Vec<Failure>,
}

impl FuzzReport {
    /// `true` iff no property was violated.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The human-readable report (the default stdout format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("bddfc-fuzz report\n");
        out.push_str(&format!("mode: {}\n", self.mode));
        if let Some(seed) = self.seed {
            out.push_str(&format!("seed: {seed:#x}\n"));
        }
        if let Some(ms) = self.budget_ms {
            out.push_str(&format!("budget-ms: {ms}\n"));
        }
        out.push_str(&format!("props: {}\n", self.props.join(", ")));
        if self.mutation != Mutation::None {
            out.push_str(&format!("mutation: {}\n", self.mutation.name()));
        }
        if !self.corpus.is_empty() {
            out.push_str("corpus:\n");
            for (path, verdict) in &self.corpus {
                out.push_str(&format!("  {path}: {verdict}\n"));
            }
        }
        out.push_str(&format!("failures: {}\n", self.failures.len()));
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "--- failure {}: prop {} ({})\n",
                i + 1,
                f.prop,
                f.origin
            ));
            out.push_str(&format!("message: {}\n", f.message));
            out.push_str(&format!(
                "shrunk program ({} statements):\n",
                f.shrunk.lines().filter(|l| !l.trim().is_empty()).count()
            ));
            for line in f.shrunk.lines() {
                out.push_str(&format!("  {line}\n"));
            }
            out.push_str(&format!("rerun: {}\n", f.repro));
        }
        out.push_str(if self.clean() { "ok\n" } else { "FAIL\n" });
        out
    }

    /// The machine-readable report (`--json`), schema-versioned like the
    /// lint and bench JSON emitters.
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":1,\"tool\":\"bddfc-fuzz\"");
        out.push_str(&format!(",\"mode\":\"{}\"", self.mode));
        if let Some(seed) = self.seed {
            out.push_str(&format!(",\"seed\":{seed}"));
        }
        if let Some(ms) = self.budget_ms {
            out.push_str(&format!(",\"budget_ms\":{ms}"));
        }
        out.push_str(&format!(",\"mutation\":\"{}\"", self.mutation.name()));
        out.push_str(",\"props\":[");
        for (i, p) in self.props.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{p}\""));
        }
        out.push_str("],\"corpus\":[");
        for (i, (path, verdict)) in self.corpus.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"verdict\":\"{verdict}\"}}",
                json_escape(path)
            ));
        }
        out.push_str("],\"failures\":[");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"prop\":\"{}\",\"origin\":\"{}\",\"message\":\"{}\",\"shrunk\":\"{}\",\"repro\":\"{}\"}}",
                json_escape(f.prop),
                json_escape(&f.origin),
                json_escape(&f.message),
                json_escape(&f.shrunk),
                json_escape(&f.repro),
            ));
        }
        out.push_str(&format!("],\"ok\":{}}}", self.clean()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzReport {
        FuzzReport {
            mode: "fuzz",
            seed: Some(7),
            budget_ms: Some(100),
            props: vec!["a", "b"],
            mutation: Mutation::SkipLastRule,
            corpus: vec![("tests/corpus/x.dlg".into(), "ok")],
            failures: vec![Failure {
                prop: "a",
                origin: "seed 0x7".into(),
                message: "left \"x\" != right".into(),
                shrunk: "A(a).\nA(X) -> P(X,Y).".into(),
                repro: "bddfc-fuzz --seed 0x7 --prop a".into(),
            }],
        }
    }

    #[test]
    fn render_is_stable_and_complete() {
        let r = sample().render();
        assert!(r.contains("seed: 0x7"), "{r}");
        assert!(r.contains("mutation: skip-last-rule"), "{r}");
        assert!(r.contains("shrunk program (2 statements):"), "{r}");
        assert!(r.contains("rerun: bddfc-fuzz --seed 0x7 --prop a"), "{r}");
        assert!(r.ends_with("FAIL\n"), "{r}");
        assert_eq!(r, sample().render());
    }

    #[test]
    fn json_escapes_and_flags_failures() {
        let j = sample().json();
        assert!(j.starts_with("{\"schema\":1,"), "{j}");
        assert!(j.contains("\"message\":\"left \\\"x\\\" != right\""), "{j}");
        assert!(j.contains("\"shrunk\":\"A(a).\\nA(X) -> P(X,Y).\""), "{j}");
        assert!(j.ends_with("\"ok\":false}"), "{j}");
    }

    #[test]
    fn clean_report_renders_ok() {
        let r = FuzzReport { mode: "replay", props: vec!["a"], ..Default::default() };
        assert!(r.render().ends_with("ok\n"));
        assert!(r.json().ends_with("\"ok\":true}"));
    }
}
